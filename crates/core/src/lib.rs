//! Gengar: an RDMA-based distributed shared hybrid memory (DSHM) pool.
//!
//! This crate reproduces the system described in *"Gengar: An RDMA-based
//! Distributed Hybrid Memory Pool"* (Duan et al., ICDCS 2021). Memory
//! servers export NVM and DRAM into a global memory space; clients access
//! it with one-sided RDMA verbs through simple `alloc`/`read`/`write`
//! APIs. Three mechanisms define the system:
//!
//! * **Hot-data caching in distributed DRAM** ([`hotness`], [`cache`]):
//!   clients piggyback access summaries derived from their verbs' semantics;
//!   servers promote frequently-accessed objects into DRAM cache slots that
//!   clients read with validated one-sided READs.
//! * **Proxy-based writes** ([`proxy`]): clients land write records in
//!   per-client ADR-protected staging rings with a single WRITE_WITH_IMM;
//!   a server proxy thread drains them to NVM off the critical path.
//! * **Multi-user sharing with consistency** ([`consistency`]): per-object
//!   lock/version words manipulated with RDMA CAS, seqlock-validated reads,
//!   and write-through for shared objects.
//!
//! Start with [`cluster::Cluster`] to stand up a pool and
//! [`client::GengarClient`] (or the [`pool::DshmPool`] trait) to use it:
//!
//! ```
//! use gengar_core::cluster::Cluster;
//! use gengar_core::config::{ClientConfig, ServerConfig};
//! use gengar_core::pool::DshmPool;
//! use gengar_rdma::FabricConfig;
//!
//! # fn main() -> Result<(), gengar_core::GengarError> {
//! let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant())?;
//! let mut client = cluster.client(ClientConfig::default())?;
//! let ptr = client.alloc(0, 128)?;
//! client.write(ptr, 0, b"byte-addressable remote memory")?;
//! let mut buf = vec![0u8; 30];
//! client.read(ptr, 0, &mut buf)?;
//! assert_eq!(&buf, b"byte-addressable remote memory");
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod alloc;
pub mod batch;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod config;
pub mod consistency;
pub mod error;
pub mod health;
pub mod hotness;
pub mod layout;
pub mod pool;
pub mod proto;
pub mod proxy;
pub mod qos;
pub mod retry;
pub mod rpc;
pub mod server;
pub mod window;

pub use addr::{GlobalAddr, GlobalPtr, MemClass};
pub use batch::{BatchError, BatchResult, OpBatch};
pub use cache::{AdmissionMode, CachePolicy, CacheStats};
pub use client::{ClientStats, GengarClient};
pub use cluster::Cluster;
pub use config::{ClientConfig, Consistency, ServerConfig};
pub use config::{HealthConfig, HealthThresholds, SloConfig};
pub use error::GengarError;
pub use health::{HealthPlane, HealthState, SloStatus};
pub use pool::DshmPool;
pub use qos::{QosConfig, QosPlane, TenantSpec, TokenBucket};
pub use retry::{Disposition, RetryPolicy};
pub use server::MemoryServer;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GengarError>;
