//! Multi-user sharing with data-consistency guarantees.
//!
//! Gengar lets several users map the same objects. The consistency design
//! (abstract claim 4) combines three mechanisms, all built on one-sided
//! verbs so the server CPU stays off the data path:
//!
//! 1. **Writer locks** — every object carries a lock/version word
//!    ([`crate::layout::lockword`]) in its NVM header. Writers acquire it
//!    with remote CAS, release it with a version bump.
//! 2. **Seqlock reads** — readers fetch `header ‖ payload`, then re-fetch
//!    the 8-byte header; a changed version or a set lock bit retries.
//!    Cached copies carry their own version + checksum frame.
//! 3. **Write-through for shared objects** — under `Consistency::Seqlock`
//!    writes bypass the proxy ring and go straight to NVM followed by a
//!    flush+invalidate RPC *before* the lock is released, so the next lock
//!    holder reads the committed value. (The proxy fast path remains for
//!    `Consistency::None`, where objects are private to one user.)
//!
//! The lock/read loops live in [`crate::client::GengarClient`]; this module
//! provides the retry policy.

use std::time::Duration;

/// Bounded exponential backoff for contended CAS/read loops.
///
/// Spin a few times, then yield with exponentially growing (capped) sleeps.
/// Deterministic (no RNG) so tests are reproducible.
#[derive(Debug, Clone)]
pub struct Backoff {
    attempt: u32,
    spin_limit: u32,
    max_sleep: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new(6, Duration::from_micros(500))
    }
}

impl Backoff {
    /// Creates a policy that spins `spin_limit` times before sleeping, with
    /// sleeps capped at `max_sleep`.
    pub fn new(spin_limit: u32, max_sleep: Duration) -> Self {
        Backoff {
            attempt: 0,
            spin_limit,
            max_sleep,
        }
    }

    /// Number of waits performed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Waits once (spin or sleep) and records the attempt.
    pub fn wait(&mut self) {
        if self.attempt < self.spin_limit {
            for _ in 0..(1 << self.attempt.min(10)) {
                std::hint::spin_loop();
            }
        } else {
            let exp = (self.attempt - self.spin_limit).min(10);
            let sleep = Duration::from_micros(1u64 << exp).min(self.max_sleep);
            std::thread::sleep(sleep);
        }
        self.attempt += 1;
    }

    /// Resets the policy after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_counts_attempts() {
        let mut b = Backoff::new(2, Duration::from_micros(10));
        assert_eq!(b.attempts(), 0);
        for _ in 0..5 {
            b.wait();
        }
        assert_eq!(b.attempts(), 5);
        b.reset();
        assert_eq!(b.attempts(), 0);
    }

    #[test]
    fn sleeps_are_capped() {
        let mut b = Backoff::new(0, Duration::from_micros(50));
        // Drive it far past the cap; total time must stay small.
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            b.wait();
        }
        assert!(t0.elapsed() < Duration::from_millis(100));
    }
}
