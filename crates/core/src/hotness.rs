//! Hot-data identification from RDMA access semantics.
//!
//! A memory server cannot observe one-sided READ/WRITE verbs — the NIC
//! bypasses its CPU entirely. Gengar therefore recovers access information
//! from the verbs' *semantics at the issuing side*: clients batch the
//! (address, count, read/write) triples their verbs carried and piggyback
//! them on RPC traffic. The server folds these reports into a count-min
//! sketch with per-epoch exponential decay and promotes objects whose
//! estimated frequency crosses the configured threshold.

use std::collections::HashMap;

use gengar_telemetry::{CounterHandle, TelemetryConfig};

use crate::cache::CachePolicy;

/// A count-min sketch over `u64` keys with saturating `u32` counters.
#[derive(Debug)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u32>,
    seeds: Vec<u64>,
}

fn mix(mut x: u64, seed: u64) -> u64 {
    // splitmix64 finalizer, seeded.
    x = x.wrapping_add(seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CountMinSketch {
    /// Creates a sketch with `width` counters in each of `depth` rows.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        CountMinSketch {
            width,
            depth,
            counters: vec![0; width * depth],
            seeds: (0..depth as u64).map(|d| mix(d, 0x5EED)).collect(),
        }
    }

    fn idx(&self, row: usize, key: u64) -> usize {
        row * self.width + (mix(key, self.seeds[row]) as usize % self.width)
    }

    /// Adds `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u32) {
        for row in 0..self.depth {
            let i = self.idx(row, key);
            self.counters[i] = self.counters[i].saturating_add(count);
        }
    }

    /// Estimates the count of `key`. Never under-estimates.
    pub fn estimate(&self, key: u64) -> u32 {
        (0..self.depth)
            .map(|row| self.counters[self.idx(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter (exponential decay between epochs).
    pub fn decay(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
    }

    /// Zeroes the sketch.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }
}

/// One access-report entry from a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEntry {
    /// Raw global address of the accessed object's payload base.
    pub addr: u64,
    /// Number of accesses in the batch.
    pub count: u32,
    /// Whether any of them were writes.
    pub wrote: bool,
}

/// The server-side hotness monitor.
///
/// `record` is called from RPC handlers as reports arrive; `fold_epoch` is
/// called by the epoch thread and returns the current promotion candidates
/// (estimated score per address seen since the previous fold).
#[derive(Debug)]
pub struct HotnessMonitor {
    sketch: CountMinSketch,
    /// Addresses seen since the last fold (bounded by eviction below).
    seen: HashMap<u64, ()>,
    /// Upper bound on `seen` between folds.
    max_seen: usize,
    /// Sample 1-in-N reported entries into the sketch (adds are weighted by
    /// N so scores stay comparable across sampling rates).
    sample_every: u32,
    sample_tick: u64,
    epoch: u64,
    reports: CounterHandle,
    reported_accesses: CounterHandle,
    epoch_folds: CounterHandle,
}

impl HotnessMonitor {
    /// Creates a monitor shaped by `policy` (sketch width/depth, candidate
    /// bound, sampling rate) whose `hotness.*` metrics follow `telemetry`.
    pub fn with_policy(policy: &CachePolicy, telemetry: TelemetryConfig) -> Self {
        let tel = telemetry.handle();
        HotnessMonitor {
            sketch: CountMinSketch::new(policy.sketch_width, policy.sketch_depth),
            seen: HashMap::new(),
            max_seen: policy.max_candidates.max(16),
            sample_every: policy.sample_every.max(1),
            sample_tick: 0,
            epoch: 0,
            reports: tel.counter("hotness", "reports"),
            reported_accesses: tel.counter("hotness", "reported_accesses"),
            epoch_folds: tel.counter("hotness", "epoch_folds"),
        }
    }

    /// Folds a batch of client-reported accesses.
    pub fn record(&mut self, entries: &[AccessEntry]) {
        self.reports.inc();
        for e in entries {
            self.reported_accesses.add(u64::from(e.count));
            self.sample_tick += 1;
            if self
                .sample_tick
                .is_multiple_of(u64::from(self.sample_every))
            {
                self.sketch
                    .add(e.addr, e.count.saturating_mul(self.sample_every));
            }
            if self.seen.len() < self.max_seen || self.seen.contains_key(&e.addr) {
                self.seen.insert(e.addr, ());
            }
        }
    }

    /// Current estimated score of an address.
    pub fn score(&self, addr: u64) -> u32 {
        self.sketch.estimate(addr)
    }

    /// Ends the epoch: returns `(addr, score)` for every address seen since
    /// the last fold, then decays the sketch.
    pub fn fold_epoch(&mut self) -> Vec<(u64, u32)> {
        let mut out: Vec<(u64, u32)> = self
            .seen
            .keys()
            .map(|&a| (a, self.sketch.estimate(a)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.seen.clear();
        self.sketch.decay();
        self.epoch += 1;
        self.epoch_folds.inc();
        out
    }

    /// Number of completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drops all state (e.g. after recovery).
    pub fn reset(&mut self) {
        self.sketch.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(width: usize, depth: usize, max_seen: usize) -> HotnessMonitor {
        let policy = CachePolicy {
            sketch_width: width,
            sketch_depth: depth,
            max_candidates: max_seen,
            ..CachePolicy::default()
        };
        HotnessMonitor::with_policy(&policy, TelemetryConfig::default())
    }

    #[test]
    fn sketch_never_underestimates() {
        let mut s = CountMinSketch::new(64, 4);
        for k in 0..100u64 {
            s.add(k, (k % 7) as u32 + 1);
        }
        for k in 0..100u64 {
            assert!(s.estimate(k) > (k % 7) as u32, "under-estimate for {k}");
        }
    }

    #[test]
    fn sketch_estimates_heavy_hitters_well() {
        let mut s = CountMinSketch::new(1024, 4);
        s.add(42, 1000);
        for k in 100..200u64 {
            s.add(k, 1);
        }
        let est = s.estimate(42);
        assert!((1000..=1100).contains(&est), "estimate {est}");
    }

    #[test]
    fn decay_halves() {
        let mut s = CountMinSketch::new(16, 2);
        s.add(1, 100);
        s.decay();
        assert!(s.estimate(1) >= 50 && s.estimate(1) <= 51);
        s.clear();
        assert_eq!(s.estimate(1), 0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_width_rejected() {
        CountMinSketch::new(0, 2);
    }

    #[test]
    fn monitor_surfaces_hot_addresses_first() {
        let mut m = monitor(1024, 4, 1000);
        m.record(&[
            AccessEntry {
                addr: 10,
                count: 50,
                wrote: false,
            },
            AccessEntry {
                addr: 20,
                count: 2,
                wrote: true,
            },
            AccessEntry {
                addr: 30,
                count: 9,
                wrote: false,
            },
        ]);
        let folded = m.fold_epoch();
        assert_eq!(folded[0].0, 10);
        assert!(folded[0].1 >= 50);
        assert_eq!(folded.len(), 3);
        // Next epoch starts empty; the sketch decays but retains memory.
        assert!(m.fold_epoch().is_empty());
        assert!(m.score(10) >= 12, "decayed twice from >=50");
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn monitor_bounds_candidate_set() {
        let mut m = monitor(256, 2, 16);
        let entries: Vec<AccessEntry> = (0..100)
            .map(|i| AccessEntry {
                addr: i,
                count: 1,
                wrote: false,
            })
            .collect();
        m.record(&entries);
        assert!(m.fold_epoch().len() <= 16);
    }

    #[test]
    fn sampled_monitor_weights_adds_to_stay_comparable() {
        let policy = CachePolicy {
            sketch_width: 1024,
            sketch_depth: 4,
            max_candidates: 1000,
            ..CachePolicy::default()
        };
        let mut exact = HotnessMonitor::with_policy(&policy, TelemetryConfig::default());
        let mut sampled = HotnessMonitor::with_policy(
            &CachePolicy {
                sample_every: 4,
                ..policy
            },
            TelemetryConfig::default(),
        );
        let entries: Vec<AccessEntry> = (0..64)
            .map(|_| AccessEntry {
                addr: 7,
                count: 1,
                wrote: false,
            })
            .collect();
        exact.record(&entries);
        sampled.record(&entries);
        // 64 exact adds of 1 vs 16 sampled adds of 4: same estimate.
        assert_eq!(exact.score(7), 64);
        assert_eq!(sampled.score(7), 64);
        // The sampled monitor still surfaces the address as a candidate.
        assert_eq!(sampled.fold_epoch()[0].0, 7);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = monitor(64, 2, 100);
        m.record(&[AccessEntry {
            addr: 5,
            count: 10,
            wrote: false,
        }]);
        m.reset();
        assert_eq!(m.score(5), 0);
        assert!(m.fold_epoch().is_empty());
    }
}
