//! The vectored client API: [`OpBatch`], [`BatchResult`] and
//! [`BatchError`].
//!
//! An `OpBatch` collects independent reads and writes and submits them as
//! one pipelined unit: the client routes every element through the same
//! hotness/cache/proxy/degraded-mode machinery as the scalar calls, but
//! overlaps their network time through the per-connection
//! [`crate::window::OpWindow`]. Scalar [`crate::GengarClient::read`] and
//! [`crate::GengarClient::write`] are implemented as single-op batches,
//! so there is exactly one issue path.
//!
//! # Partial completion
//!
//! A batch is not a transaction. Each operation succeeds or fails on its
//! own and [`BatchResult`] carries one `Result` per operation in
//! submission order; `submit` returning `Ok` therefore does **not** mean
//! every operation landed. Transient transport faults are absorbed per
//! operation (retry, reconnect, staged-write replay) exactly as in the
//! scalar paths — only the slots that did not complete are replayed, so
//! an operation that reports success executed exactly once. When the
//! retry budget for a server is exhausted, the remaining operations
//! against it fail with the final transport error while operations
//! against other servers still run.
//!
//! # Ordering
//!
//! A batch's operations are split into per-home-server groups, and all
//! groups are in flight **concurrently** (a completion-driven event loop
//! interleaves them — see `DESIGN.md`, "Concurrent issue reactor").
//! Ordering is therefore per group, which is all an application can
//! observe: an object lives on exactly one server, so operations that
//! touch the same data are always in the same group. Within a group,
//! writes are applied before reads are issued, and multiple writes to
//! the same object apply in submission order. Reads are unordered among
//! themselves, and no order holds between operations homed on different
//! servers. A read of an object written earlier in the *same* batch
//! observes that write (served from the local store buffer like any
//! read-your-write). No ordering holds between operations of different
//! batches beyond the scalar API's guarantees.
//!
//! # Atomics
//!
//! `lock` / `unlock` / `cas_u64` / `faa_u64` are ordering-sensitive and
//! bypass batching. The builder offers no way to queue them — atomics in
//! a batch are unrepresentable at the type level, so a misport from the
//! scalar API fails at compile time instead of silently reordering. Use
//! the scalar [`crate::GengarClient::cas_u64`] /
//! [`crate::GengarClient::faa_u64`] / [`crate::GengarClient::lock`] /
//! [`crate::GengarClient::unlock`] calls. ([`GengarError::AtomicInBatch`]
//! survives solely as a wire-path error code a server can return for a
//! malformed remote batch.)

use std::error::Error;
use std::fmt;

use crate::addr::GlobalPtr;
use crate::client::GengarClient;
use crate::error::GengarError;

/// One queued batch element. Only reads and writes exist: atomics in a
/// batch are unrepresentable (see the [module docs](self)).
#[derive(Debug)]
pub(crate) enum BatchOp<'b> {
    /// Read `buf.len()` bytes from `ptr.addr + offset` into `buf`.
    Read {
        ptr: GlobalPtr,
        offset: u64,
        buf: &'b mut [u8],
    },
    /// Write `data` at `ptr.addr + offset`.
    Write {
        ptr: GlobalPtr,
        offset: u64,
        data: &'b [u8],
    },
}

/// Builder for a vectored operation batch. Created by
/// [`crate::GengarClient::batch`]; consumed by [`OpBatch::submit`].
///
/// ```
/// use gengar_core::cluster::Cluster;
/// use gengar_core::config::{ClientConfig, ServerConfig};
/// use gengar_rdma::FabricConfig;
///
/// # fn main() -> Result<(), gengar_core::GengarError> {
/// let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant())?;
/// let mut client = cluster.client(ClientConfig::default())?;
/// let a = client.alloc(0, 64)?;
/// let b = client.alloc(0, 64)?;
/// let mut buf = [0u8; 5];
/// let result = client
///     .batch()
///     .write(a, 0, b"hello")
///     .write(b, 0, b"world")
///     .read(a, 0, &mut buf)
///     .submit()?;
/// assert!(result.all_ok());
/// assert_eq!(&buf, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OpBatch<'c, 'b> {
    client: &'c mut GengarClient,
    ops: Vec<BatchOp<'b>>,
}

impl<'c, 'b> OpBatch<'c, 'b> {
    pub(crate) fn new(client: &'c mut GengarClient) -> Self {
        OpBatch {
            client,
            ops: Vec::new(),
        }
    }

    /// Queues a read of `buf.len()` bytes from `ptr.addr + offset`.
    #[must_use]
    pub fn read(mut self, ptr: GlobalPtr, offset: u64, buf: &'b mut [u8]) -> Self {
        self.ops.push(BatchOp::Read { ptr, offset, buf });
        self
    }

    /// Queues a write of `data` at `ptr.addr + offset`.
    #[must_use]
    pub fn write(mut self, ptr: GlobalPtr, offset: u64, data: &'b [u8]) -> Self {
        self.ops.push(BatchOp::Write { ptr, offset, data });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Submits the batch and waits for every operation to complete (or
    /// exhaust its retry budget). See the [module docs](self) for the
    /// partial-completion and ordering contracts.
    ///
    /// # Errors
    ///
    /// The outer `Err` is reserved for future batch-level misuse; today
    /// every queued operation is representable and runs. Per-operation
    /// failures (bounds violations, exhausted retry budgets) land in the
    /// [`BatchResult`].
    pub fn submit(self) -> Result<BatchResult, GengarError> {
        self.client.run_batch(self.ops)
    }
}

/// Per-operation outcomes of one submitted batch, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    results: Vec<Result<(), GengarError>>,
    trace: gengar_telemetry::TraceId,
}

impl BatchResult {
    pub(crate) fn new(
        results: Vec<Result<(), GengarError>>,
        trace: gengar_telemetry::TraceId,
    ) -> Self {
        BatchResult { results, trace }
    }

    /// The causal trace id this batch ran under ([`TraceId::NONE`] when
    /// tracing is off), for correlating results against an exported trace
    /// or a flight-recorder dump.
    ///
    /// [`TraceId::NONE`]: gengar_telemetry::TraceId::NONE
    pub fn trace_id(&self) -> gengar_telemetry::TraceId {
        self.trace
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the batch held no operations.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Per-operation results, in submission order.
    pub fn results(&self) -> &[Result<(), GengarError>] {
        &self.results
    }

    /// Number of operations that completed successfully.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Whether every operation succeeded.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    /// Consumes the result into the per-operation `Result`s.
    pub fn into_results(self) -> Vec<Result<(), GengarError>> {
        self.results
    }

    /// Collapses the batch into a single `Result`: `Ok` if every
    /// operation succeeded, otherwise a [`BatchError`] describing the
    /// first failure. Operations that succeeded *stay applied* — see the
    /// partial-completion contract in the [module docs](self).
    ///
    /// # Errors
    ///
    /// [`BatchError`] carrying the index and cause of the first failed
    /// operation plus the count of operations that did land.
    pub fn into_result(self) -> Result<(), BatchError> {
        let completed = self.completed();
        match self
            .results
            .into_iter()
            .enumerate()
            .find_map(|(i, r)| r.err().map(|e| (i, e)))
        {
            None => Ok(()),
            Some((failed_at, cause)) => Err(BatchError {
                completed,
                failed_at,
                cause: Box::new(cause),
            }),
        }
    }

    /// Unwraps a single-op batch (the scalar `read`/`write` wrappers).
    pub(crate) fn into_single(mut self) -> Result<(), GengarError> {
        debug_assert_eq!(self.results.len(), 1);
        self.results.pop().expect("single-op batch")
    }
}

/// A batch that did not fully complete: `completed` operations landed
/// (and stay applied), the operation at index `failed_at` is the first
/// that failed, with `cause` saying why. Produced by
/// [`BatchResult::into_result`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// How many operations of the batch completed successfully (not
    /// necessarily a prefix: reads are unordered among themselves).
    pub completed: usize,
    /// Index (submission order) of the first failed operation.
    pub failed_at: usize,
    /// Why it failed.
    pub cause: Box<GengarError>,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch failed at op {} ({} ops completed): {}",
            self.failed_at, self.completed, self.cause
        )
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(self.cause.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_result_accessors() {
        let ok = BatchResult::new(vec![Ok(()), Ok(())], gengar_telemetry::TraceId::NONE);
        assert!(ok.all_ok());
        assert_eq!(ok.completed(), 2);
        assert_eq!(ok.len(), 2);
        assert!(ok.into_result().is_ok());

        let mixed = BatchResult::new(
            vec![Ok(()), Err(GengarError::ProtocolViolation("boom")), Ok(())],
            gengar_telemetry::TraceId::NONE,
        );
        assert!(!mixed.all_ok());
        assert_eq!(mixed.completed(), 2);
        let err = mixed.into_result().unwrap_err();
        assert_eq!(err.failed_at, 1);
        assert_eq!(err.completed, 2);
        assert_eq!(*err.cause, GengarError::ProtocolViolation("boom"));
        assert!(err.to_string().contains("op 1"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn empty_batch_result_is_ok() {
        let r = BatchResult::new(Vec::new(), gengar_telemetry::TraceId::NONE);
        assert!(r.is_empty() && r.all_ok());
        assert!(r.into_result().is_ok());
    }
}
