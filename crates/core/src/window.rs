//! The per-connection outstanding-op window.
//!
//! A window turns a list of independent verbs into pipelined doorbell
//! batches: up to `depth` work requests are posted with one
//! [`gengar_rdma::QueuePair::post_send_list`] doorbell and their
//! completions drain out of order, so the wire/responder round trip is
//! amortised over the whole window instead of being paid per operation.
//! Retry integration lives one layer up in the client: the per-slot
//! results returned here let it replay only the slots that did not
//! complete (see DESIGN.md "Pipelining & batching").

use gengar_rdma::{Endpoint, PendingOps, RdmaError, SendOp, Wc};
use gengar_telemetry::{GaugeHandle, HistogramHandle, TelemetryConfig};

use crate::error::GengarError;

/// A fixed-depth issue window over one connection's data endpoint.
///
/// The window itself is stateless across submissions (no slots survive a
/// `submit`), which is what makes reconnects trivial: a new endpoint can
/// be swapped in under the same window.
#[derive(Debug)]
pub struct OpWindow {
    depth: u32,
    /// Peak number of operations in flight (`window.occupancy`). Recorded
    /// as a high-water mark so a snapshot taken between submissions still
    /// shows how full the window got.
    occupancy: GaugeHandle,
    /// Distribution of submitted batch sizes (`window.batch_size`).
    batch_size: HistogramHandle,
}

impl OpWindow {
    /// Creates a window of `depth` outstanding operations (clamped to at
    /// least 1, where every submission degenerates to the serial path).
    pub fn new(depth: u32, telemetry: TelemetryConfig) -> Self {
        let tel = telemetry.handle();
        OpWindow {
            depth: depth.max(1),
            occupancy: tel.gauge("window", "occupancy"),
            batch_size: tel.histogram("window", "batch_size"),
        }
    }

    /// Configured window depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Posts `ops` through `ep` in doorbell batches of at most `depth`,
    /// returning one result per operation in submission order.
    ///
    /// Per-operation transport failures land in the inner results so the
    /// caller can retry exactly the slots that did not complete; slots
    /// behind a fatal completion come back as flushed
    /// ([`RdmaError::CompletionError`] with `WrFlushed`), slots lost on
    /// the wire as [`RdmaError::Timeout`].
    ///
    /// # Errors
    ///
    /// The outer `Err` is reserved for failures of the post itself
    /// (programming errors, dead QP): nothing in the affected batch
    /// executed.
    pub fn submit(
        &self,
        ep: &Endpoint,
        ops: Vec<SendOp>,
    ) -> Result<Vec<Result<Wc, RdmaError>>, GengarError> {
        let mut out = Vec::with_capacity(ops.len());
        let mut rest = ops;
        while !rest.is_empty() {
            let take = rest.len().min(self.depth as usize);
            let tail = rest.split_off(take);
            let chunk = std::mem::replace(&mut rest, tail);
            let mut pending = self.post(ep, chunk)?;
            while !ep.poll_pending(&mut pending) {
                // The chunk settles as a unit, so sleep until the whole
                // doorbell is expected done, not until its next staggered
                // completion.
                if let Some(wake) = ep.pending_done_wake(&pending) {
                    gengar_hybridmem::latency::spin_until(wake);
                }
            }
            out.extend(pending.into_results());
        }
        Ok(out)
    }

    /// Posts one doorbell batch of at most `depth` operations through `ep`
    /// without waiting. The caller drives the returned [`PendingOps`] via
    /// [`Endpoint::poll_pending`] — this is the issue half of the
    /// completion-driven engine, letting one thread keep windows on many
    /// connections full at the same time.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] if `ops` exceeds the window
    /// depth (callers chunk); otherwise failures of the post itself.
    pub fn post(&self, ep: &Endpoint, ops: Vec<SendOp>) -> Result<PendingOps, GengarError> {
        if ops.len() > self.depth as usize {
            return Err(GengarError::ProtocolViolation(
                "doorbell batch exceeds window depth",
            ));
        }
        self.occupancy.record_max(ops.len() as i64);
        self.batch_size.record_ns(ops.len() as u64);
        let tracer = gengar_telemetry::Tracer::global();
        let mut chunk_span = tracer.span("window.submit");
        chunk_span.set_detail(ops.len() as u64);
        Ok(ep.post_many(ops)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_clamped_to_one() {
        let w = OpWindow::new(0, TelemetryConfig::disabled());
        assert_eq!(w.depth(), 1);
        assert_eq!(OpWindow::new(16, TelemetryConfig::disabled()).depth(), 16);
    }
}
