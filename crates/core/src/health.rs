//! Live health & SLO plane.
//!
//! The registry answers "what happened"; this module answers "is the
//! cluster healthy *right now*". A [`HealthPlane`] ticks periodically:
//! each tick closes one delta window (via the telemetry crate's
//! [`WindowSampler`]), feeds the windowed signals through per-component
//! state machines with hysteresis, and evaluates the configured SLOs as
//! burn rates. A sustained burn above the alert threshold arms the
//! flight recorder, so the causal trace of an incident is captured while
//! the incident is still happening instead of being diagnosed post-hoc.
//!
//! Components watched (all signals come out of the window, never from
//! the hot path):
//!
//! | component    | signal                                            |
//! |--------------|---------------------------------------------------|
//! | `proxy_ring` | `proxy.ring_full_waits` per second                |
//! | `drain`      | `proxy.drain_backlog` gauge at window close       |
//! | `replication`| `replica.mirror_lag` gauge, `replica.mirror_losses` |
//! | `qos`        | summed `tenant.*` throttle events per second      |
//! | `clients`    | `client.retries` + `client.reconnects` per second |
//!
//! Hysteresis: a component escalates only after `escalate_after`
//! consecutive bad ticks and steps back down one level only after
//! `recover_after` consecutive clean ticks, so a signal sitting exactly
//! on a threshold cannot flap the state. See DESIGN.md § Live health &
//! SLO plane.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use gengar_telemetry::{
    json_escape, CounterHandle, FlightRecorder, GaugeHandle, HistogramSnapshot, Registry,
    TelemetryConfig, Tracer, Window, WindowSampler,
};

use crate::config::{HealthConfig, HealthThresholds, SloConfig};

/// A component's (or the cluster's) health, worst state last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Signals below every threshold.
    Healthy,
    /// Sustained pressure: still serving, intervention advisable.
    Degraded,
    /// Sustained overload or component loss.
    Critical,
}

impl HealthState {
    /// Lower-case name used in the Inspect document.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    fn step_down(self) -> HealthState {
        match self {
            HealthState::Critical => HealthState::Degraded,
            _ => HealthState::Healthy,
        }
    }
}

/// Raw level for a rate-style signal against its two thresholds.
fn level_f64(signal: f64, degraded: f64, critical: f64) -> HealthState {
    if signal >= critical {
        HealthState::Critical
    } else if signal >= degraded {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    }
}

/// Raw level for a gauge-style signal.
fn level_i64(signal: i64, degraded: i64, critical: i64) -> HealthState {
    if signal >= critical {
        HealthState::Critical
    } else if signal >= degraded {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    }
}

/// One component's state machine: current state plus the streak counters
/// the hysteresis rules run on.
#[derive(Debug, Clone)]
struct Machine {
    state: HealthState,
    /// Consecutive ticks the raw level sat above the current state.
    worse_streak: u32,
    /// Consecutive ticks the raw level sat below the current state.
    better_streak: u32,
    /// Last raw signal, kept for the Inspect document.
    signal: f64,
}

impl Machine {
    fn new() -> Self {
        Machine {
            state: HealthState::Healthy,
            worse_streak: 0,
            better_streak: 0,
            signal: 0.0,
        }
    }

    /// Feeds one tick's raw level; returns the transition, if any.
    fn observe(
        &mut self,
        raw: HealthState,
        escalate_after: u32,
        recover_after: u32,
    ) -> Option<(HealthState, HealthState)> {
        use std::cmp::Ordering as O;
        match raw.cmp(&self.state) {
            O::Greater => {
                self.better_streak = 0;
                self.worse_streak += 1;
                if self.worse_streak >= escalate_after {
                    let old = self.state;
                    // Jump straight to the observed level: a signal that
                    // held Critical for the whole streak must not linger
                    // in Degraded first.
                    self.state = raw;
                    self.worse_streak = 0;
                    return Some((old, self.state));
                }
            }
            O::Less => {
                self.worse_streak = 0;
                self.better_streak += 1;
                if self.better_streak >= recover_after {
                    let old = self.state;
                    // Step down one level at a time: recovery is gradual
                    // even when the signal has gone completely quiet.
                    self.state = self.state.step_down();
                    self.better_streak = 0;
                    return Some((old, self.state));
                }
            }
            O::Equal => {
                self.worse_streak = 0;
                self.better_streak = 0;
            }
        }
        None
    }
}

/// One SLO's standing for the Inspect document.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name (`op_p99`, `error_rate`, `replication_lag`).
    pub name: &'static str,
    /// Observed value this window (ns for `op_p99`, ratio for
    /// `error_rate`, records for `replication_lag`).
    pub value: f64,
    /// The objective's target in the same unit.
    pub target: f64,
    /// Budget consumption rate: 1.0 = on plan, `burn_alert` = alerting.
    pub burn: f64,
    /// Whether the alert episode is currently latched.
    pub alerting: bool,
}

/// Fraction of a histogram's samples above `target_ns`, recovered by
/// binary-searching the percentile curve (the snapshot exposes
/// percentiles, not raw buckets).
fn fraction_above(h: &HistogramSnapshot, target_ns: u64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    if h.max_ns() <= target_ns {
        return 0.0;
    }
    if h.min_ns() > target_ns {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 100.0f64);
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        if h.percentile_ns(mid) <= target_ns {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (100.0 - lo) / 100.0
}

/// Burn-rate SLO tracker. Each objective is scored per window; an alert
/// latches when the burn crosses `burn_alert` (arming the flight
/// recorder once per episode) and clears when it drops back under 1.0.
#[derive(Debug)]
struct SloTracker {
    config: SloConfig,
    status: Vec<SloStatus>,
}

impl SloTracker {
    fn new(config: SloConfig) -> Self {
        let status = [
            ("op_p99", config.op_p99.as_nanos() as f64),
            ("error_rate", config.max_error_rate),
            ("replication_lag", config.max_replication_lag as f64),
        ]
        .into_iter()
        .map(|(name, target)| SloStatus {
            name,
            value: 0.0,
            target,
            burn: 0.0,
            alerting: false,
        })
        .collect();
        SloTracker { config, status }
    }

    /// Scores every objective against one window; returns the names of
    /// objectives whose alert fired this tick (newly latched).
    fn observe(&mut self, w: &Window) -> Vec<&'static str> {
        let target_ns = self.config.op_p99.as_nanos() as u64;
        let mut ops_hist = HistogramSnapshot::empty();
        if let Some(h) = w.histogram("client.read_ns") {
            ops_hist.merge(h);
        }
        if let Some(h) = w.histogram("client.write_ns") {
            ops_hist.merge(h);
        }
        let bad_fraction = fraction_above(&ops_hist, target_ns);

        let ops = w.counter("client.reads").unwrap_or(0) + w.counter("client.writes").unwrap_or(0);
        let errors = w.counter("client.retries").unwrap_or(0);
        let error_rate = if ops > 0 {
            errors as f64 / ops as f64
        } else {
            0.0
        };

        let lag = w.gauge("replica.mirror_lag").unwrap_or(0).max(0);

        let scores = [
            (
                ops_hist.p99_ns() as f64,
                bad_fraction / self.config.error_budget.max(f64::EPSILON),
            ),
            (
                error_rate,
                error_rate / self.config.max_error_rate.max(f64::EPSILON),
            ),
            (
                lag as f64,
                lag as f64 / (self.config.max_replication_lag.max(1) as f64),
            ),
        ];

        let mut fired = Vec::new();
        for (slot, (value, burn)) in self.status.iter_mut().zip(scores) {
            slot.value = value;
            slot.burn = burn;
            if burn >= self.config.burn_alert {
                if !slot.alerting {
                    slot.alerting = true;
                    fired.push(slot.name);
                }
            } else if burn < 1.0 {
                slot.alerting = false;
            }
        }
        fired
    }
}

/// Components the plane watches, in Inspect order.
const COMPONENTS: [&str; 5] = ["proxy_ring", "drain", "replication", "qos", "clients"];

/// The live health plane: one window sampler, five component state
/// machines, and the SLO tracker, advanced together by [`tick`].
///
/// One plane serves a whole cluster (signals live in the shared
/// registry); every [`crate::server::MemoryServer`] holding a reference
/// answers `Inspect` from it. Construction never starts a thread — call
/// [`start`] for wall-clock ticks or drive [`tick`] manually in tests.
///
/// [`tick`]: HealthPlane::tick
/// [`start`]: HealthPlane::start
#[derive(Debug)]
pub struct HealthPlane {
    config: HealthConfig,
    sampler: Arc<WindowSampler>,
    machines: Mutex<BTreeMap<&'static str, Machine>>,
    slo: Mutex<SloTracker>,
    ticks: AtomicU64,
    stop: AtomicBool,
    thread: Mutex<Option<JoinHandle<()>>>,
    tick_count: CounterHandle,
    transitions: CounterHandle,
    slo_alerts: CounterHandle,
    overall_level: GaugeHandle,
}

impl HealthPlane {
    /// A plane sampling the global registry (what servers share).
    pub fn new(config: HealthConfig, telemetry: TelemetryConfig) -> Arc<HealthPlane> {
        let registry = telemetry
            .handle()
            .registry()
            .cloned()
            .unwrap_or_else(Registry::global);
        Self::with_registry(config, telemetry, registry)
    }

    /// A plane sampling `registry` (tests wanting isolation).
    pub fn with_registry(
        config: HealthConfig,
        telemetry: TelemetryConfig,
        registry: Arc<Registry>,
    ) -> Arc<HealthPlane> {
        let tel = telemetry.handle();
        let sampler = WindowSampler::new(registry, config.window_ring.max(1));
        let machines = COMPONENTS.iter().map(|&c| (c, Machine::new())).collect();
        Arc::new(HealthPlane {
            slo: Mutex::new(SloTracker::new(config.slo.clone())),
            config,
            sampler,
            machines: Mutex::new(machines),
            ticks: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            thread: Mutex::new(None),
            tick_count: tel.counter("health", "ticks"),
            transitions: tel.counter("health", "transitions"),
            slo_alerts: tel.counter("health", "slo_alerts"),
            overall_level: tel.gauge("health", "overall_level"),
        })
    }

    /// The plane's configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// The window sampler (and through it the ring `Inspect` serves).
    pub fn sampler(&self) -> &Arc<WindowSampler> {
        &self.sampler
    }

    /// Ticks completed since launch.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Extracts each component's raw signal from a window.
    fn signals(&self, w: &Window) -> [(f64, HealthState); 5] {
        let t: &HealthThresholds = &self.config.thresholds;

        let ring_waits = w.rate("proxy.ring_full_waits").unwrap_or(0.0);
        let backlog = w.gauge("proxy.drain_backlog").unwrap_or(0);
        let lag = w.gauge("replica.mirror_lag").unwrap_or(0);
        let losses = w.counter("replica.mirror_losses").unwrap_or(0);
        let throttles: f64 = w
            .entries
            .iter()
            .filter(|(k, _)| {
                k.starts_with("tenant.")
                    && (k.ends_with(".throttle_waits") || k.ends_with(".rpc_throttled"))
            })
            .filter_map(|(k, _)| w.rate(k))
            .sum();
        let retries =
            w.rate("client.retries").unwrap_or(0.0) + w.rate("client.reconnects").unwrap_or(0.0);

        let replication_level = if losses > 0 {
            // A lost mirror is a durability hole regardless of lag.
            HealthState::Critical
        } else {
            level_i64(lag, t.mirror_lag_degraded, t.mirror_lag_critical)
        };

        [
            (
                ring_waits,
                level_f64(ring_waits, t.ring_wait_degraded, t.ring_wait_critical),
            ),
            (
                backlog as f64,
                level_i64(backlog, t.backlog_degraded, t.backlog_critical),
            ),
            (lag.max(losses as i64) as f64, replication_level),
            (
                throttles,
                level_f64(throttles, t.throttle_degraded, t.throttle_critical),
            ),
            (
                retries,
                level_f64(retries, t.retry_degraded, t.retry_critical),
            ),
        ]
    }

    /// Closes one window and advances every state machine and the SLO
    /// tracker. Called from the plane's thread; public so tests (and the
    /// harness) can drive evaluation in lockstep with load.
    pub fn tick(&self) {
        let window = self.sampler.sample();
        let raw = self.signals(&window);

        let mut machines = self.machines.lock().expect("health machines lock");
        for (&name, (signal, level)) in COMPONENTS.iter().zip(raw) {
            let m = machines.get_mut(name).expect("machine registered");
            m.signal = signal;
            if let Some((old, new)) = m.observe(
                level,
                self.config.escalate_after.max(1),
                self.config.recover_after.max(1),
            ) {
                self.transitions.inc();
                Tracer::global().event("health.transition", ((old as u64) << 8) | (new as u64));
                let _ = name;
            }
        }
        let overall = machines
            .values()
            .map(|m| m.state)
            .max()
            .unwrap_or(HealthState::Healthy);
        drop(machines);
        self.overall_level.set(overall as i64);

        let fired = self.slo.lock().expect("slo lock").observe(&window);
        for name in fired {
            // The whole point of the plane: capture the incident's causal
            // trace while it is happening.
            FlightRecorder::global().arm();
            self.slo_alerts.inc();
            Tracer::global().event("health.slo_alert", name.len() as u64);
        }

        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.tick_count.inc();
    }

    /// Current state of every component, in Inspect order.
    pub fn components(&self) -> Vec<(&'static str, HealthState)> {
        let machines = self.machines.lock().expect("health machines lock");
        COMPONENTS.iter().map(|&c| (c, machines[c].state)).collect()
    }

    /// Worst component state.
    pub fn overall(&self) -> HealthState {
        self.machines
            .lock()
            .expect("health machines lock")
            .values()
            .map(|m| m.state)
            .max()
            .unwrap_or(HealthState::Healthy)
    }

    /// Current standing of every SLO.
    pub fn slo_status(&self) -> Vec<SloStatus> {
        self.slo.lock().expect("slo lock").status.clone()
    }

    /// Spawns the tick thread. Idempotent; [`HealthPlane::stop`] (or
    /// drop) joins it.
    pub fn start(self: &Arc<Self>) {
        let mut slot = self.thread.lock().expect("health thread lock");
        if slot.is_some() {
            return;
        }
        self.stop.store(false, Ordering::Relaxed);
        let plane = Arc::clone(self);
        *slot = Some(
            std::thread::Builder::new()
                .name("gengar-health".into())
                .spawn(move || {
                    while !plane.stop.load(Ordering::Relaxed) {
                        std::thread::sleep(plane.config.tick);
                        if plane.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        plane.tick();
                    }
                })
                .expect("spawn health plane"),
        );
    }

    /// Stops and joins the tick thread, if running.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.thread.lock().expect("health thread lock").take() {
            let _ = join.join();
        }
    }

    /// Builds the versioned Inspect document, at most `max_bytes` long:
    /// overall + per-component states, SLO standings, per-tenant deltas
    /// from the latest window, and as many window digests (newest first)
    /// as fit the budget. The budget exists because the document rides a
    /// single RPC buffer slot.
    pub fn inspect_json(&self, server: u8, max_bytes: usize) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"v\":1,\"server\":{server},\"tick\":{},\"interval_ms\":{},\"overall\":\"{}\"",
            self.ticks(),
            self.config.tick.as_millis(),
            self.overall().as_str()
        ));

        out.push_str(",\"components\":{");
        {
            let machines = self.machines.lock().expect("health machines lock");
            let mut first = true;
            for &c in &COMPONENTS {
                let m = &machines[c];
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\"{c}\":{{\"state\":\"{}\",\"signal\":{:.1}}}",
                    m.state.as_str(),
                    m.signal
                ));
            }
        }
        out.push('}');

        out.push_str(",\"slo\":[");
        for (i, s) in self.slo_status().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"value\":{:.3},\"target\":{:.3},\"burn\":{:.3},\"alerting\":{}}}",
                s.name, s.value, s.target, s.burn, s.alerting
            ));
        }
        out.push(']');

        let latest = self.sampler.ring().latest();
        out.push_str(",\"tenants\":{");
        if let Some(w) = &latest {
            let mut first = true;
            for key in w.entries.keys() {
                let Some(rest) = key.strip_prefix("tenant.") else {
                    continue;
                };
                let Some(name) = rest.strip_suffix(".ops") else {
                    continue;
                };
                if !first {
                    out.push(',');
                }
                first = false;
                let ops = w.counter(key).unwrap_or(0);
                let bytes = w.counter(&format!("tenant.{name}.bytes")).unwrap_or(0);
                let throttles = w
                    .counter(&format!("tenant.{name}.throttle_waits"))
                    .unwrap_or(0);
                out.push_str(&format!(
                    "\"{}\":{{\"ops\":{ops},\"bytes\":{bytes},\"throttle_waits\":{throttles}}}",
                    json_escape(name)
                ));
            }
        }
        out.push('}');

        // Window digests, newest first, until the byte budget runs out.
        out.push_str(",\"windows\":[");
        let closing = "]}";
        let mut first = true;
        for w in self.sampler.ring().windows().iter().rev() {
            let ops =
                w.counter("client.reads").unwrap_or(0) + w.counter("client.writes").unwrap_or(0);
            let read_p99_us = w
                .percentile_ns("client.read_ns", 99.0)
                .unwrap_or(0)
                .div_ceil(1000);
            let write_p99_us = w
                .percentile_ns("client.write_ns", 99.0)
                .unwrap_or(0)
                .div_ceil(1000);
            let digest = format!(
                "{}{{\"seq\":{},\"ms\":{},\"ops\":{ops},\"read_p99_us\":{read_p99_us},\"write_p99_us\":{write_p99_us},\"err\":{},\"backlog\":{},\"lag\":{}}}",
                if first { "" } else { "," },
                w.seq,
                w.duration.as_millis(),
                w.counter("client.retries").unwrap_or(0),
                w.gauge("proxy.drain_backlog").unwrap_or(0),
                w.gauge("replica.mirror_lag").unwrap_or(0),
            );
            if out.len() + digest.len() + closing.len() > max_bytes {
                break;
            }
            out.push_str(&digest);
            first = false;
        }
        out.push_str(closing);
        out
    }

    /// The document servers return when the plane is disabled: versioned,
    /// valid, explicitly unknown.
    pub fn disabled_json(server: u8) -> String {
        format!(
            "{{\"v\":1,\"server\":{server},\"tick\":0,\"interval_ms\":0,\"overall\":\"unknown\",\
             \"components\":{{}},\"slo\":[],\"tenants\":{{}},\"windows\":[]}}"
        )
    }
}

impl Drop for HealthPlane {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.thread.lock().expect("health thread lock").take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::config::HealthConfig;

    fn plane_with(registry: &Arc<Registry>, config: HealthConfig) -> Arc<HealthPlane> {
        HealthPlane::with_registry(config, TelemetryConfig::disabled(), Arc::clone(registry))
    }

    fn low_threshold_config() -> HealthConfig {
        HealthConfig {
            enabled: true,
            escalate_after: 2,
            recover_after: 3,
            thresholds: HealthThresholds {
                retry_degraded: 1.0,
                // Unreachable: manual ticks close microsecond windows, so
                // rates are huge; these tests only exercise Degraded.
                retry_critical: f64::MAX,
                ..HealthThresholds::default()
            },
            ..HealthConfig::default()
        }
    }

    #[test]
    fn starts_healthy_and_stays_healthy_when_quiet() {
        let r = Arc::new(Registry::new());
        let plane = plane_with(&r, HealthConfig::enabled());
        for _ in 0..5 {
            plane.tick();
        }
        assert_eq!(plane.overall(), HealthState::Healthy);
        assert_eq!(plane.ticks(), 5);
        for (_, state) in plane.components() {
            assert_eq!(state, HealthState::Healthy);
        }
    }

    #[test]
    fn sustained_pressure_escalates_after_hysteresis() {
        let r = Arc::new(Registry::new());
        let retries = r.counter("client", "retries");
        let plane = plane_with(&r, low_threshold_config());
        // One bad window is a blip: no transition yet.
        retries.add(1_000);
        plane.tick();
        assert_eq!(plane.overall(), HealthState::Healthy);
        // A second consecutive bad window escalates.
        retries.add(1_000);
        plane.tick();
        assert_eq!(plane.overall(), HealthState::Degraded);
        let clients = plane
            .components()
            .into_iter()
            .find(|(c, _)| *c == "clients")
            .unwrap();
        assert_eq!(clients.1, HealthState::Degraded);
    }

    #[test]
    fn recovery_needs_recover_after_clean_ticks() {
        let r = Arc::new(Registry::new());
        let retries = r.counter("client", "retries");
        let plane = plane_with(&r, low_threshold_config());
        for _ in 0..2 {
            retries.add(1_000);
            plane.tick();
        }
        assert_eq!(plane.overall(), HealthState::Degraded);
        // Two clean ticks are not enough (recover_after = 3)...
        plane.tick();
        plane.tick();
        assert_eq!(plane.overall(), HealthState::Degraded);
        // ...the third steps back down.
        plane.tick();
        assert_eq!(plane.overall(), HealthState::Healthy);
    }

    /// The satellite-mandated no-flap test: a signal alternating across
    /// the threshold every tick never completes either streak, so the
    /// state holds steady.
    #[test]
    fn boundary_signal_does_not_flap() {
        let r = Arc::new(Registry::new());
        let retries = r.counter("client", "retries");
        let plane = plane_with(&r, low_threshold_config());
        let mut transitions = 0u32;
        let mut last = plane.overall();
        for i in 0..20 {
            if i % 2 == 0 {
                retries.add(1_000);
            }
            plane.tick();
            let now = plane.overall();
            if now != last {
                transitions += 1;
                last = now;
            }
        }
        assert_eq!(
            transitions, 0,
            "alternating boundary signal flapped the state"
        );
        assert_eq!(plane.overall(), HealthState::Healthy);
    }

    #[test]
    fn critical_escalation_skips_no_evidence() {
        let r = Arc::new(Registry::new());
        let retries = r.counter("client", "retries");
        let mut config = low_threshold_config();
        config.thresholds.retry_critical = 10.0;
        let plane = plane_with(&r, config);
        // Signal sits above BOTH thresholds: after the streak the state
        // jumps straight to Critical, then recovers one level at a time.
        for _ in 0..2 {
            retries.add(1_000);
            plane.tick();
        }
        assert_eq!(plane.overall(), HealthState::Critical);
        for _ in 0..3 {
            plane.tick();
        }
        assert_eq!(plane.overall(), HealthState::Degraded);
        for _ in 0..3 {
            plane.tick();
        }
        assert_eq!(plane.overall(), HealthState::Healthy);
    }

    #[test]
    fn mirror_loss_is_immediately_critical_level() {
        let r = Arc::new(Registry::new());
        let losses = r.counter("replica", "mirror_losses");
        let plane = plane_with(&r, HealthConfig::enabled());
        losses.inc();
        plane.tick();
        // Hysteresis still applies (one tick = no transition)...
        assert_eq!(plane.overall(), HealthState::Healthy);
        losses.inc();
        plane.tick();
        // ...but the raw level was Critical, so that's where it lands.
        assert_eq!(plane.overall(), HealthState::Critical);
    }

    /// The acceptance-criteria test: a burn-rate breach arms the flight
    /// recorder.
    #[test]
    fn slo_burn_breach_arms_flight_recorder() {
        let r = Arc::new(Registry::new());
        let reads = r.histogram("client", "read_ns");
        let mut config = HealthConfig::enabled();
        config.slo.op_p99 = Duration::from_nanos(10);
        config.slo.error_budget = 0.01;
        config.slo.burn_alert = 2.0;
        let plane = plane_with(&r, config);

        // Make sure the recorder starts disarmed (a previous test in this
        // process may have armed it).
        let _ = FlightRecorder::global().trigger("health-test-reset");
        assert!(!FlightRecorder::global().is_armed());

        // Every op blows the 10 ns objective: burn = 1.0/0.01 = 100.
        for _ in 0..1_000 {
            reads.record_ns(1_000_000);
        }
        plane.tick();

        assert!(
            FlightRecorder::global().is_armed(),
            "burn-rate breach must arm the flight recorder"
        );
        let slo = plane.slo_status();
        let p99 = slo.iter().find(|s| s.name == "op_p99").unwrap();
        assert!(p99.alerting, "latency objective should be alerting");
        assert!(p99.burn >= 2.0, "burn = {}", p99.burn);

        // A quiet window ends the episode.
        plane.tick();
        let slo = plane.slo_status();
        assert!(!slo.iter().find(|s| s.name == "op_p99").unwrap().alerting);
    }

    #[test]
    fn error_rate_objective_scores_retries_per_op() {
        let r = Arc::new(Registry::new());
        let reads = r.counter("client", "reads");
        let retries = r.counter("client", "retries");
        let mut config = HealthConfig::enabled();
        config.slo.max_error_rate = 0.05;
        let plane = plane_with(&r, config);
        reads.add(100);
        retries.add(50); // 50% error rate, 10x burn
        plane.tick();
        let slo = plane.slo_status();
        let err = slo.iter().find(|s| s.name == "error_rate").unwrap();
        assert!((err.value - 0.5).abs() < 1e-9, "value = {}", err.value);
        assert!(err.burn >= 9.9, "burn = {}", err.burn);
        assert!(err.alerting);
    }

    #[test]
    fn inspect_json_is_versioned_and_bounded() {
        let r = Arc::new(Registry::new());
        let reads = r.counter("client", "reads");
        r.counter("tenant.alpha", "ops").add(7);
        r.counter("tenant.alpha", "throttle_waits").add(2);
        let plane = plane_with(&r, HealthConfig::enabled());
        for _ in 0..10 {
            reads.add(5);
            plane.tick();
        }
        let doc = plane.inspect_json(3, 4_000);
        assert!(doc.len() <= 4_000);
        assert!(doc.starts_with("{\"v\":1,\"server\":3,"));
        assert!(doc.contains("\"overall\":\"healthy\""));
        assert!(doc.contains("\"proxy_ring\":{\"state\":\"healthy\""));
        assert!(doc.contains("\"name\":\"op_p99\""));
        assert!(doc.contains("\"alpha\":{\"ops\":"));
        assert!(doc.contains("\"windows\":[{\"seq\":10,"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());

        // A tiny budget still yields a closed document, just no windows.
        let tiny = plane.inspect_json(3, plane.inspect_json(3, usize::MAX).len() - 50);
        assert!(tiny.len() <= plane.inspect_json(3, usize::MAX).len());
        assert_eq!(tiny.matches('{').count(), tiny.matches('}').count());
        assert!(tiny.ends_with("]}"));
    }

    #[test]
    fn disabled_doc_is_valid_and_unknown() {
        let doc = HealthPlane::disabled_json(9);
        assert!(doc.contains("\"v\":1"));
        assert!(doc.contains("\"server\":9"));
        assert!(doc.contains("\"overall\":\"unknown\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn tick_thread_runs_and_stops() {
        let r = Arc::new(Registry::new());
        let mut config = HealthConfig::enabled();
        config.tick = Duration::from_millis(1);
        let plane = plane_with(&r, config);
        plane.start();
        plane.start(); // idempotent
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while plane.ticks() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        plane.stop();
        let ticks = plane.ticks();
        assert!(ticks >= 1, "tick thread never ticked");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(plane.ticks(), ticks, "ticked after stop");
    }

    #[test]
    fn fraction_above_bounds() {
        let mut h = HistogramSnapshot::empty();
        assert_eq!(fraction_above(&h, 100), 0.0);
        let hist = gengar_telemetry::LatencyHistogram::new();
        for ns in 1..=1000u64 {
            hist.record_ns(ns);
        }
        h = hist.snapshot();
        assert_eq!(fraction_above(&h, 2_000), 0.0);
        assert_eq!(fraction_above(&h, 0), 1.0);
        let half = fraction_above(&h, 500);
        assert!((0.4..=0.6).contains(&half), "half = {half}");
    }
}
