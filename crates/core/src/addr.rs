//! Global addresses: the pool-wide name of a byte of hybrid memory.
//!
//! Gengar exposes "remote NVM and DRAM in a global memory space" (abstract).
//! A [`GlobalAddr`] packs the owning server, the memory class on that server
//! and the byte offset within that class's exported region into one `u64`,
//! so applications pass pool pointers around as plain words.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Memory class within one server's exported regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemClass {
    /// The NVM data region (home of every allocated object).
    Nvm,
    /// The server's DRAM cache region (hot-object copies).
    DramCache,
    /// The proxy staging region (per-client write rings, ADR-protected).
    Staging,
    /// Server control region (flush watermarks, epoch counters).
    Control,
}

impl MemClass {
    const fn code(self) -> u8 {
        match self {
            MemClass::Nvm => 0,
            MemClass::DramCache => 1,
            MemClass::Staging => 2,
            MemClass::Control => 3,
        }
    }

    fn from_code(code: u8) -> Option<MemClass> {
        match code {
            0 => Some(MemClass::Nvm),
            1 => Some(MemClass::DramCache),
            2 => Some(MemClass::Staging),
            3 => Some(MemClass::Control),
            _ => None,
        }
    }
}

impl fmt::Display for MemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemClass::Nvm => "nvm",
            MemClass::DramCache => "cache",
            MemClass::Staging => "staging",
            MemClass::Control => "ctl",
        };
        write!(f, "{name}")
    }
}

/// Number of bits reserved for the offset.
const OFFSET_BITS: u32 = 48;
/// Mask for the offset field.
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// A pool-global address: `server:class:offset` packed into 64 bits
/// (8-bit server, 8-bit class, 48-bit offset).
///
/// ```
/// use gengar_core::addr::{GlobalAddr, MemClass};
///
/// let a = GlobalAddr::new(3, MemClass::Nvm, 0x1000);
/// assert_eq!(a.server(), 3);
/// assert_eq!(a.class(), MemClass::Nvm);
/// assert_eq!(a.offset(), 0x1000);
/// assert_eq!(GlobalAddr::from_raw(a.raw()), Some(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalAddr(u64);

impl GlobalAddr {
    /// Packs the components.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in 48 bits.
    pub fn new(server: u8, class: MemClass, offset: u64) -> Self {
        assert!(offset <= OFFSET_MASK, "offset {offset:#x} exceeds 48 bits");
        GlobalAddr(((server as u64) << 56) | ((class.code() as u64) << 48) | offset)
    }

    /// Reconstructs an address from its raw representation, validating the
    /// class code.
    pub fn from_raw(raw: u64) -> Option<Self> {
        MemClass::from_code(((raw >> 48) & 0xFF) as u8)?;
        Some(GlobalAddr(raw))
    }

    /// Raw 64-bit representation (what travels in protocol messages).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Owning server.
    pub fn server(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// Memory class.
    pub fn class(self) -> MemClass {
        MemClass::from_code(((self.0 >> 48) & 0xFF) as u8).expect("validated at construction")
    }

    /// Offset within the class region.
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// Returns this address advanced by `delta` bytes within the same
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows the 48-bit offset.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: u64) -> Self {
        GlobalAddr::new(self.server(), self.class(), self.offset() + delta)
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "g{}:{}:{:#x}",
            self.server(),
            self.class(),
            self.offset()
        )
    }
}

/// A typed handle to an allocated pool object: its base address plus the
/// payload size granted at allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalPtr {
    /// Base address of the object's payload.
    pub addr: GlobalAddr,
    /// Payload size in bytes.
    pub size: u64,
}

impl GlobalPtr {
    /// Creates a handle.
    pub fn new(addr: GlobalAddr, size: u64) -> Self {
        GlobalPtr { addr, size }
    }
}

impl fmt::Display for GlobalPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for server in [0u8, 1, 7, 255] {
            for class in [
                MemClass::Nvm,
                MemClass::DramCache,
                MemClass::Staging,
                MemClass::Control,
            ] {
                for offset in [0u64, 1, 4096, OFFSET_MASK] {
                    let a = GlobalAddr::new(server, class, offset);
                    assert_eq!(a.server(), server);
                    assert_eq!(a.class(), class);
                    assert_eq!(a.offset(), offset);
                    assert_eq!(GlobalAddr::from_raw(a.raw()), Some(a));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_offset_panics() {
        GlobalAddr::new(0, MemClass::Nvm, 1 << 48);
    }

    #[test]
    fn from_raw_rejects_bad_class() {
        let raw = (200u64) << 48; // class code 200 is invalid
        assert!(GlobalAddr::from_raw(raw).is_none());
    }

    #[test]
    fn add_advances_offset() {
        let a = GlobalAddr::new(2, MemClass::DramCache, 100);
        let b = a.add(28);
        assert_eq!(b.server(), 2);
        assert_eq!(b.class(), MemClass::DramCache);
        assert_eq!(b.offset(), 128);
    }

    #[test]
    fn display_formats() {
        let a = GlobalAddr::new(1, MemClass::Nvm, 0x40);
        assert_eq!(a.to_string(), "g1:nvm:0x40");
        let p = GlobalPtr::new(a, 64);
        assert_eq!(p.to_string(), "g1:nvm:0x40+64");
    }

    #[test]
    fn ordering_is_by_server_then_offset() {
        let a = GlobalAddr::new(0, MemClass::Nvm, 500);
        let b = GlobalAddr::new(1, MemClass::Nvm, 0);
        assert!(a < b);
    }
}
