//! The multi-tenant QoS plane: tenant identity, token-bucket rate and
//! bandwidth limiting, and admission control for the shared pool.
//!
//! Gengar exposes one hybrid-memory pool to many users; without isolation
//! a noisy tenant saturates the shared NIC channels and staging rings and
//! collapses every bystander's tail latency. The plane enforces per-tenant
//! budgets at three points, ordered from cheap to last-resort:
//!
//! 1. **Client issue gate** (primary): before a group posts a doorbell,
//!    the reactor charges the tenant's rate and bandwidth buckets. A
//!    denied charge *parks the group* with a wake instant from
//!    [`TokenBucket::next_admit`] — a throttled tenant queues without
//!    blocking the event loop, and healthy tenants keep flowing. Charges
//!    are scaled inversely by the tenant's weight, so co-throttled tenants
//!    share capacity weighted-fair.
//! 2. **Server RPC path**: requests from a bound tenant are charged
//!    against an enforcement-margin ops bucket (same rate, 4x burst).
//!    Only traffic that grossly outruns its budget — a client that skips
//!    the issue gate or a pathological retry storm — sees
//!    `Response::Err { THROTTLED }`, which classifies as `Retry` and
//!    backs off.
//! 3. **Fabric admission** (backstop): [`Fabric::execute_batch`] consults
//!    the plane per WR via [`gengar_rdma::QosPolicy`]. Over-burst WRs are
//!    *dropped* (no transfer, no completion — the initiator times out and
//!    retries), never delayed: shaping at the fabric would push the
//!    shared FIFO port cursors into the future and tax every bystander.
//!
//! Staged writes get a fourth control: a per-tenant cap on staged bytes
//! in flight ([`TenantState::try_reserve_staged`]). The client reserves
//! before posting a staged window and releases when the flight settles;
//! a full budget backpressures (parks) and a batch that alone exceeds
//! the cap sheds to the direct-write path before the drain collapses.
//!
//! Token buckets refill in *simulated* seconds: the whole repo stretches
//! modelled delays by [`gengar_hybridmem::time_scale`], so a limit of
//! "100 MB/s" means 100 MB per simulated second at any stretch.
//!
//! [`Fabric::execute_batch`]: gengar_rdma::Fabric

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use gengar_rdma::{NodeId, QosPolicy, QosVerdict};
use gengar_telemetry::{CounterHandle, TelemetryConfig};
use serde::{Deserialize, Serialize};

/// Burst multiplier of the enforcement buckets (server RPC path, fabric
/// admission) over the issue-gate burst. A client that paces at the issue
/// gate never trips enforcement; only gate-skipping traffic does.
const ENFORCE_BURST: f64 = 4.0;

/// A token bucket with a configurable burst allowance, modelled on the
/// classic rate limiter: tokens refill continuously at `limit` per
/// simulated second up to `limit * burst_ratio`, and a charge succeeds if
/// the balance covers it. A limit of 0 means unlimited.
///
/// Refill uses wall-clock elapsed time divided by the global
/// [`gengar_hybridmem::time_scale`], so budgets hold their meaning in
/// experiments that stretch modelled delays.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
}

#[derive(Debug, Clone, Copy)]
struct BucketState {
    /// Tokens per simulated second; 0 disables limiting.
    limit: f64,
    /// Maximum balance (`limit * burst_ratio`).
    burst: f64,
    /// Current balance.
    tokens: f64,
    /// Wall-clock instant of the last refill.
    last: Instant,
}

impl BucketState {
    fn refill(&mut self, now: Instant) {
        let sim_secs =
            now.saturating_duration_since(self.last).as_secs_f64() / gengar_hybridmem::time_scale();
        self.tokens = (self.tokens + sim_secs * self.limit).min(self.burst);
        self.last = now;
    }
}

impl TokenBucket {
    /// A bucket admitting `limit` tokens per simulated second with a
    /// burst allowance of `limit * burst_ratio` (at least one token, so a
    /// tiny limit still admits single ops). `limit == 0` is unlimited.
    pub fn new(limit: u64, burst_ratio: f64) -> TokenBucket {
        let limit = limit as f64;
        let burst = (limit * burst_ratio.max(0.0)).max(1.0);
        TokenBucket {
            state: Mutex::new(BucketState {
                limit,
                burst,
                tokens: burst,
                last: Instant::now(),
            }),
        }
    }

    /// Charges `cost` tokens if the balance covers it. Unlimited buckets
    /// always admit.
    pub fn try_take(&self, cost: f64) -> bool {
        let mut s = self.state.lock().unwrap();
        if s.limit == 0.0 {
            return true;
        }
        s.refill(Instant::now());
        if s.tokens >= cost {
            s.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Returns `cost` tokens to the bucket (capped at the burst), undoing
    /// a charge whose sibling bucket then denied.
    pub fn give(&self, cost: f64) {
        let mut s = self.state.lock().unwrap();
        if s.limit == 0.0 {
            return;
        }
        s.tokens = (s.tokens + cost).min(s.burst);
    }

    /// The wall-clock instant at which a charge of `cost` will be
    /// admissible, assuming no competing drains: now if it already is,
    /// otherwise now plus the deficit's refill time (scaled back to wall
    /// clock). A cost above the burst is clamped to it so the caller's
    /// park always wakes.
    pub fn next_admit(&self, cost: f64) -> Instant {
        let mut s = self.state.lock().unwrap();
        let now = Instant::now();
        if s.limit == 0.0 {
            return now;
        }
        s.refill(now);
        let deficit = cost.min(s.burst) - s.tokens;
        if deficit <= 0.0 {
            return now;
        }
        let wall_secs = deficit / s.limit * gengar_hybridmem::time_scale();
        now + Duration::from_secs_f64(wall_secs)
    }

    /// Replaces the limit and burst ratio, clamping the balance to the
    /// new burst.
    pub fn reset(&self, limit: u64, burst_ratio: f64) {
        let mut s = self.state.lock().unwrap();
        s.refill(Instant::now());
        s.limit = limit as f64;
        s.burst = (s.limit * burst_ratio.max(0.0)).max(1.0);
        s.tokens = s.tokens.min(s.burst);
    }

    /// The configured limit (tokens per simulated second; 0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.state.lock().unwrap().limit as u64
    }

    /// The current balance after a refill (tests and introspection).
    pub fn balance(&self) -> f64 {
        let mut s = self.state.lock().unwrap();
        if s.limit == 0.0 {
            return f64::INFINITY;
        }
        s.refill(Instant::now());
        s.tokens
    }
}

/// Per-tenant budget specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name; matched against [`crate::config::ClientConfig::tenant`].
    pub name: String,
    /// Operations per simulated second; 0 = unlimited.
    #[serde(default)]
    pub ops_per_sec: u64,
    /// Payload bytes per simulated second; 0 = unlimited.
    #[serde(default)]
    pub bytes_per_sec: u64,
    /// Staged-write bytes allowed in flight (staging-ring admission);
    /// 0 = unlimited.
    #[serde(default)]
    pub staged_bytes_cap: u64,
    /// Weighted-fair share: charges are divided by the weight, so a
    /// weight-2 tenant gets twice the throughput of a weight-1 tenant at
    /// the same configured limits.
    #[serde(default = "default_weight")]
    pub weight: u32,
}

fn default_weight() -> u32 {
    1
}

impl TenantSpec {
    /// An unlimited spec for `name` (the implicit default tenant).
    pub fn unlimited(name: &str) -> TenantSpec {
        TenantSpec {
            name: name.to_owned(),
            ops_per_sec: 0,
            bytes_per_sec: 0,
            staged_bytes_cap: 0,
            weight: default_weight(),
        }
    }
}

/// QoS plane configuration, carried on [`crate::config::ServerConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Master switch; off by default (no plane is built, zero overhead).
    #[serde(default)]
    pub enabled: bool,
    /// Burst allowance as a multiple of each limit (the issue-gate
    /// buckets; enforcement buckets get 4x this).
    #[serde(default = "default_burst_ratio")]
    pub burst_ratio: f64,
    /// Per-tenant budgets; tenants not listed here run unlimited.
    #[serde(default)]
    pub tenants: Vec<TenantSpec>,
}

fn default_burst_ratio() -> f64 {
    2.0
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            enabled: false,
            burst_ratio: default_burst_ratio(),
            tenants: Vec::new(),
        }
    }
}

impl QosConfig {
    /// The budget spec for `name`: the configured entry, or unlimited.
    pub fn spec_for(&self, name: &str) -> TenantSpec {
        self.tenants
            .iter()
            .find(|t| t.name == name)
            .cloned()
            .unwrap_or_else(|| TenantSpec::unlimited(name))
    }
}

/// Live per-tenant state: the limiter buckets, the staged-bytes gauge and
/// the tenant's telemetry breakdown (components `tenant.<name>`).
#[derive(Debug)]
pub struct TenantState {
    spec: TenantSpec,
    /// Compact id carried in staged record headers so the server drain
    /// can account bytes to the tenant after the client-visible ack.
    tag: u32,
    /// Issue-gate buckets (primary enforcement, client side).
    rate: TokenBucket,
    bw: TokenBucket,
    /// Enforcement-margin buckets (server RPC path / fabric admission):
    /// same rates, 4x burst, charged independently so pacing at the
    /// issue gate never double-counts.
    rate_enforce: TokenBucket,
    bw_enforce: TokenBucket,
    /// Staged bytes currently in flight (reserved, not yet settled).
    staged_bytes: AtomicU64,
    /// Live sessions bound to this tenant (server-side connections).
    refs: AtomicU32,
    // Telemetry: the per-tenant breakdown in snapshots.
    m_ops: CounterHandle,
    m_bytes: CounterHandle,
    m_throttle_waits: CounterHandle,
    m_rpc_throttled: CounterHandle,
    m_fabric_dropped: CounterHandle,
    m_staged_shed: CounterHandle,
    m_drained_bytes: CounterHandle,
}

impl TenantState {
    fn new(
        spec: TenantSpec,
        tag: u32,
        burst_ratio: f64,
        telemetry: TelemetryConfig,
    ) -> TenantState {
        let tel = telemetry.handle();
        let component = format!("tenant.{}", spec.name);
        TenantState {
            rate: TokenBucket::new(spec.ops_per_sec, burst_ratio),
            bw: TokenBucket::new(spec.bytes_per_sec, burst_ratio),
            rate_enforce: TokenBucket::new(spec.ops_per_sec, burst_ratio * ENFORCE_BURST),
            bw_enforce: TokenBucket::new(spec.bytes_per_sec, burst_ratio * ENFORCE_BURST),
            staged_bytes: AtomicU64::new(0),
            refs: AtomicU32::new(0),
            m_ops: tel.counter(&component, "ops"),
            m_bytes: tel.counter(&component, "bytes"),
            m_throttle_waits: tel.counter(&component, "throttle_waits"),
            m_rpc_throttled: tel.counter(&component, "rpc_throttled"),
            m_fabric_dropped: tel.counter(&component, "fabric_dropped"),
            m_staged_shed: tel.counter(&component, "staged_shed"),
            m_drained_bytes: tel.counter(&component, "drained_bytes"),
            spec,
            tag,
        }
    }

    /// The tenant's budget spec.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// The compact tag carried in staged record headers.
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Weighted charge: weight-w tenants pay `1/w` of the nominal cost.
    fn charge(&self, n: f64) -> f64 {
        n / f64::from(self.spec.weight.max(1))
    }

    /// The client issue gate: charges `ops` operations and `bytes`
    /// payload bytes against the tenant's budgets. `Ok(())` admits;
    /// `Err(wake)` means the caller should park until `wake` and try
    /// again (the charge is fully refunded — tokens are conserved).
    pub fn issue_admit(&self, ops: u64, bytes: u64) -> Result<(), Instant> {
        let op_cost = self.charge(ops as f64);
        let byte_cost = self.charge(bytes as f64);
        if !self.rate.try_take(op_cost) {
            self.m_throttle_waits.inc();
            return Err(self.rate.next_admit(op_cost));
        }
        if !self.bw.try_take(byte_cost) {
            // Refund the sibling so a denied admit conserves tokens.
            self.rate.give(op_cost);
            self.m_throttle_waits.inc();
            return Err(self.bw.next_admit(byte_cost));
        }
        self.m_ops.add(ops);
        self.m_bytes.add(bytes);
        Ok(())
    }

    /// The server RPC-path check: one request against the
    /// enforcement-margin ops bucket. `false` means THROTTLED.
    pub fn rpc_admit(&self) -> bool {
        let ok = self.rate_enforce.try_take(self.charge(1.0));
        if !ok {
            self.m_rpc_throttled.inc();
        }
        ok
    }

    /// Reserves `bytes` of staged-write budget; `false` when the tenant's
    /// in-flight cap is exhausted (caller backpressures or sheds).
    pub fn try_reserve_staged(&self, bytes: u64) -> bool {
        let cap = self.spec.staged_bytes_cap;
        if cap == 0 {
            return true;
        }
        let mut cur = self.staged_bytes.load(Ordering::Relaxed);
        loop {
            if cur + bytes > cap {
                return false;
            }
            match self.staged_bytes.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whether a single batch of `bytes` could *ever* fit the staged
    /// cap — if not, waiting is pointless and the caller must shed.
    pub fn staged_fits(&self, bytes: u64) -> bool {
        self.spec.staged_bytes_cap == 0 || bytes <= self.spec.staged_bytes_cap
    }

    /// Releases a staged reservation once the flight settles (or fails).
    pub fn release_staged(&self, bytes: u64) {
        if self.spec.staged_bytes_cap == 0 {
            return;
        }
        let prev = self.staged_bytes.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "staged release exceeds reservation");
    }

    /// Staged bytes currently reserved.
    pub fn staged_in_flight(&self) -> u64 {
        self.staged_bytes.load(Ordering::Relaxed)
    }

    /// Counts a staged batch shed to the direct path.
    pub fn note_staged_shed(&self) {
        self.m_staged_shed.inc();
    }

    /// Counts `bytes` drained to NVM for this tenant (server drain path).
    pub fn note_drained(&self, bytes: u64) {
        self.m_drained_bytes.add(bytes);
    }

    /// Live sessions bound to this tenant.
    pub fn sessions(&self) -> u32 {
        self.refs.load(Ordering::Relaxed)
    }
}

/// One server-side client session the plane tracks: the client's fabric
/// node (for the fabric admission map) and, once Mount binds it, the
/// tenant.
#[derive(Debug)]
struct Session {
    node: NodeId,
    tenant: Option<Arc<TenantState>>,
}

/// The shared QoS plane of a cluster: the tenant registry plus the
/// NodeId → tenant map the fabric backstop consults. One instance is
/// shared by the fabric config, every server and (for issue-gate pacing)
/// every client.
#[derive(Debug)]
pub struct QosPlane {
    config: QosConfig,
    telemetry: TelemetryConfig,
    next_tag: AtomicU32,
    inner: RwLock<PlaneInner>,
}

#[derive(Debug, Default)]
struct PlaneInner {
    /// Tenants with at least one live session or client handle request.
    tenants: HashMap<String, Arc<TenantState>>,
    /// Tag → tenant, for drain-path accounting from record headers.
    by_tag: HashMap<u32, Arc<TenantState>>,
    /// Client fabric node → tenant, for fabric admission.
    nodes: HashMap<NodeId, Arc<TenantState>>,
    /// (server id, client id) → session, so teardown can release exactly
    /// what the handshake registered.
    sessions: HashMap<(u8, u32), Session>,
}

impl QosPlane {
    /// Builds a plane from the cluster's QoS config.
    pub fn new(config: QosConfig, telemetry: TelemetryConfig) -> Arc<QosPlane> {
        Arc::new(QosPlane {
            config,
            telemetry,
            next_tag: AtomicU32::new(1),
            inner: RwLock::new(PlaneInner::default()),
        })
    }

    /// The plane's configuration.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    fn tenant_entry(inner: &mut PlaneInner, plane: &QosPlane, name: &str) -> Arc<TenantState> {
        if let Some(t) = inner.tenants.get(name) {
            return Arc::clone(t);
        }
        let tag = plane.next_tag.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(TenantState::new(
            plane.config.spec_for(name),
            tag,
            plane.config.burst_ratio,
            plane.telemetry,
        ));
        inner.tenants.insert(name.to_owned(), Arc::clone(&state));
        inner.by_tag.insert(tag, Arc::clone(&state));
        state
    }

    /// Records an accepted connection before Mount names its tenant, so a
    /// handshake that dies pre-Mount still has a session to release.
    pub fn connect(&self, server: u8, cid: u32, node: NodeId) {
        self.inner
            .write()
            .unwrap()
            .sessions
            .insert((server, cid), Session { node, tenant: None });
    }

    /// Binds the session to `tenant` (the Mount request named it): takes
    /// a registry reference and maps the client's node for fabric
    /// admission. Returns the tenant's record-header tag.
    pub fn bind(&self, server: u8, cid: u32, tenant: &str) -> u32 {
        let mut inner = self.inner.write().unwrap();
        let state = Self::tenant_entry(&mut inner, self, tenant);
        let tag = state.tag;
        let swapped = match inner.sessions.get_mut(&(server, cid)) {
            Some(sess) => {
                state.refs.fetch_add(1, Ordering::Relaxed);
                let node = sess.node;
                let prev = sess.tenant.replace(Arc::clone(&state));
                Some((node, prev))
            }
            // Unknown session (accept never registered): nothing to bind.
            None => None,
        };
        if let Some((node, prev)) = swapped {
            inner.nodes.insert(node, state);
            // A re-Mount over a live session drops the old binding.
            if let Some(prev) = prev {
                Self::unref(&mut inner, &prev);
            }
        }
        tag
    }

    fn unref(inner: &mut PlaneInner, state: &Arc<TenantState>) {
        if state.refs.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last session gone: free the bucket set so a reconnect storm
            // (bind/release cycles) cannot accumulate tenant state.
            inner.tenants.remove(&state.spec.name);
            inner.by_tag.remove(&state.tag);
        }
    }

    /// Releases a session on teardown or failed handshake: unmaps the
    /// client node and drops the tenant reference. The last reference
    /// frees the tenant's buckets (no leak across reconnect storms).
    pub fn release(&self, server: u8, cid: u32) {
        let mut inner = self.inner.write().unwrap();
        if let Some(sess) = inner.sessions.remove(&(server, cid)) {
            inner.nodes.remove(&sess.node);
            if let Some(state) = sess.tenant {
                Self::unref(&mut inner, &state);
            }
        }
    }

    /// The tenant bound to a live session, if Mount has named one.
    pub fn tenant_of(&self, server: u8, cid: u32) -> Option<Arc<TenantState>> {
        self.inner
            .read()
            .unwrap()
            .sessions
            .get(&(server, cid))
            .and_then(|s| s.tenant.clone())
    }

    /// The tenant for a record-header tag (server drain accounting).
    pub fn tenant_by_tag(&self, tag: u32) -> Option<Arc<TenantState>> {
        self.inner.read().unwrap().by_tag.get(&tag).cloned()
    }

    /// A client-side handle onto `tenant`'s shared state for issue-gate
    /// pacing. Creates the state if absent; does not take a session
    /// reference (the server-side handshake owns the lifecycle, and the
    /// returned `Arc` keeps the buckets alive for this client even if
    /// every session releases).
    pub fn handle(&self, tenant: &str) -> Arc<TenantState> {
        let mut inner = self.inner.write().unwrap();
        Self::tenant_entry(&mut inner, self, tenant)
    }

    /// Live tenant names (diagnostics).
    pub fn tenants(&self) -> Vec<String> {
        self.inner.read().unwrap().tenants.keys().cloned().collect()
    }
}

impl QosPolicy for QosPlane {
    fn admit(&self, src: NodeId, bytes: u64) -> QosVerdict {
        let tenant = match self.inner.read().unwrap().nodes.get(&src) {
            Some(t) => Arc::clone(t),
            // Unknown nodes (servers, unregistered clients) pass free.
            None => return QosVerdict::Admit,
        };
        if tenant.bw_enforce.try_take(tenant.charge(bytes as f64)) {
            QosVerdict::Admit
        } else {
            tenant.m_fabric_dropped.inc();
            QosVerdict::Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    fn bucket(limit: u64, ratio: f64) -> TokenBucket {
        TokenBucket::new(limit, ratio)
    }

    #[test]
    fn unlimited_bucket_always_admits() {
        let b = bucket(0, 2.0);
        for _ in 0..10_000 {
            assert!(b.try_take(1e12));
        }
        assert!(b.next_admit(1e12) <= Instant::now());
    }

    #[test]
    fn burst_cap_never_exceeded() {
        // Property: a fresh bucket admits at most burst + refill(elapsed)
        // tokens, however the drains are sliced.
        let limit = 1_000u64;
        let ratio = 1.5;
        let b = bucket(limit, ratio);
        let t0 = Instant::now();
        let mut granted = 0.0;
        for _ in 0..100_000 {
            if b.try_take(1.0) {
                granted += 1.0;
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let allowed = limit as f64 * ratio + limit as f64 * elapsed + 1.0;
        assert!(
            granted <= allowed,
            "granted {granted} > burst+refill {allowed}"
        );
    }

    #[test]
    fn token_conservation_under_concurrent_drains() {
        // Property (merge-law style): N threads hammering one bucket can
        // never jointly extract more than burst + limit * elapsed.
        let limit = 50_000u64;
        let ratio = 1.0;
        let b = Arc::new(bucket(limit, ratio));
        let granted = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                let granted = Arc::clone(&granted);
                thread::spawn(move || {
                    for _ in 0..200_000 {
                        if b.try_take(1.0) {
                            granted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let total = granted.load(Ordering::Relaxed) as f64;
        // +2.0 absorbs float slop at the boundary.
        let allowed = limit as f64 * ratio + limit as f64 * elapsed + 2.0;
        assert!(total <= allowed, "drained {total} > allowed {allowed}");
    }

    #[test]
    fn starvation_freedom_blocked_drain_eventually_admits() {
        // Property: once the bucket is empty, next_admit names a finite
        // wake instant and the charge succeeds shortly after it.
        let b = bucket(10_000, 1.0);
        while b.try_take(1_000.0) {}
        let wake = b.next_admit(100.0);
        assert!(wake > Instant::now(), "empty bucket admitted immediately");
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if Instant::now() >= wake && b.try_take(100.0) {
                break;
            }
            assert!(Instant::now() < deadline, "blocked charge never admitted");
            thread::yield_now();
        }
    }

    #[test]
    fn next_admit_clamps_oversize_cost_to_burst() {
        let b = bucket(1_000, 1.0);
        // A cost above the burst can never be covered; the wake instant
        // must still be finite (when the bucket is full again).
        let wake = b.next_admit(1e9);
        assert!(wake <= Instant::now() + Duration::from_secs(2));
    }

    #[test]
    fn give_refunds_but_never_overfills() {
        let b = bucket(1_000, 1.0);
        assert!(b.try_take(500.0));
        b.give(500.0);
        b.give(1e9);
        assert!(b.balance() <= 1_000.0 + 1.0);
    }

    #[test]
    fn reset_rescales_limits() {
        let b = bucket(10, 1.0);
        while b.try_take(1.0) {}
        b.reset(1_000_000, 2.0);
        assert_eq!(b.limit(), 1_000_000);
        // The balance was clamped, not refilled: still near empty.
        assert!(b.balance() < 1_000.0);
    }

    fn plane_with(tenants: Vec<TenantSpec>) -> Arc<QosPlane> {
        QosPlane::new(
            QosConfig {
                enabled: true,
                burst_ratio: 1.0,
                tenants,
            },
            TelemetryConfig::disabled(),
        )
    }

    #[test]
    fn bind_release_frees_tenant_buckets() {
        let plane = plane_with(vec![]);
        plane.connect(0, 1, NodeId(7));
        plane.connect(0, 2, NodeId(8));
        plane.bind(0, 1, "acme");
        plane.bind(0, 2, "acme");
        let state = plane.tenant_of(0, 1).unwrap();
        assert_eq!(state.sessions(), 2);
        assert!(Arc::ptr_eq(&state, &plane.tenant_of(0, 2).unwrap()));
        plane.release(0, 1);
        assert_eq!(state.sessions(), 1);
        plane.release(0, 2);
        // Last session gone: the registry entry is freed — a reconnect
        // storm of bind/release cycles cannot accumulate buckets.
        assert!(plane.tenants().is_empty());
        assert!(plane.tenant_by_tag(state.tag()).is_none());
    }

    #[test]
    fn release_without_bind_is_clean() {
        // A handshake that dies before Mount releases a tenant-less
        // session; nothing must leak or panic.
        let plane = plane_with(vec![]);
        for cid in 0..1_000 {
            plane.connect(0, cid, NodeId(cid));
            plane.release(0, cid);
        }
        assert!(plane.tenants().is_empty());
    }

    #[test]
    fn rebind_over_live_session_swaps_tenant() {
        let plane = plane_with(vec![]);
        plane.connect(0, 1, NodeId(7));
        plane.bind(0, 1, "a");
        plane.bind(0, 1, "b");
        assert_eq!(plane.tenant_of(0, 1).unwrap().spec().name, "b");
        assert_eq!(plane.tenants(), vec!["b".to_owned()]);
        plane.release(0, 1);
        assert!(plane.tenants().is_empty());
    }

    #[test]
    fn fabric_admission_unknown_node_passes() {
        let plane = plane_with(vec![]);
        assert_eq!(plane.admit(NodeId(99), 1 << 30), QosVerdict::Admit);
    }

    #[test]
    fn fabric_admission_drops_over_burst_tenant() {
        let plane = plane_with(vec![TenantSpec {
            name: "noisy".into(),
            ops_per_sec: 0,
            bytes_per_sec: 1_000,
            staged_bytes_cap: 0,
            weight: 1,
        }]);
        plane.connect(0, 1, NodeId(5));
        plane.bind(0, 1, "noisy");
        // Enforcement burst = 1000 * 1.0 * 4 = 4000 bytes; blast past it.
        let mut dropped = false;
        for _ in 0..100 {
            if plane.admit(NodeId(5), 1_000) == QosVerdict::Drop {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "over-burst tenant was never dropped");
        // An unlimited bystander on another node still passes.
        plane.connect(0, 2, NodeId(6));
        plane.bind(0, 2, "quiet");
        assert_eq!(plane.admit(NodeId(6), 1 << 20), QosVerdict::Admit);
    }

    #[test]
    fn issue_admit_refunds_on_partial_denial() {
        // rate bucket roomy, bw bucket tiny: a denied admit must refund
        // the rate charge (token conservation across the pair).
        let plane = plane_with(vec![TenantSpec {
            name: "t".into(),
            ops_per_sec: 1_000_000,
            bytes_per_sec: 10,
            staged_bytes_cap: 0,
            weight: 1,
        }]);
        let t = plane.handle("t");
        let before = t.rate.balance();
        assert!(t.issue_admit(1, 1 << 20).is_err());
        let after = t.rate.balance();
        assert!(
            after >= before - 0.001,
            "rate tokens lost on denied admit: {before} -> {after}"
        );
    }

    #[test]
    fn weighted_charge_scales_share() {
        let mk = |w: u32| {
            plane_with(vec![TenantSpec {
                name: "t".into(),
                ops_per_sec: 1_000,
                bytes_per_sec: 0,
                staged_bytes_cap: 0,
                weight: w,
            }])
            .handle("t")
        };
        let grants = |t: &Arc<TenantState>| {
            let mut n = 0;
            while t.issue_admit(1, 0).is_ok() {
                n += 1;
                if n > 100_000 {
                    break;
                }
            }
            n
        };
        let g1 = grants(&mk(1));
        let g4 = grants(&mk(4));
        // Weight 4 admits ~4x the ops from the same burst.
        assert!(g4 >= g1 * 3, "weight-4 tenant admitted {g4}, weight-1 {g1}");
    }

    #[test]
    fn staged_reservation_caps_in_flight_bytes() {
        let plane = plane_with(vec![TenantSpec {
            name: "t".into(),
            ops_per_sec: 0,
            bytes_per_sec: 0,
            staged_bytes_cap: 10_000,
            weight: 1,
        }]);
        let t = plane.handle("t");
        assert!(t.try_reserve_staged(6_000));
        assert!(!t.try_reserve_staged(6_000));
        assert!(!t.staged_fits(20_000));
        assert!(t.staged_fits(10_000));
        t.release_staged(6_000);
        assert!(t.try_reserve_staged(10_000));
        assert_eq!(t.staged_in_flight(), 10_000);
        t.release_staged(10_000);
        assert_eq!(t.staged_in_flight(), 0);
    }

    #[test]
    fn config_spec_lookup_defaults_to_unlimited() {
        let cfg = QosConfig {
            enabled: true,
            burst_ratio: 2.0,
            tenants: vec![TenantSpec {
                name: "a".into(),
                ops_per_sec: 5,
                bytes_per_sec: 6,
                staged_bytes_cap: 7,
                weight: 2,
            }],
        };
        assert_eq!(cfg.spec_for("a").ops_per_sec, 5);
        let other = cfg.spec_for("b");
        assert_eq!(other.ops_per_sec, 0);
        assert_eq!(other.weight, 1);
    }
}
