//! Error type for the Gengar DSHM pool.

use std::error::Error;
use std::fmt;

use gengar_hybridmem::HybridMemError;
use gengar_rdma::RdmaError;

use crate::addr::GlobalAddr;

/// Errors produced by Gengar servers and clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GengarError {
    /// The pool has no server with this id.
    UnknownServer(u8),
    /// The server's NVM region cannot satisfy the allocation.
    OutOfMemory {
        /// Requested payload size.
        requested: u64,
    },
    /// An allocation request exceeded the largest supported object size.
    ObjectTooLarge {
        /// Requested payload size.
        requested: u64,
        /// Largest supported payload size.
        max: u64,
    },
    /// The address does not name a live object.
    InvalidAddress(GlobalAddr),
    /// A read/write exceeded the object's bounds.
    AccessOutOfBounds {
        /// Object address.
        addr: GlobalAddr,
        /// Requested offset within the object.
        offset: u64,
        /// Requested length.
        len: u64,
        /// The object's payload size.
        size: u64,
    },
    /// Freeing an object that was already freed.
    DoubleFree(GlobalAddr),
    /// The RPC peer answered with an unexpected or malformed message.
    ProtocolViolation(&'static str),
    /// Lock acquisition gave up after exhausting retries.
    LockContended(GlobalAddr),
    /// A consistent read kept observing concurrent modification.
    ReadContended(GlobalAddr),
    /// Wire-path error code: an ordering-sensitive atomic operation
    /// (`lock`, `unlock`, `cas_u64`, `faa_u64`) arrived inside a batched
    /// request. The [`crate::batch::OpBatch`] builder cannot express
    /// atomics (they are unrepresentable at the type level), so this only
    /// surfaces from a malformed remote request. The payload names the
    /// offending operation.
    AtomicInBatch(&'static str),
    /// The underlying RDMA transport failed.
    Rdma(RdmaError),
    /// The underlying simulated memory failed.
    Memory(HybridMemError),
    /// The server is shutting down or unreachable.
    ServerUnavailable(u8),
    /// The tenant is over its QoS budget; the op should back off and
    /// retry (the retry machinery classifies this as retryable).
    Throttled,
}

impl fmt::Display for GengarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GengarError::UnknownServer(id) => write!(f, "unknown server {id}"),
            GengarError::OutOfMemory { requested } => {
                write!(f, "out of pool memory allocating {requested} bytes")
            }
            GengarError::ObjectTooLarge { requested, max } => {
                write!(f, "object of {requested} bytes exceeds maximum {max}")
            }
            GengarError::InvalidAddress(a) => write!(f, "invalid address {a}"),
            GengarError::AccessOutOfBounds {
                addr,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) out of bounds for object {addr} of {size} bytes"
            ),
            GengarError::DoubleFree(a) => write!(f, "double free of {a}"),
            GengarError::ProtocolViolation(what) => write!(f, "protocol violation: {what}"),
            GengarError::LockContended(a) => write!(f, "could not lock {a}: contended"),
            GengarError::ReadContended(a) => {
                write!(f, "consistent read of {a} kept observing writers")
            }
            GengarError::AtomicInBatch(what) => write!(
                f,
                "atomic operation `{what}` is not allowed in a batch: atomics are \
                 ordering-sensitive and bypass batching"
            ),
            GengarError::Rdma(e) => write!(f, "rdma error: {e}"),
            GengarError::Memory(e) => write!(f, "memory error: {e}"),
            GengarError::ServerUnavailable(id) => write!(f, "server {id} unavailable"),
            GengarError::Throttled => write!(f, "tenant over QoS budget (throttled)"),
        }
    }
}

impl Error for GengarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GengarError::Rdma(e) => Some(e),
            GengarError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RdmaError> for GengarError {
    fn from(e: RdmaError) -> Self {
        GengarError::Rdma(e)
    }
}

impl From<HybridMemError> for GengarError {
    fn from(e: HybridMemError) -> Self {
        GengarError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = GengarError::OutOfMemory { requested: 4096 };
        assert!(e.to_string().contains("4096"));
        let e = GengarError::ObjectTooLarge {
            requested: 10,
            max: 5,
        };
        assert!(e.to_string().contains("maximum 5"));
    }

    #[test]
    fn conversions_wrap() {
        let e: GengarError = RdmaError::Timeout.into();
        assert_eq!(e, GengarError::Rdma(RdmaError::Timeout));
        assert!(std::error::Error::source(&e).is_some());
    }
}
