//! The Gengar client library: the "simple programming APIs on viewing
//! remote NVM and DRAM in a global memory space" (abstract).
//!
//! A [`GengarClient`] connects to every memory server in the pool and
//! exposes `alloc` / `free` / `read` / `write` / `cas_u64` / `lock` /
//! `unlock` over [`GlobalPtr`]s. Reads transparently hit the server-side
//! DRAM cache when the object is hot; writes take the proxy fast path when
//! it is enabled and safe. Each client is single-threaded by design (one
//! connection state per thread), mirroring how RDMA applications shard
//! queue pairs across threads.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gengar_hybridmem::{DeviceProfile, MemDevice, MemRegion};
use gengar_rdma::{
    Access, Fabric, MemoryRegion, Payload, PendingOps, ProtectionDomain, RKey, RdmaError, RdmaNode,
    RemoteAddr, SendOp, Sge, Wc,
};
use gengar_telemetry::{
    adopt, Counter, CounterHandle, HistogramHandle, SpanId, Telemetry, TelemetryConfig, TraceId,
    TraceSpan,
};

use crate::addr::{GlobalAddr, GlobalPtr, MemClass};
use crate::batch::{BatchOp, BatchResult, OpBatch};
use crate::config::{ClientConfig, Consistency};
use crate::consistency::Backoff;
use crate::error::GengarError;
use crate::hotness::AccessEntry;
use crate::layout::{decode_slot_header, lockword, OBJ_HEADER, SLOT_HEADER, SLOT_TAIL};
use crate::proto::{error_for_code, MountInfo, Request, Response, MAX_REPORT, NO_BACKUP};
use crate::proxy::{MirrorLane, StagedFlight, StagingWriter};
use crate::qos::TenantState;
use crate::retry::{classify, Disposition, RetryPolicy, RetryState};
use crate::rpc::{RpcClient, RPC_BUF_BYTES};
use crate::server::MemoryServer;
use crate::window::OpWindow;

/// Client operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Read operations issued.
    pub reads: u64,
    /// Write operations issued.
    pub writes: u64,
    /// Reads served from the server DRAM cache.
    pub cache_hits: u64,
    /// Reads that had a remap entry but fell back to NVM.
    pub cache_rejects: u64,
    /// Reads served straight from NVM.
    pub nvm_reads: u64,
    /// Reads served from the local write-back buffer.
    pub writeback_hits: u64,
    /// Writes that took the proxy fast path.
    pub staged_writes: u64,
    /// Writes that went directly to NVM (+ flush RPC).
    pub direct_writes: u64,
    /// Lock acquisition retries.
    pub lock_retries: u64,
    /// Consistent-read retries.
    pub read_retries: u64,
    /// Access reports sent.
    pub reports: u64,
    /// Fault-recovery retries (backoff rounds after a transient failure).
    pub retries: u64,
    /// Successful reconnects after a dead connection or refused server.
    pub reconnects: u64,
    /// Successful failovers: a dead server's objects re-mounted on its
    /// replica (promotion + shadow routing).
    pub failovers: u64,
    /// Writes forced onto the direct NVM path because the connection was
    /// degraded (staging repeatedly faulted).
    pub degraded_ops: u64,
}

/// One client statistic: a per-instance counter (authoritative for
/// [`ClientStats`] snapshots, so concurrent clients in one process never
/// share counts) plus the pooled `client.*` registry counter the bench
/// harness exports.
#[derive(Debug, Default)]
struct StatCounter {
    local: Counter,
    global: CounterHandle,
}

impl StatCounter {
    fn new(tel: &Telemetry, metric: &str) -> Self {
        StatCounter {
            local: Counter::new(),
            global: tel.counter("client", metric),
        }
    }

    fn inc(&self) {
        self.local.inc();
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.get()
    }
}

/// The client's metric set: [`ClientStats`] is a snapshot view over these
/// counters, and the two histograms record whole-operation latency.
#[derive(Debug, Default)]
struct ClientMetrics {
    reads: StatCounter,
    writes: StatCounter,
    cache_hits: StatCounter,
    cache_rejects: StatCounter,
    nvm_reads: StatCounter,
    writeback_hits: StatCounter,
    staged_writes: StatCounter,
    direct_writes: StatCounter,
    lock_retries: StatCounter,
    read_retries: StatCounter,
    reports: StatCounter,
    retries: StatCounter,
    reconnects: StatCounter,
    failovers: StatCounter,
    degraded_ops: StatCounter,
    read_ns: HistogramHandle,
    write_ns: HistogramHandle,
}

impl ClientMetrics {
    fn new(config: TelemetryConfig) -> Self {
        let tel = config.handle();
        ClientMetrics {
            reads: StatCounter::new(&tel, "reads"),
            writes: StatCounter::new(&tel, "writes"),
            cache_hits: StatCounter::new(&tel, "cache_hits"),
            cache_rejects: StatCounter::new(&tel, "cache_rejects"),
            nvm_reads: StatCounter::new(&tel, "nvm_reads"),
            writeback_hits: StatCounter::new(&tel, "writeback_hits"),
            staged_writes: StatCounter::new(&tel, "staged_writes"),
            direct_writes: StatCounter::new(&tel, "direct_writes"),
            lock_retries: StatCounter::new(&tel, "lock_retries"),
            read_retries: StatCounter::new(&tel, "read_retries"),
            reports: StatCounter::new(&tel, "reports"),
            retries: StatCounter::new(&tel, "retries"),
            reconnects: StatCounter::new(&tel, "reconnects"),
            failovers: StatCounter::new(&tel, "failovers"),
            degraded_ops: StatCounter::new(&tel, "degraded_ops"),
            read_ns: tel.histogram("client", "read_ns"),
            write_ns: tel.histogram("client", "write_ns"),
        }
    }

    fn snapshot(&self) -> ClientStats {
        ClientStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            cache_hits: self.cache_hits.get(),
            cache_rejects: self.cache_rejects.get(),
            nvm_reads: self.nvm_reads.get(),
            writeback_hits: self.writeback_hits.get(),
            staged_writes: self.staged_writes.get(),
            direct_writes: self.direct_writes.get(),
            lock_retries: self.lock_retries.get(),
            read_retries: self.read_retries.get(),
            reports: self.reports.get(),
            retries: self.retries.get(),
            reconnects: self.reconnects.get(),
            failovers: self.failovers.get(),
            degraded_ops: self.degraded_ops.get(),
        }
    }
}

#[derive(Debug)]
struct WriteBack {
    seq: u64,
    off: u64,
    data: Vec<u8>,
}

/// One window-eligible staged write in the current batch attempt: its
/// record will be gathered into the scratch lane at `lane` and posted
/// under one doorbell with the rest of the chunk.
#[derive(Debug)]
struct StagedPlan {
    /// Index of the op in the batch.
    idx: usize,
    /// Raw global address of `ptr.addr + offset`.
    target_raw: u64,
    /// Raw object base address (store-buffer key).
    base_raw: u64,
    /// Write offset within the object.
    off: u64,
    /// Scratch offset of this record's gather lane.
    lane: u64,
}

/// One window-eligible read in the current batch attempt, landing in the
/// scratch lane at `lane`: either a validated cache-frame fetch
/// (`cached`) or a plain NVM fetch.
#[derive(Debug)]
struct ReadPlan {
    /// Index of the op in the batch.
    idx: usize,
    ptr: GlobalPtr,
    offset: u64,
    /// Scratch offset this read lands at.
    lane: u64,
    /// Cache slot to fetch (whole frame, FaRM-validated after the fact);
    /// `None` reads straight from NVM.
    cached: Option<GlobalAddr>,
}

/// Where one per-server group of a batch currently stands in the
/// completion-driven issue engine. Every group walks writes then reads;
/// the wait states hold a posted flight whose completions the event loop
/// harvests as they arrive, so groups on different servers overlap their
/// round trips instead of running back to back.
#[derive(Debug)]
enum GroupPhase {
    /// Planning/issuing writes from `indices[cursor]` onward.
    Writes { cursor: usize },
    /// A staged-write window is planned but the ring lacks room; poll the
    /// drained watermark until it frees up (or stalls past the deadline).
    RingWait {
        resume: usize,
        plans: Vec<StagedPlan>,
        next_poll: Instant,
        sleep_us: u64,
        last_seen: u64,
        stall_deadline: Instant,
    },
    /// A staged-write doorbell flight is on the wire.
    StagedWait {
        resume: usize,
        plans: Vec<StagedPlan>,
        flight: StagedFlight,
    },
    /// Planning/issuing reads from `indices[cursor]` onward.
    Reads { cursor: usize },
    /// A read doorbell flight is on the wire.
    ReadWait {
        resume: usize,
        plans: Vec<ReadPlan>,
        pending: PendingOps,
    },
    /// The last attempt failed transiently; the group parks until the
    /// jittered backoff expires (reconnecting first if the connection
    /// died) while the event loop keeps driving the healthy groups.
    Backoff { resume_at: Instant, reconnect: bool },
    /// The tenant's QoS budget denied the next issue; the group parks
    /// until the bucket refills (no retry budget charged — nothing
    /// failed), then re-enters the phase in `next`. Healthy tenants keep
    /// flowing while a throttled one queues here.
    Throttle {
        resume_at: Instant,
        next: Box<GroupPhase>,
    },
    /// A planned staged-write window waiting to re-enter
    /// [`GengarClient::post_staged`]: the throttle park carries the plan
    /// across the wait so the gate is re-charged on wake.
    PostWrites {
        resume: usize,
        plans: Vec<StagedPlan>,
    },
    /// A planned read window waiting to re-enter
    /// [`GengarClient::post_reads`] after a throttle park.
    PostReads { resume: usize, plans: Vec<ReadPlan> },
    /// Every op resolved (or the recovery budget died trying).
    Done,
}

/// One per-server group's state in the concurrent batch engine: its op
/// indices, its private recovery budget, and its position in the
/// write/read issue walk. The trace spans keep the group's work filed
/// under its own `client.group` branch even though the event loop
/// interleaves steps of many groups on one thread.
struct GroupRun {
    server: u8,
    indices: Vec<usize>,
    state: RetryState,
    /// Unresolved ops when the current attempt started (progress check).
    pending_at_start: usize,
    /// Last unresolved write per object this attempt; only it may ride a
    /// staged window (earlier ones must land first, in order).
    last_write: HashMap<u64, usize>,
    phase: GroupPhase,
    /// Staged-occupancy bytes this group currently holds reserved against
    /// the tenant's in-flight cap (released when the flight settles or
    /// the attempt ends, whichever comes first).
    staged_reserved: u64,
    group_span: TraceSpan,
    group_ctx: (TraceId, SpanId),
    attempt_span: TraceSpan,
    attempt_ctx: (TraceId, SpanId),
}

#[derive(Debug)]
struct ServerConn {
    mount: MountInfo,
    rpc: RpcClient,
    data: gengar_rdma::Endpoint,
    staging: Option<StagingWriter>,
    /// The RPC message buffer MR, kept so a reconnect can rebuild the
    /// [`RpcClient`] over the same scratch slots.
    rpc_mr: Arc<MemoryRegion>,
    /// Scratch offset reserved for this connection's staging writer (slot
    /// gather area + watermark landing pad). `None` when the server mounts
    /// without the proxy. Reused verbatim on reconnect: the ring geometry
    /// is a server-config constant.
    staging_scratch_off: Option<u64>,
    /// Consecutive staged-write failures. Reset by any staged success or a
    /// successful reconnect.
    staging_faults: u32,
    /// Degraded mode: staging has faulted `staging_fault_threshold` times
    /// in a row, so writes bypass the proxy and go straight to NVM until
    /// the next successful reconnect.
    degraded: bool,
    /// When the staging writer's mirror lane was shed (mirror WR failure).
    /// Drives the cooldown before a background re-mirror attempt; `None`
    /// while the lane is healthy (or the server mounts unreplicated).
    mirror_down_since: Option<Instant>,
    /// The client id of the *redirected* control/data tenure on the
    /// replica, once this ward failed over. Tracked so each later re-dial
    /// of the (idempotent) failover path hands the previous tenure's id
    /// back instead of leaking a `max_clients` slot per hiccup. `None`
    /// while the connection still points at the original server.
    redirect_cid: Option<u32>,
    /// Outstanding-op window for vectored operations on this connection.
    /// Stateless across submissions, so it survives reconnects unchanged.
    window: OpWindow,
    /// This connection's slice of the shared op area: gather/landing lanes
    /// used by chunked verbs and the batch planner. Private per connection
    /// so concurrent per-server flights never share scratch bytes.
    op_buf: u64,
    op_buf_len: u64,
}

impl ServerConn {
    fn nvm_rkey(&self) -> RKey {
        RKey(self.mount.nvm_rkey)
    }

    fn cache_rkey(&self) -> RKey {
        RKey(self.mount.cache_rkey)
    }
}

/// The product of one mount handshake: everything a [`ServerConn`] swaps
/// out when it (re)connects.
struct Handshake {
    /// Server-assigned client id for this tenure. Kept so the id can be
    /// handed back ([`MemoryServer::release_client`]) if the connection is
    /// abandoned before any write is staged under it.
    cid: u32,
    mount: MountInfo,
    rpc: RpcClient,
    data: gengar_rdma::Endpoint,
    staging: Option<StagingWriter>,
}

/// A single-threaded handle onto the Gengar pool.
#[derive(Debug)]
pub struct GengarClient {
    node: Arc<RdmaNode>,
    #[allow(dead_code)]
    pd: ProtectionDomain,
    mr: Arc<MemoryRegion>,
    conns: Vec<ServerConn>,
    /// Server handles in connection order, kept for reconnects.
    servers: Vec<Arc<MemoryServer>>,
    server_index: HashMap<u8, usize>,
    /// NVM payload-base raw address -> cache-slot raw address.
    remap: HashMap<u64, u64>,
    /// Local store buffer for in-flight proxied writes (read-your-writes).
    write_back: HashMap<u64, WriteBack>,
    /// Locks this client currently holds: base raw -> locked word.
    held: HashMap<u64, u64>,
    /// Failed-over wards: dead primary id -> the replica now serving its
    /// objects (through the shadow region at unchanged offsets). The
    /// connection slot for the primary is rewired in place, so this map
    /// only gates the paths that must not treat the slot as the original
    /// machine (hotness reports, reconnects, re-mirroring).
    redirects: HashMap<u8, u8>,
    /// Pending hotness entries per server id.
    pending: HashMap<u8, HashMap<u64, (u32, bool)>>,
    ops_since_report: u32,
    /// Shared scratch control words: CAS result word, header word. The
    /// bulk op lanes live per connection ([`ServerConn::op_buf`]). The
    /// shared words are safe under the concurrent engine because every
    /// scalar op that touches them runs to completion within one step.
    op_cas: u64,
    op_hdr: u64,
    /// Counter that amortises drained-watermark refreshes on the
    /// store-buffer read path.
    wb_checks: u32,
    /// Fault-recovery pacing derived from the configuration.
    policy: RetryPolicy,
    /// Per-operation jitter salt (monotonic; deterministic per client).
    op_salt: u64,
    /// The tenant's shared QoS state when the pool runs with a QoS plane:
    /// the issue gate charges it before every doorbell and staged windows
    /// reserve occupancy against it. `None` = QoS off, zero overhead.
    tenant: Option<Arc<TenantState>>,
    config: ClientConfig,
    metrics: ClientMetrics,
}

impl GengarClient {
    /// Connects a fresh client node to every given server.
    ///
    /// # Errors
    ///
    /// Propagates accept/mount failures.
    pub fn connect(
        fabric: &Arc<Fabric>,
        servers: &[Arc<MemoryServer>],
        config: ClientConfig,
    ) -> Result<GengarClient, GengarError> {
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        // The scratch buffer is client-local DRAM accessed by the CPU; its
        // cost is already paid by the real copies the emulation performs,
        // so the device model charges nothing (remote devices and the
        // fabric still charge on every verb that touches it).
        let scratch_dev = Arc::new(MemDevice::new(
            0,
            DeviceProfile::instant(gengar_hybridmem::MemKind::Dram),
            config.scratch_capacity,
        )?);
        let mr = pd.reg_mr(MemRegion::whole(Arc::clone(&scratch_dev)), Access::all())?;

        let policy = RetryPolicy::from_config(&config);
        let mut bump: u64 = 0;
        let mut conns = Vec::new();
        let mut server_index = HashMap::new();
        for server in servers {
            // Dedicated RPC buffer (its own MR: the RPC slots are
            // MR-relative).
            let rpc_mr = pd.reg_mr(
                MemRegion::new(Arc::clone(&scratch_dev), bump, RPC_BUF_BYTES)?,
                Access::LOCAL_WRITE,
            )?;
            bump += RPC_BUF_BYTES;
            let mut staging_scratch_off = None;
            // The initial dial runs under the same recovery policy as the
            // data operations: a fault-riddled link or a restarting server
            // is retried until the deadline, not surfaced on first loss.
            // The scratch reservation sticks across attempts (the closure
            // is idempotent), so retries don't leak bump space.
            let mut state = policy.start(u64::from(node.id().0) << 32 | conns.len() as u64);
            let hs = loop {
                let result = Self::handshake(
                    server,
                    &node,
                    &pd,
                    &mr,
                    Arc::clone(&rpc_mr),
                    &mut |need| match staging_scratch_off {
                        Some(off) => off,
                        None => {
                            let off = bump;
                            bump += need;
                            staging_scratch_off = Some(off);
                            off
                        }
                    },
                    &config,
                    &policy,
                );
                match result {
                    Ok(hs) => break hs,
                    Err(e) if classify(&e) == Disposition::Fatal => return Err(e),
                    Err(e) => state.charge(&policy, e)?,
                }
            };
            server_index.insert(hs.mount.server_id, conns.len());
            conns.push(ServerConn {
                mount: hs.mount,
                rpc: hs.rpc,
                data: hs.data,
                staging: hs.staging,
                rpc_mr,
                staging_scratch_off,
                staging_faults: 0,
                degraded: false,
                mirror_down_since: None,
                redirect_cid: None,
                window: OpWindow::new(config.window_depth, config.telemetry),
                op_buf: 0,
                op_buf_len: 0,
            });
        }

        // Remaining scratch: two shared control words, then the op area
        // split evenly across the connections so concurrent per-server
        // flights gather and land in disjoint lanes.
        let op_cas = bump;
        let op_hdr = bump + 8;
        let op_area = bump + 64;
        let per_conn = config
            .scratch_capacity
            .checked_sub(op_area)
            .map(|area| area / conns.len().max(1) as u64)
            .filter(|&len| len >= (64 << 10) + SLOT_HEADER)
            .ok_or(GengarError::ProtocolViolation(
                "scratch buffer too small for the op area",
            ))?;
        for (i, conn) in conns.iter_mut().enumerate() {
            conn.op_buf = op_area + i as u64 * per_conn;
            conn.op_buf_len = per_conn;
        }

        // Resolve the tenant's QoS handle in-process (the servers share
        // one plane under `Cluster::launch`). The compact tag rides every
        // staged record header so the server drain can account durable
        // bytes to the tenant after the client-visible ack.
        let tenant = servers
            .first()
            .and_then(|s| s.qos_plane())
            .map(|plane| plane.handle(&config.tenant));
        if let Some(state) = &tenant {
            for conn in &mut conns {
                if let Some(st) = conn.staging.as_mut() {
                    st.set_tenant_tag(state.tag());
                }
            }
        }

        let mut client = GengarClient {
            op_salt: u64::from(node.id().0) << 32,
            node,
            pd,
            mr,
            conns,
            servers: servers.to_vec(),
            server_index,
            redirects: HashMap::new(),
            remap: HashMap::new(),
            write_back: HashMap::new(),
            held: HashMap::new(),
            pending: HashMap::new(),
            ops_since_report: 0,
            op_cas,
            op_hdr,
            wb_checks: 0,
            policy,
            tenant,
            metrics: ClientMetrics::new(config.telemetry),
            config,
        };

        // Replication fan-out: a server whose mount names a backup gets a
        // mirror lane — a second staging ring on the backup that every
        // staged record is shipped to before the client-visible ack.
        for id in client.server_ids() {
            client.establish_mirror(id)?;
        }
        Ok(client)
    }

    /// Dials a mirror lane for `primary`'s staging writer on its assigned
    /// backup and attaches it. A no-op when the primary mounts without
    /// the proxy, advertises no backup, or the backup is a server this
    /// client never mounted (fan-out needs its rkeys).
    fn establish_mirror(&mut self, primary: u8) -> Result<(), GengarError> {
        let idx = *self
            .server_index
            .get(&primary)
            .ok_or(GengarError::UnknownServer(primary))?;
        if self.conns[idx].staging.is_none() {
            return Ok(());
        }
        let backup = self.conns[idx].mount.backup;
        if backup == NO_BACKUP || backup == primary {
            return Ok(());
        }
        let Some(&bidx) = self.server_index.get(&backup) else {
            return Ok(());
        };
        let srv = Arc::clone(&self.servers[bidx]);
        let mut channel = srv.accept_mirror(&self.node, &self.pd, primary)?;
        channel.proxy.set_op_timeout(self.policy.attempt_timeout());
        let lane = MirrorLane {
            ep: channel.proxy,
            staging_rkey: RKey(self.conns[bidx].mount.staging_rkey),
            ctl_rkey: RKey(self.conns[bidx].mount.ctl_rkey),
            ring_offset: channel.ring_offset,
            client_id: channel.cid,
            epoch: channel.epoch,
            floor: 0,
        };
        let conn = &mut self.conns[idx];
        conn.staging
            .as_mut()
            .expect("checked above")
            .set_mirror(lane);
        conn.mirror_down_since = None;
        Ok(())
    }

    /// Runs the accept + Mount (+ OpenStaging) handshake against `server`.
    ///
    /// `alloc_scratch` reserves scratch bytes for the staging writer when
    /// the server mounts with the proxy enabled: `connect` passes a bump
    /// allocator, `reconnect` returns the connection's existing
    /// reservation (the ring geometry is a server-config constant, so the
    /// size never changes across reconnects).
    #[allow(clippy::too_many_arguments)]
    fn handshake(
        server: &Arc<MemoryServer>,
        node: &Arc<RdmaNode>,
        pd: &ProtectionDomain,
        scratch_mr: &Arc<MemoryRegion>,
        rpc_mr: Arc<MemoryRegion>,
        alloc_scratch: &mut dyn FnMut(u64) -> u64,
        config: &ClientConfig,
        policy: &RetryPolicy,
    ) -> Result<Handshake, GengarError> {
        let channel = server.accept(node, pd)?;
        let cid = channel.cid;
        // A handshake that dies after accept (e.g. its Mount RPC is lost to
        // a fault) never staged anything under this id, so hand it straight
        // back — otherwise every failed re-dial through a partition would
        // burn a slot of `max_clients` forever.
        Self::finish_handshake(channel, scratch_mr, rpc_mr, alloc_scratch, config, policy)
            .inspect_err(|_| server.release_client(cid))
    }

    /// The post-accept half of [`GengarClient::handshake`]: Mount, optional
    /// OpenStaging, endpoint timeout setup.
    fn finish_handshake(
        mut channel: crate::server::ClientChannel,
        scratch_mr: &Arc<MemoryRegion>,
        rpc_mr: Arc<MemoryRegion>,
        alloc_scratch: &mut dyn FnMut(u64) -> u64,
        config: &ClientConfig,
        policy: &RetryPolicy,
    ) -> Result<Handshake, GengarError> {
        let cid = channel.cid;
        // Verbs must give up well inside the operation deadline so the
        // retry loop gets several attempts (and a reconnect) per budget.
        let attempt = policy.attempt_timeout();
        channel.rpc.set_op_timeout(attempt);
        channel.data.set_op_timeout(attempt);
        channel.proxy.set_op_timeout(attempt);
        let rpc = RpcClient::with_deadline(channel.rpc, rpc_mr, config.op_deadline);

        let mount = match rpc.call(&Request::Mount {
            tenant: config.tenant.clone(),
        })? {
            Response::Mount(m) => m,
            Response::Err { code } => return Err(error_for_code(code, 0)),
            _ => return Err(GengarError::ProtocolViolation("bad mount response")),
        };
        let staging = if mount.enable_proxy {
            let (client_id, ring_offset) = match rpc.call(&Request::OpenStaging)? {
                Response::Staging {
                    client_id,
                    ring_offset,
                } => (client_id, ring_offset),
                Response::Err { code } => return Err(error_for_code(code, 0)),
                _ => return Err(GengarError::ProtocolViolation("bad staging response")),
            };
            let layout = mount.ring_layout();
            // Slot gather area plus two watermark landing pads (primary
            // and mirror drained words).
            let scratch_off = alloc_scratch(layout.slot_bytes() + 16);
            let mut st = StagingWriter::new(
                channel.proxy,
                RKey(mount.staging_rkey),
                RKey(mount.ctl_rkey),
                ring_offset,
                layout,
                client_id,
                Arc::clone(scratch_mr),
                scratch_off,
                config.telemetry,
            );
            st.set_drain_deadline(attempt);
            Some(st)
        } else {
            None
        };
        Ok(Handshake {
            cid,
            mount,
            rpc,
            data: channel.data,
            staging,
        })
    }

    /// This client's fabric node.
    pub fn node(&self) -> &Arc<RdmaNode> {
        &self.node
    }

    /// Operation counters (snapshot view over the client's telemetry
    /// counters).
    pub fn stats(&self) -> ClientStats {
        self.metrics.snapshot()
    }

    /// Server ids this client is connected to, in connection order.
    pub fn server_ids(&self) -> Vec<u8> {
        self.conns.iter().map(|c| c.mount.server_id).collect()
    }

    /// Whether writes to `server` currently bypass the staging ring
    /// because it faulted repeatedly (cleared by the next reconnect).
    ///
    /// # Errors
    ///
    /// [`GengarError::UnknownServer`] for a server this client never
    /// mounted.
    pub fn is_degraded(&self, server: u8) -> Result<bool, GengarError> {
        Ok(self.conn(server)?.degraded)
    }

    /// Fetches `server`'s live health document (the `Inspect` admin RPC):
    /// a versioned JSON snapshot of component health, SLO burn and recent
    /// windowed metrics. Always answered — a server without the health
    /// layer returns a minimal document with `"overall":"unknown"`.
    ///
    /// # Errors
    ///
    /// [`GengarError::UnknownServer`] for a server this client never
    /// mounted; transport failures as [`GengarError::Rdma`].
    pub fn inspect(&mut self, server: u8) -> Result<String, GengarError> {
        let conn = self.conn_mut(server)?;
        match conn.rpc.call(&Request::Inspect)? {
            Response::Inspect { json } => Ok(json),
            Response::Err { code } => Err(error_for_code(code, 0)),
            _ => Err(GengarError::ProtocolViolation("bad inspect response")),
        }
    }

    fn conn(&self, server: u8) -> Result<&ServerConn, GengarError> {
        let idx = *self
            .server_index
            .get(&server)
            .ok_or(GengarError::UnknownServer(server))?;
        Ok(&self.conns[idx])
    }

    fn conn_mut(&mut self, server: u8) -> Result<&mut ServerConn, GengarError> {
        let idx = *self
            .server_index
            .get(&server)
            .ok_or(GengarError::UnknownServer(server))?;
        Ok(&mut self.conns[idx])
    }

    /// Starts the recovery state for one operation.
    fn retry_state(&mut self) -> RetryState {
        self.op_salt = self.op_salt.wrapping_add(1);
        self.policy.start(self.op_salt)
    }

    /// Handles one failed attempt of an operation against `server`:
    /// transient losses back off and return for another attempt, dead
    /// connections additionally re-run the mount handshake, permanent
    /// errors (and exhausted budgets) propagate.
    fn recover(
        &mut self,
        server: u8,
        err: GengarError,
        state: &mut RetryState,
    ) -> Result<(), GengarError> {
        let policy = self.policy;
        match classify(&err) {
            Disposition::Fatal => {
                // Escalation past retry dumps the flight recorder (one-shot,
                // no-op unless armed) so the spans leading here survive.
                gengar_telemetry::FlightRecorder::global().trigger("client-fatal");
                Err(err)
            }
            Disposition::Retry => {
                self.metrics.retries.inc();
                state.charge(&policy, err)
            }
            Disposition::Reconnect => {
                gengar_telemetry::FlightRecorder::global().trigger("client-reconnect");
                self.metrics.retries.inc();
                if let Err(last) = state.charge(&policy, err) {
                    // Reconnect budget exhausted: the server is as good as
                    // gone. One failover to its replica is the last resort
                    // before the error surfaces to the application.
                    return if state.escalate() && self.failover(server).is_ok() {
                        Ok(())
                    } else {
                        Err(last)
                    };
                }
                // A failed re-dial (server still down) is not fatal: the
                // next attempt fails fast and lands back here until the
                // operation deadline expires.
                if self.reconnect(server).is_ok() {
                    self.metrics.reconnects.inc();
                }
                Ok(())
            }
            Disposition::Failover => {
                // The fabric says the machine itself is gone; reconnecting
                // is hopeless, so skip straight to the replica (once).
                gengar_telemetry::FlightRecorder::global().trigger("client-failover");
                self.metrics.retries.inc();
                if state.escalate() && self.failover(server).is_ok() {
                    Ok(())
                } else {
                    Err(err)
                }
            }
        }
    }

    /// Re-establishes the connection to `server` after its queue pairs
    /// died: re-runs the mount handshake (fresh QPs, fresh rkeys, fresh
    /// staging ring), invalidates every stale local view of that server,
    /// and replays staged writes the old ring had not yet drained.
    fn reconnect(&mut self, server: u8) -> Result<(), GengarError> {
        if self.redirects.contains_key(&server) {
            // The ward lives on its replica now; "reconnect" means
            // re-dialing the replica's control/data plane.
            return self.failover(server);
        }
        let idx = *self
            .server_index
            .get(&server)
            .ok_or(GengarError::UnknownServer(server))?;
        let srv = Arc::clone(&self.servers[idx]);
        let rpc_mr = Arc::clone(&self.conns[idx].rpc_mr);
        let scratch_off = self.conns[idx].staging_scratch_off;
        let old_cid = self.conns[idx].staging.as_ref().map(|st| st.client_id());
        let old_mirror = self.conns[idx]
            .staging
            .as_ref()
            .and_then(|st| st.mirror_client_id())
            .map(|cid| (self.conns[idx].mount.backup, cid));
        let policy = self.policy;
        let hs = Self::handshake(
            &srv,
            &self.node,
            &self.pd,
            &self.mr,
            rpc_mr,
            // Ring geometry is a server-config constant, so the original
            // scratch reservation fits the new ring exactly.
            &mut |_need| scratch_off.expect("proxy mount implies a scratch reservation"),
            &self.config,
            &policy,
        )?;

        // Ask the new connection how far the old ring durably drained, so
        // only genuinely un-drained staged writes are replayed. Nothing has
        // been staged under the new id yet, so if the query dies the fresh
        // id goes back on the server's free list with the handshake's work
        // abandoned.
        let durable = match old_cid {
            Some(cid) => {
                let answer = hs
                    .rpc
                    .call(&Request::QueryDurable { client_id: cid })
                    .and_then(|resp| match resp {
                        Response::Durable { seq } => Ok(seq),
                        Response::Err { .. } => Ok(0),
                        _ => Err(GengarError::ProtocolViolation("bad durable response")),
                    });
                match answer {
                    Ok(seq) => seq,
                    Err(e) => {
                        srv.release_client(hs.cid);
                        return Err(e);
                    }
                }
            }
            None => 0,
        };

        // Stale views of this server die with the old connection: cached
        // remap entries point at cache frames the restarted server may
        // have re-assigned, and store-buffer entries the old ring made
        // durable are retired.
        self.remap
            .retain(|addr, _| GlobalAddr::from_raw(*addr).map(|a| a.server()) != Some(server));
        self.write_back.retain(|addr, wb| {
            GlobalAddr::from_raw(*addr).map(|a| a.server()) != Some(server) || wb.seq > durable
        });

        let conn = &mut self.conns[idx];
        conn.mount = hs.mount;
        conn.rpc = hs.rpc;
        conn.data = hs.data;
        conn.staging = hs.staging;
        // The fresh ring starts untagged; restamp the tenant tag so
        // post-reconnect staged records keep their drain accounting.
        if let (Some(state), Some(st)) = (self.tenant.as_ref(), conn.staging.as_mut()) {
            st.set_tenant_tag(state.tag());
        }
        conn.staging_faults = 0;
        conn.degraded = false;

        // The old tenure's mirror lane is orphaned: hand its ring id back
        // to the backup and dial a fresh lane, so the replayed records
        // below (and everything after) are mirrored again.
        if let Some((backup, mcid)) = old_mirror {
            if let Some(&bidx) = self.server_index.get(&backup) {
                self.servers[bidx].release_client(mcid);
            }
        }
        let _ = self.establish_mirror(server);

        // Replay the surviving staged writes through the new ring in their
        // original order. Records carry whole values, so at-least-once
        // replay converges to the acknowledged state (exactly-once
        // effect); the store buffer keeps serving read-your-writes until
        // the new ring drains them.
        let mut survivors: Vec<(u64, u64)> = self
            .write_back
            .iter()
            .filter(|(addr, _)| GlobalAddr::from_raw(**addr).map(|a| a.server()) == Some(server))
            .map(|(addr, wb)| (wb.seq, *addr))
            .collect();
        survivors.sort_unstable();
        for (_, base) in survivors {
            let wb = &self.write_back[&base];
            let target = GlobalAddr::from_raw(base)
                .ok_or(GengarError::ProtocolViolation("bad store-buffer address"))?
                .add(wb.off);
            let data = wb.data.clone();
            let conn = &mut self.conns[idx];
            if let Some(staging) = conn.staging.as_mut() {
                let new_seq = staging.stage_write(target.raw(), &data)?;
                self.write_back.get_mut(&base).expect("present").seq = new_seq;
            } else {
                // The server no longer mounts the proxy: anchor the write
                // durably through the direct path instead.
                let nvm_rkey = conn.nvm_rkey();
                self.write_remote(server, nvm_rkey, target.offset(), &data)?;
                match self.conns[idx].rpc.call(&Request::FlushRange {
                    addr: target.raw(),
                    len: data.len() as u64,
                })? {
                    Response::Ok => {}
                    Response::Err { code } => return Err(error_for_code(code, data.len() as u64)),
                    _ => return Err(GengarError::ProtocolViolation("bad flush response")),
                }
                self.write_back.remove(&base);
            }
        }
        Ok(())
    }

    /// Re-mounts a dead server's objects on its replica: asks the backup
    /// to promote (replay the mirror ring into its shadow image), dials a
    /// fresh control/data plane to the backup, and rewires the dead
    /// server's connection slot so reads, direct writes and atomics
    /// address the promoted shadow region at unchanged offsets. Staged
    /// writes keep flowing through the mirror lane, which becomes the
    /// only lane — the in-flight batch resumes without losing a settled
    /// write. Idempotent: a later call re-dials the replica (used when
    /// the promoted connection itself hiccups).
    fn failover(&mut self, server: u8) -> Result<(), GengarError> {
        let idx = *self
            .server_index
            .get(&server)
            .ok_or(GengarError::UnknownServer(server))?;
        let first = !self.redirects.contains_key(&server);
        let backup = match self.redirects.get(&server) {
            Some(&b) => b,
            None => {
                let b = self.conns[idx].mount.backup;
                if b == NO_BACKUP || b == server {
                    return Err(GengarError::ServerUnavailable(server));
                }
                b
            }
        };
        let bidx = *self
            .server_index
            .get(&backup)
            .ok_or(GengarError::UnknownServer(backup))?;
        if first {
            // The promotion RPC rides the healthy connection to the
            // backup: replay the mirror ring into the shadow image and
            // start serving the ward's addresses from it.
            match self.conns[bidx]
                .rpc
                .call(&Request::Promote { primary: server })?
            {
                Response::Promoted { .. } => {}
                Response::Err { code } => return Err(error_for_code(code, 0)),
                _ => return Err(GengarError::ProtocolViolation("bad promote response")),
            }
        }
        // Fresh control/data plane to the replica for this ward's traffic
        // (the old endpoints died with the primary's machine).
        let srv = Arc::clone(&self.servers[bidx]);
        let mut channel = srv.accept(&self.node, &self.pd)?;
        let cid = channel.cid;
        let attempt = self.policy.attempt_timeout();
        channel.rpc.set_op_timeout(attempt);
        channel.data.set_op_timeout(attempt);
        let rpc = RpcClient::with_deadline(
            channel.rpc,
            Arc::clone(&self.conns[idx].rpc_mr),
            self.config.op_deadline,
        );
        let mount = match rpc.call(&Request::Mount {
            tenant: self.config.tenant.clone(),
        }) {
            Ok(Response::Mount(m)) => m,
            Ok(Response::Err { code }) => {
                srv.release_client(channel.cid);
                return Err(error_for_code(code, 0));
            }
            Ok(_) => {
                srv.release_client(channel.cid);
                return Err(GengarError::ProtocolViolation("bad mount response"));
            }
            Err(e) => {
                srv.release_client(channel.cid);
                return Err(e);
            }
        };
        // The previous redirected tenure's control/data id (if any) is
        // dead weight on the replica — nothing is ever staged under it, so
        // it is safe to hand back — and repeated hiccups of a promoted
        // ward must not bleed the replica's `max_clients` slots.
        if let Some(old) = self.conns[idx].redirect_cid.take() {
            srv.release_client(old);
        }
        self.conns[idx].redirect_cid = Some(cid);
        let conn = &mut self.conns[idx];
        // The ward's addresses resolve through the replica's shadow
        // region from here on: same offsets, different rkey. The slot
        // keeps the ward's id so routing by address stays untouched, and
        // advertises no backup of its own (promoted data is re-mirrored
        // by the servers' rebalance plane, not by this client).
        conn.mount = MountInfo {
            server_id: server,
            nvm_rkey: mount.shadow_rkey,
            backup: NO_BACKUP,
            ..mount
        };
        conn.rpc = rpc;
        conn.data = channel.data;
        conn.staging_faults = 0;
        conn.degraded = false;
        match conn.staging.as_mut() {
            Some(st) if st.has_mirror() => st.fail_over_to_mirror()?,
            // No mirror lane survived (or the proxy was off): staged
            // writes cannot continue; the direct path takes over.
            _ => conn.staging = None,
        }
        // Stale views of the dead primary die with it. The store buffer
        // stays: the mirror ring carries its un-drained records, and the
        // watermark it serves retires them as the replica drains.
        self.remap
            .retain(|addr, _| GlobalAddr::from_raw(*addr).map(|a| a.server()) != Some(server));
        self.pending.remove(&server);
        if first {
            self.redirects.insert(server, backup);
            self.metrics.failovers.inc();
            gengar_telemetry::Tracer::global().event("client.failover", u64::from(server));
            gengar_telemetry::FlightRecorder::global().trigger("client-failover");
        }
        Ok(())
    }

    /// Background re-mirror: a mirror WR failure sheds the lane so the
    /// primary's ring never stalls (availability over redundancy), and
    /// this re-dials the ward's *current* backup — re-queried from the
    /// primary, so a rebalanced assignment is picked up — after a short
    /// cooldown. Called from the staged-write paths after each settle.
    ///
    /// Never surfaces an error: the write it rides behind has already
    /// settled on its own lanes, so a failed housekeeping probe must not
    /// turn an acknowledged-durable write into a caller-visible failure —
    /// it only restarts the cooldown.
    fn maybe_remirror(&mut self, server: u8) {
        const REMIRROR_COOLDOWN: Duration = Duration::from_millis(10);
        if self.redirects.contains_key(&server) {
            return;
        }
        let Some(&idx) = self.server_index.get(&server) else {
            return;
        };
        {
            let conn = &mut self.conns[idx];
            let Some(st) = conn.staging.as_mut() else {
                return;
            };
            if st.take_mirror_lost() && conn.mirror_down_since.is_none() {
                conn.mirror_down_since = Some(Instant::now());
            }
            match conn.mirror_down_since {
                Some(at) if at.elapsed() >= REMIRROR_COOLDOWN => {}
                _ => return,
            }
        }
        if self.try_remirror(idx, server).is_err() {
            // Failed probe or re-dial: restart the cooldown instead of
            // hammering the primary/backup on every staged write.
            self.conns[idx].mirror_down_since = Some(Instant::now());
        }
    }

    /// The fallible half of [`GengarClient::maybe_remirror`]: query the
    /// primary for its current backup and dial a fresh mirror lane.
    fn try_remirror(&mut self, idx: usize, server: u8) -> Result<(), GengarError> {
        // Ask the primary who backs it up now: the dead backup may have
        // been replaced by the rebalance plane since the lane was shed.
        let backup = match self.conns[idx].rpc.call(&Request::QueryReplica)? {
            Response::Replica { backup } => backup,
            // The primary refused (e.g. throttled): not a transport fault,
            // leave the cooldown where it is and try again next settle.
            Response::Err { .. } => return Ok(()),
            _ => return Err(GengarError::ProtocolViolation("bad replica response")),
        };
        self.conns[idx].mount.backup = backup;
        if backup == NO_BACKUP {
            // No replacement assigned yet; keep waiting on the cooldown.
            return Err(GengarError::ServerUnavailable(server));
        }
        self.establish_mirror(server)
    }

    fn check_access(ptr: GlobalPtr, offset: u64, len: u64) -> Result<(), GengarError> {
        if ptr.addr.class() != MemClass::Nvm {
            return Err(GengarError::InvalidAddress(ptr.addr));
        }
        if offset.checked_add(len).is_none_or(|end| end > ptr.size) {
            return Err(GengarError::AccessOutOfBounds {
                addr: ptr.addr,
                offset,
                len,
                size: ptr.size,
            });
        }
        Ok(())
    }

    /// Allocates `size` payload bytes on `server`.
    ///
    /// Runs under the standard recovery loop. Allocation is not
    /// idempotent: if a fault eats the *response* the allocation happened
    /// but the retry requests another, leaking the first until the server
    /// restarts. A bounded leak under faults is the documented trade for
    /// never blocking the application.
    ///
    /// # Errors
    ///
    /// [`GengarError::OutOfMemory`] / [`GengarError::ObjectTooLarge`] from
    /// the server; transport failures that outlive the operation deadline
    /// as [`GengarError::Rdma`].
    pub fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        let mut state = self.retry_state();
        loop {
            match self.alloc_attempt(server, size) {
                Ok(ptr) => return Ok(ptr),
                Err(e) => self.recover(server, e, &mut state)?,
            }
        }
    }

    fn alloc_attempt(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        let conn = self.conn(server)?;
        match conn.rpc.call(&Request::Alloc { size })? {
            Response::Alloc { addr } => {
                let addr = GlobalAddr::from_raw(addr)
                    .ok_or(GengarError::ProtocolViolation("bad alloc address"))?;
                Ok(GlobalPtr::new(addr, size))
            }
            Response::Err { code } => Err(error_for_code(code, size)),
            _ => Err(GengarError::ProtocolViolation("bad alloc response")),
        }
    }

    /// Frees a pool object.
    ///
    /// # Errors
    ///
    /// Server-side rejection (bad address, double free) or transport
    /// failures.
    pub fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        let base = ptr.addr.raw();
        self.remap.remove(&base);
        self.write_back.remove(&base);
        self.held.remove(&base);
        let conn = self.conn(ptr.addr.server())?;
        match conn.rpc.call(&Request::Free { addr: base })? {
            Response::Ok => Ok(()),
            Response::Err { code } => Err(error_for_code(code, 0)),
            _ => Err(GengarError::ProtocolViolation("bad free response")),
        }
    }

    /// One-sided chunked READ from `(rkey, remote_off)` into `out`.
    fn read_remote(
        &mut self,
        server: u8,
        rkey: RKey,
        remote_off: u64,
        out: &mut [u8],
    ) -> Result<(), GengarError> {
        let mr_lkey = self.mr.lkey();
        let region = self.mr.region().clone();
        let conn = self.conn(server)?;
        let op_buf = conn.op_buf;
        let chunk_max = conn.op_buf_len as usize;
        let mut done = 0usize;
        while done < out.len() {
            let chunk = (out.len() - done).min(chunk_max);
            conn.data.read(
                Sge::new(mr_lkey, op_buf, chunk as u64),
                RemoteAddr::new(rkey, remote_off + done as u64),
            )?;
            region.read(op_buf, &mut out[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }

    /// One-sided chunked WRITE of `data` to `(rkey, remote_off)`.
    fn write_remote(
        &mut self,
        server: u8,
        rkey: RKey,
        remote_off: u64,
        data: &[u8],
    ) -> Result<(), GengarError> {
        let mr_lkey = self.mr.lkey();
        let region = self.mr.region().clone();
        let conn = self.conn(server)?;
        let op_buf = conn.op_buf;
        let chunk_max = conn.op_buf_len as usize;
        let mut done = 0usize;
        while done < data.len() {
            let chunk = (data.len() - done).min(chunk_max);
            region.write(op_buf, &data[done..done + chunk])?;
            conn.data.write(
                Payload::Sge(Sge::new(mr_lkey, op_buf, chunk as u64)),
                RemoteAddr::new(rkey, remote_off + done as u64),
            )?;
            done += chunk;
        }
        Ok(())
    }

    /// Reads the 8-byte object lock/version word.
    fn read_lockword(&mut self, addr: GlobalAddr) -> Result<u64, GengarError> {
        let op_hdr = self.op_hdr;
        let mr_lkey = self.mr.lkey();
        let region = self.mr.region().clone();
        let conn = self.conn(addr.server())?;
        conn.data.read(
            Sge::new(mr_lkey, op_hdr, 8),
            RemoteAddr::new(conn.nvm_rkey(), addr.offset() - OBJ_HEADER),
        )?;
        let mut w = [0u8; 8];
        region.read(op_hdr, &mut w)?;
        Ok(u64::from_le_bytes(w))
    }

    /// Reads `buf.len()` bytes of the object at `ptr.addr + offset`.
    ///
    /// With caching enabled the read is served from the server's DRAM
    /// cache when a validated copy exists; stale or torn cached frames are
    /// detected (tag / seqlock version / checksum) and fall back to NVM.
    ///
    /// Transient transport faults are absorbed: lost requests are retried
    /// with backoff, dead connections are re-established (including a
    /// re-mount and staged-write replay), all inside the configured
    /// per-operation deadline.
    ///
    /// # Errors
    ///
    /// Bounds violations, transport failures that outlive the operation
    /// deadline, or [`GengarError::ReadContended`] if a seqlock read keeps
    /// losing to writers.
    pub fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError> {
        // A scalar read is a batch of one: there is exactly one issue path.
        self.run_batch(vec![BatchOp::Read { ptr, offset, buf }])?
            .into_single()
    }

    /// One attempt of [`GengarClient::read`]; every step is idempotent so
    /// the recovery loop can re-run it wholesale.
    fn read_attempt(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), GengarError> {
        let base = ptr.addr.raw();
        let server = ptr.addr.server();

        // 1. Local store buffer: serves read-your-writes while the staged
        // write may still be in flight. The drained watermark is refreshed
        // lazily (one extra 8-byte READ every 16 queries) so entries retire
        // shortly after the proxy drains them without taxing every read.
        if let Some(wb) = self.write_back.get(&base) {
            let seq = wb.seq;
            let covers =
                offset >= wb.off && offset + buf.len() as u64 <= wb.off + wb.data.len() as u64;
            self.wb_checks = self.wb_checks.wrapping_add(1);
            let refresh = self.wb_checks.is_multiple_of(16) || !covers;
            let drained = match self.conn_mut(server)?.staging.as_mut() {
                Some(st) => {
                    if st.known_drained() < seq && refresh {
                        st.refresh_drained()?;
                    }
                    st.known_drained() >= seq
                }
                None => true,
            };
            if drained {
                self.write_back.remove(&base);
            } else if covers {
                let wb = self.write_back.get(&base).expect("checked above");
                let start = (offset - wb.off) as usize;
                buf.copy_from_slice(&wb.data[start..start + buf.len()]);
                self.metrics.writeback_hits.inc();
                self.record(server, base, false)?;
                return Ok(());
            } else {
                // Partial overlap with an in-flight write: wait it out.
                if let Some(st) = self.conn_mut(server)?.staging.as_mut() {
                    st.wait_drained(seq)?;
                }
                self.write_back.remove(&base);
            }
        }

        // 2. Server DRAM cache. Slot frames validate as a whole, so a
        // cached read fetches the full object; engage it only when the
        // request covers most of the object (small probes into large
        // objects — e.g. index buckets — are cheaper straight from NVM).
        let worth_caching = buf.len() as u64 * 2 >= ptr.size;
        if worth_caching {
            if let Some(&slot_raw) = self.remap.get(&base) {
                if self.try_cached_read(ptr, offset, buf, slot_raw)? {
                    self.metrics.cache_hits.inc();
                    self.record(server, base, false)?;
                    return Ok(());
                }
                self.remap.remove(&base);
                self.metrics.cache_rejects.inc();
            }
        }

        // 3. NVM home copy. A client that holds the object's writer lock
        // reads plainly: no other writer can be active, and the lock bit it
        // set itself would otherwise never clear.
        let plain = self.config.consistency == Consistency::None || self.held.contains_key(&base);
        if plain {
            let conn_rkey = self.conn(server)?.nvm_rkey();
            self.read_remote(server, conn_rkey, ptr.addr.offset() + offset, buf)?;
        } else {
            self.read_nvm_seqlock(ptr, offset, buf)?;
        }
        self.metrics.nvm_reads.inc();
        // Only cache-worthy reads feed the hotness monitor: promoting an
        // object that is probed 16 bytes at a time would waste DRAM on a
        // copy no read path would use.
        if worth_caching {
            self.record(server, base, false)?;
        }
        Ok(())
    }

    /// Attempts a validated read from the cache slot at `slot_raw`.
    fn try_cached_read(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        buf: &mut [u8],
        slot_raw: u64,
    ) -> Result<bool, GengarError> {
        let slot = match GlobalAddr::from_raw(slot_raw) {
            Some(s) if s.class() == MemClass::DramCache => s,
            _ => return Ok(false),
        };
        let total = SLOT_HEADER + ptr.size + SLOT_TAIL;
        let server = ptr.addr.server();
        // One READ of the whole frame into the connection's op area;
        // header, tail and the requested payload range are then extracted
        // directly from scratch (no intermediate whole-frame copy).
        let mr_lkey = self.mr.lkey();
        let region = self.mr.region().clone();
        let op_buf = {
            let conn = self.conn(server)?;
            if total > conn.op_buf_len {
                return Ok(false); // object larger than our frame budget
            }
            conn.data.read(
                Sge::new(mr_lkey, conn.op_buf, total),
                RemoteAddr::new(conn.cache_rkey(), slot.offset()),
            )?;
            conn.op_buf
        };
        let mut hdr_bytes = [0u8; SLOT_HEADER as usize];
        region.read(op_buf, &mut hdr_bytes)?;
        let hdr = decode_slot_header(&hdr_bytes);
        let mut tail_bytes = [0u8; 8];
        region.read(op_buf + SLOT_HEADER + ptr.size, &mut tail_bytes)?;
        let tail = u64::from_le_bytes(tail_bytes);
        // FaRM-style validation: correct tag and length, even head version,
        // tail version matching head (rejects torn/stale/mid-update frames).
        let valid = hdr.tag == ptr.addr.raw()
            && hdr.version.is_multiple_of(2)
            && hdr.len == ptr.size
            && tail == hdr.version;
        if valid {
            region.read(op_buf + SLOT_HEADER + offset, buf)?;
        }
        Ok(valid)
    }

    /// Seqlock-validated NVM read: fetch, re-fetch the version word, retry
    /// while a writer is active.
    fn read_nvm_seqlock(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), GengarError> {
        let mut backoff = Backoff::default();
        for _ in 0..self.config.read_retries {
            let before = self.read_lockword(ptr.addr)?;
            if lockword::is_locked(before) {
                self.metrics.read_retries.inc();
                backoff.wait();
                continue;
            }
            let nvm_rkey = self.conn(ptr.addr.server())?.nvm_rkey();
            self.read_remote(ptr.addr.server(), nvm_rkey, ptr.addr.offset() + offset, buf)?;
            let after = self.read_lockword(ptr.addr)?;
            if after == before {
                return Ok(());
            }
            self.metrics.read_retries.inc();
            backoff.wait();
        }
        Err(GengarError::ReadContended(ptr.addr))
    }

    /// Writes `data` at `ptr.addr + offset`.
    ///
    /// Routing: under `Consistency::Seqlock` the write locks the object
    /// (unless already held), goes straight to NVM with a flush+invalidate
    /// RPC, and unlocks. Under `Consistency::None` it takes the proxy fast
    /// path when enabled and the payload fits a staging slot.
    ///
    /// Transient transport faults are absorbed like in
    /// [`GengarClient::read`]. A connection whose staging ring keeps
    /// faulting is *degraded*: after `staging_fault_threshold` consecutive
    /// staged-write failures the client routes writes through the direct
    /// NVM path (correct, just slower) until a reconnect heals the ring.
    ///
    /// # Errors
    ///
    /// Bounds violations, lock contention, transport failures that outlive
    /// the operation deadline.
    pub fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError> {
        // A scalar write is a batch of one: there is exactly one issue path.
        self.run_batch(vec![BatchOp::Write { ptr, offset, data }])?
            .into_single()
    }

    /// One attempt of [`GengarClient::write`]. Safe to re-run: a staged
    /// write either completes (acknowledged, durable) or provably never
    /// reached the ring, and the direct path rewrites the same bytes.
    fn write_attempt(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        data: &[u8],
    ) -> Result<(), GengarError> {
        let base = ptr.addr.raw();
        let server = ptr.addr.server();

        match self.config.consistency {
            Consistency::Seqlock => {
                let auto = !self.held.contains_key(&base);
                if auto {
                    self.lock(ptr)?;
                }
                let result = self.write_direct(ptr, offset, data);
                if auto {
                    // Unlock even if the write failed, then surface the
                    // first error.
                    let unlock_result = self.unlock(ptr);
                    result.and(unlock_result)?;
                } else {
                    result?;
                }
            }
            Consistency::None => {
                let (fits_proxy, degraded) = {
                    let conn = self.conn(server)?;
                    (
                        conn.staging
                            .as_ref()
                            .is_some_and(|st| data.len() as u64 <= st.max_payload()),
                        conn.degraded,
                    )
                };
                // Staged-occupancy admission: a tenant at its in-flight
                // cap sheds this write to the direct path (slower, but it
                // does not queue more into the shared ring); a payload
                // that could never fit the cap always sheds.
                let shed = fits_proxy
                    && !degraded
                    && self.tenant.as_ref().is_some_and(|t| {
                        let need = data.len() as u64;
                        let admitted = t.staged_fits(need) && t.try_reserve_staged(need);
                        if !admitted {
                            t.note_staged_shed();
                        }
                        !admitted
                    });
                if fits_proxy && !degraded && !shed {
                    let target = ptr.addr.add(offset).raw();
                    let threshold = self.config.staging_fault_threshold;
                    let staged = {
                        let conn = self.conn_mut(server)?;
                        let staged = conn
                            .staging
                            .as_mut()
                            .expect("checked above")
                            .stage_write(target, data);
                        match staged {
                            Ok(seq) => {
                                conn.staging_faults = 0;
                                Ok(seq)
                            }
                            Err(e) => {
                                // Track consecutive ring failures; past the
                                // threshold the connection degrades to the
                                // direct path until a reconnect heals it.
                                conn.staging_faults += 1;
                                if conn.staging_faults >= threshold {
                                    conn.degraded = true;
                                }
                                Err(e)
                            }
                        }
                    };
                    // A scalar stage settles at return (acknowledged or
                    // failed): hand the occupancy reservation back.
                    if let Some(t) = &self.tenant {
                        t.release_staged(data.len() as u64);
                    }
                    let seq = staged?;
                    self.write_back.insert(
                        base,
                        WriteBack {
                            seq,
                            off: offset,
                            data: data.to_vec(),
                        },
                    );
                    self.purge_write_back(server)?;
                    self.metrics.staged_writes.inc();
                    self.maybe_remirror(server);
                } else {
                    if degraded {
                        self.metrics.degraded_ops.inc();
                    }
                    self.write_direct(ptr, offset, data)?;
                }
            }
        }
        self.record(server, base, true)?;
        Ok(())
    }

    /// Direct write path: RDMA WRITE to NVM, then flush+invalidate RPC.
    fn write_direct(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        data: &[u8],
    ) -> Result<(), GengarError> {
        let server = ptr.addr.server();
        // An older staged record for this object may still sit un-drained
        // in the server ring (e.g. the connection degraded between the two
        // writes). Let it land first: the drain thread would otherwise
        // replay the *older* value over this newer direct write.
        if let Some(seq) = self.write_back.get(&ptr.addr.raw()).map(|wb| wb.seq) {
            if let Some(st) = self.conn_mut(server)?.staging.as_mut() {
                if st.known_drained() < seq {
                    st.wait_drained(seq)?;
                }
            }
        }
        let nvm_rkey = self.conn(server)?.nvm_rkey();
        self.write_remote(server, nvm_rkey, ptr.addr.offset() + offset, data)?;
        let conn = self.conn(server)?;
        match conn.rpc.call(&Request::FlushRange {
            addr: ptr.addr.add(offset).raw(),
            len: data.len() as u64,
        })? {
            Response::Ok => {}
            Response::Err { code } => return Err(error_for_code(code, data.len() as u64)),
            _ => return Err(GengarError::ProtocolViolation("bad flush response")),
        }
        let base = ptr.addr.raw();
        self.remap.remove(&base);
        self.write_back.remove(&base);
        self.metrics.direct_writes.inc();
        Ok(())
    }

    /// Caps the write-back buffer by retiring drained entries.
    fn purge_write_back(&mut self, server: u8) -> Result<(), GengarError> {
        if self.write_back.len() < 1024 {
            return Ok(());
        }
        let drained = match self.conn_mut(server)?.staging.as_mut() {
            Some(st) => st.refresh_drained()?,
            None => return Ok(()),
        };
        self.write_back.retain(|addr, wb| {
            GlobalAddr::from_raw(*addr).map(|a| a.server()) != Some(server) || wb.seq > drained
        });
        Ok(())
    }

    /// Starts a vectored operation batch. Queue reads and writes on the
    /// returned [`OpBatch`] and [`OpBatch::submit`] them as one pipelined
    /// unit; see the [`crate::batch`] module docs for the ordering and
    /// partial-completion contracts.
    pub fn batch(&mut self) -> OpBatch<'_, '_> {
        OpBatch::new(self)
    }

    /// Vectored read: issues every `(ptr, offset, buf)` element as one
    /// pipelined batch (up to `window_depth` outstanding READs per
    /// doorbell) and returns one result per element in order. Equivalent
    /// to an [`OpBatch`] holding only reads.
    ///
    /// # Errors
    ///
    /// Per-element failures land in the [`BatchResult`]; the outer `Err`
    /// is reserved for batch-level misuse and never fires for reads.
    pub fn read_batch(
        &mut self,
        ops: Vec<(GlobalPtr, u64, &mut [u8])>,
    ) -> Result<BatchResult, GengarError> {
        self.run_batch(
            ops.into_iter()
                .map(|(ptr, offset, buf)| BatchOp::Read { ptr, offset, buf })
                .collect(),
        )
    }

    /// Vectored write: issues every `(ptr, offset, data)` element as one
    /// pipelined batch (staged writes share doorbells up to
    /// `window_depth`) and returns one result per element in order.
    /// Equivalent to an [`OpBatch`] holding only writes.
    ///
    /// # Errors
    ///
    /// Per-element failures land in the [`BatchResult`]; the outer `Err`
    /// is reserved for batch-level misuse and never fires for writes.
    pub fn write_batch(
        &mut self,
        ops: Vec<(GlobalPtr, u64, &[u8])>,
    ) -> Result<BatchResult, GengarError> {
        self.run_batch(
            ops.into_iter()
                .map(|(ptr, offset, data)| BatchOp::Write { ptr, offset, data })
                .collect(),
        )
    }

    /// The single issue path: runs a batch of operations to completion
    /// under the per-server recovery loops. Scalar `read`/`write` pass a
    /// batch of one through here.
    pub(crate) fn run_batch(
        &mut self,
        mut ops: Vec<BatchOp<'_>>,
    ) -> Result<BatchResult, GengarError> {
        // One trace per batch, rooted at the client-visible operation. The
        // root's context is installed on this thread, so every layer below
        // (window, staging, fabric, RPC encode) files under the same trace.
        let tracer = gengar_telemetry::Tracer::global();
        let mut root = match ops.as_slice() {
            [BatchOp::Read { .. }] => tracer.root_span("client.read"),
            [BatchOp::Write { .. }] => tracer.root_span("client.write"),
            _ => tracer.root_span("client.batch"),
        };
        root.set_detail(ops.len() as u64);
        let trace = root.trace_id().unwrap_or(gengar_telemetry::TraceId::NONE);
        let started = Instant::now();
        let n = ops.len();
        let mut results: Vec<Option<Result<(), GengarError>>> = (0..n).map(|_| None).collect();
        for (i, op) in ops.iter().enumerate() {
            let (ptr, offset, len, is_read) = match op {
                BatchOp::Read { ptr, offset, buf } => (*ptr, *offset, buf.len() as u64, true),
                BatchOp::Write { ptr, offset, data } => (*ptr, *offset, data.len() as u64, false),
            };
            match Self::check_access(ptr, offset, len) {
                Ok(()) => {
                    if is_read {
                        self.metrics.reads.inc();
                    } else {
                        self.metrics.writes.inc();
                    }
                }
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        let validated: Vec<bool> = results.iter().map(|r| r.is_none()).collect();

        // Group the pending ops by server, preserving submission order
        // within each group. The index map keeps grouping linear in the
        // batch size however many servers the batch fans out across. Each
        // group runs under its own recovery budget, so one dead server
        // cannot starve the others.
        let mut groups: Vec<(u8, Vec<usize>)> = Vec::new();
        let mut group_of: HashMap<u8, usize> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            let server = match op {
                BatchOp::Read { ptr, .. } | BatchOp::Write { ptr, .. } => ptr.addr.server(),
            };
            let gi = *group_of.entry(server).or_insert_with(|| {
                groups.push((server, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(i);
        }

        // The completion-driven issue engine: every group is put in flight
        // at once and a single event loop steps whichever groups can make
        // progress, harvesting completions as they arrive out of order
        // across servers. A group that is backing off, reconnecting or
        // waiting on a stalled ring parks on its own wake instant and
        // never holds the others up.
        let root_ctx = (trace, root.span_id().unwrap_or(gengar_telemetry::SpanId(0)));
        let mut runs: Vec<GroupRun> = groups
            .into_iter()
            .map(|(server, indices)| {
                let _root = adopt(root_ctx.0, root_ctx.1);
                let group_span = tracer.span("client.group");
                let group_ctx = (
                    group_span.trace_id().unwrap_or(TraceId::NONE),
                    group_span.span_id().unwrap_or(SpanId(0)),
                );
                let mut run = GroupRun {
                    server,
                    indices,
                    state: self.retry_state(),
                    pending_at_start: 0,
                    last_write: HashMap::new(),
                    phase: GroupPhase::Done,
                    staged_reserved: 0,
                    group_span,
                    group_ctx,
                    attempt_span: TraceSpan::disabled(),
                    attempt_ctx: group_ctx,
                };
                self.start_attempt(&mut run, &ops, &results);
                run
            })
            .collect();
        loop {
            let mut progressed = false;
            let mut next_wake: Option<Instant> = None;
            let mut all_done = true;
            for run in &mut runs {
                let (stepped, wake) = self.step_group(run, &mut ops, &mut results);
                progressed |= stepped;
                if let Some(at) = wake {
                    next_wake = Some(next_wake.map_or(at, |w| w.min(at)));
                }
                all_done &= matches!(run.phase, GroupPhase::Done);
            }
            if all_done {
                break;
            }
            if !progressed {
                // Everyone is parked: sleep until the earliest wake (next
                // deferred completion, backoff expiry or ring poll).
                let wake = next_wake
                    .unwrap_or_else(|| Instant::now() + std::time::Duration::from_micros(10));
                gengar_hybridmem::latency::spin_until(wake);
            }
        }
        drop(runs);

        // Whole-batch latency recorded once per op, mirroring the scalar
        // histograms' sample counts (the span there also covered retries).
        let elapsed = started.elapsed().as_nanos() as u64;
        for (i, op) in ops.iter().enumerate() {
            if !validated[i] {
                continue;
            }
            match op {
                BatchOp::Read { .. } => self.metrics.read_ns.record_ns(elapsed),
                BatchOp::Write { .. } => self.metrics.write_ns.record_ns(elapsed),
            }
        }
        Ok(BatchResult::new(
            results
                .into_iter()
                .map(|r| r.expect("every op resolved"))
                .collect(),
            trace,
        ))
    }

    /// Routes one scalar-path outcome inside a batch attempt: successes
    /// and permanent failures resolve the op in place, transient faults
    /// abort the attempt so the recovery loop can back off / reconnect
    /// and replay only the unresolved ops.
    fn resolve_scalar(
        outcome: Result<(), GengarError>,
        slot: &mut Option<Result<(), GengarError>>,
    ) -> Result<(), GengarError> {
        match outcome {
            Ok(()) => {
                *slot = Some(Ok(()));
                Ok(())
            }
            Err(e) if classify(&e) == Disposition::Fatal => {
                *slot = Some(Err(e));
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Advances one group as far as it can without blocking: polls open
    /// flights, expires backoffs, issues the next writes/reads. Returns
    /// whether the group made progress and, if it parked, when the event
    /// loop should next wake it. Helper passes return their attempt error
    /// and only this dispatcher routes it into [`GengarClient::end_attempt`],
    /// so recovery policy lives in exactly one place.
    fn step_group(
        &mut self,
        run: &mut GroupRun,
        ops: &mut [BatchOp<'_>],
        results: &mut [Option<Result<(), GengarError>>],
    ) -> (bool, Option<Instant>) {
        let mut progressed = false;
        loop {
            let phase = std::mem::replace(&mut run.phase, GroupPhase::Done);
            match phase {
                GroupPhase::Done => return (progressed, None),
                GroupPhase::Backoff {
                    resume_at,
                    reconnect,
                } => {
                    if Instant::now() < resume_at {
                        run.phase = GroupPhase::Backoff {
                            resume_at,
                            reconnect,
                        };
                        return (progressed, Some(resume_at));
                    }
                    progressed = true;
                    let _ctx = adopt(run.group_ctx.0, run.group_ctx.1);
                    if reconnect {
                        // A failed re-dial (server still down) is not
                        // fatal: the next attempt fails fast and lands
                        // back in recovery until the budget expires.
                        if self.reconnect(run.server).is_ok() {
                            self.metrics.reconnects.inc();
                        }
                    }
                    self.start_attempt(run, ops, results);
                }
                GroupPhase::Throttle { resume_at, next } => {
                    if Instant::now() < resume_at {
                        run.phase = GroupPhase::Throttle { resume_at, next };
                        return (progressed, Some(resume_at));
                    }
                    progressed = true;
                    run.phase = *next;
                }
                GroupPhase::PostWrites { resume, plans } => {
                    progressed = true;
                    let outcome = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        self.post_staged(run, resume, plans, ops)
                    };
                    if let Err(e) = outcome {
                        self.end_attempt(run, e, results);
                    }
                }
                GroupPhase::PostReads { resume, plans } => {
                    progressed = true;
                    let outcome = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        self.post_reads(run, resume, plans, ops)
                    };
                    if let Err(e) = outcome {
                        self.end_attempt(run, e, results);
                    }
                }
                GroupPhase::Writes { cursor } => {
                    progressed = true;
                    let outcome = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        self.step_writes(run, cursor, ops, results)
                    };
                    if let Err(e) = outcome {
                        self.end_attempt(run, e, results);
                    }
                }
                GroupPhase::RingWait {
                    resume,
                    plans,
                    next_poll,
                    sleep_us,
                    last_seen,
                    stall_deadline,
                } => {
                    let now = Instant::now();
                    if now < next_poll {
                        run.phase = GroupPhase::RingWait {
                            resume,
                            plans,
                            next_poll,
                            sleep_us,
                            last_seen,
                            stall_deadline,
                        };
                        return (progressed, Some(next_poll));
                    }
                    let refreshed = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        match self.conn_mut(run.server) {
                            Ok(conn) => {
                                let st = conn.staging.as_mut().expect("planned on a staging ring");
                                st.refresh_drained().map(|d| (d, st.ring_room()))
                            }
                            Err(e) => Err(e),
                        }
                    };
                    match refreshed {
                        Err(e) => self.end_attempt(run, e, results),
                        Ok((_, room)) if room >= plans.len() => {
                            progressed = true;
                            let outcome = {
                                let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                                self.begin_staged(run, resume, plans, ops)
                            };
                            if let Err(e) = outcome {
                                self.end_attempt(run, e, results);
                            }
                        }
                        Ok((drained, _)) => {
                            // No room yet. Watermark movement resets the
                            // stall clock; a watermark frozen past the
                            // attempt timeout means the drain thread is
                            // stuck and the attempt times out like any
                            // other lost round trip.
                            if drained <= last_seen && now >= stall_deadline {
                                self.end_attempt(
                                    run,
                                    GengarError::Rdma(RdmaError::Timeout),
                                    results,
                                );
                            } else {
                                let (last_seen, stall_deadline) = if drained > last_seen {
                                    (drained, now + self.policy.attempt_timeout())
                                } else {
                                    (last_seen, stall_deadline)
                                };
                                let next_poll = now + Duration::from_micros(sleep_us);
                                run.phase = GroupPhase::RingWait {
                                    resume,
                                    plans,
                                    next_poll,
                                    sleep_us: (sleep_us * 2).min(200),
                                    last_seen,
                                    stall_deadline,
                                };
                                return (progressed, Some(next_poll));
                            }
                        }
                    }
                }
                GroupPhase::StagedWait {
                    resume,
                    plans,
                    mut flight,
                } => {
                    let done = match self.conn_mut(run.server) {
                        Ok(conn) => conn
                            .staging
                            .as_mut()
                            .expect("flight implies a staging ring")
                            .poll_flight(&mut flight),
                        Err(e) => {
                            self.end_attempt(run, e, results);
                            continue;
                        }
                    };
                    if !done {
                        // The flight settles as a unit, so park until the
                        // whole doorbell is expected done — one sleepable
                        // wait, not a busy-spin per staggered completion.
                        let wake = self.conn(run.server).ok().and_then(|conn| {
                            conn.staging
                                .as_ref()
                                .expect("flight implies a staging ring")
                                .flight_done_wake(&flight)
                        });
                        run.phase = GroupPhase::StagedWait {
                            resume,
                            plans,
                            flight,
                        };
                        return (progressed, wake);
                    }
                    progressed = true;
                    let outcome = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        self.settle_staged(run, resume, plans, flight, ops, results)
                    };
                    if let Err(e) = outcome {
                        self.end_attempt(run, e, results);
                    }
                }
                GroupPhase::Reads { cursor } => {
                    progressed = true;
                    let outcome = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        self.step_reads(run, cursor, ops, results)
                    };
                    if let Err(e) = outcome {
                        self.end_attempt(run, e, results);
                    }
                }
                GroupPhase::ReadWait {
                    resume,
                    plans,
                    mut pending,
                } => {
                    let done = match self.conn(run.server) {
                        Ok(conn) => conn.data.poll_pending(&mut pending),
                        Err(e) => {
                            self.end_attempt(run, e, results);
                            continue;
                        }
                    };
                    if !done {
                        // Read flights also settle as a unit: sleep until
                        // the whole window is expected harvestable.
                        let wake = self
                            .conn(run.server)
                            .ok()
                            .and_then(|conn| conn.data.pending_done_wake(&pending));
                        run.phase = GroupPhase::ReadWait {
                            resume,
                            plans,
                            pending,
                        };
                        return (progressed, wake);
                    }
                    progressed = true;
                    let outcome = {
                        let _ctx = adopt(run.attempt_ctx.0, run.attempt_ctx.1);
                        self.settle_reads(run, resume, plans, pending.into_results(), ops, results)
                    };
                    if let Err(e) = outcome {
                        self.end_attempt(run, e, results);
                    }
                }
            }
        }
    }

    /// Opens the next attempt for a group: recounts the unresolved ops,
    /// recomputes the per-object last-write map, and opens the attempt
    /// span. A group with nothing left to resolve closes out instead.
    fn start_attempt(
        &mut self,
        run: &mut GroupRun,
        ops: &[BatchOp<'_>],
        results: &[Option<Result<(), GengarError>>],
    ) {
        run.pending_at_start = run
            .indices
            .iter()
            .filter(|&&i| results[i].is_none())
            .count();
        if run.pending_at_start == 0 {
            run.attempt_span = TraceSpan::disabled();
            run.group_span = TraceSpan::disabled();
            run.phase = GroupPhase::Done;
            return;
        }
        // Only the last unresolved write per object may ride a staged
        // window: earlier ones must land first to keep same-object order.
        // Recomputing per attempt is safe because writes issue in
        // submission order, so a later same-object write never resolves
        // while an earlier one is still unresolved.
        run.last_write.clear();
        for &i in &run.indices {
            if results[i].is_none() {
                if let BatchOp::Write { ptr, .. } = &ops[i] {
                    run.last_write.insert(ptr.addr.raw(), i);
                }
            }
        }
        let _ctx = adopt(run.group_ctx.0, run.group_ctx.1);
        let mut span = gengar_telemetry::Tracer::global().span("client.attempt");
        span.set_detail(run.state.attempts() as u64);
        run.attempt_ctx = (
            span.trace_id().unwrap_or(TraceId::NONE),
            span.span_id().unwrap_or(SpanId(0)),
        );
        run.attempt_span = span;
        run.phase = GroupPhase::Writes { cursor: 0 };
    }

    /// Ends a failed attempt: classifies the error, charges the group's
    /// private recovery budget, and parks the group in backoff — fatal
    /// errors and exhausted budgets fail its remaining ops instead. Only
    /// this group stalls; the event loop keeps the others moving.
    fn end_attempt(
        &mut self,
        run: &mut GroupRun,
        err: GengarError,
        results: &mut [Option<Result<(), GengarError>>],
    ) {
        // A failed attempt abandons any in-flight staged window; hand its
        // occupancy reservation back so the tenant's cap cannot leak.
        if run.staged_reserved > 0 {
            if let Some(tenant) = &self.tenant {
                tenant.release_staged(run.staged_reserved);
            }
            run.staged_reserved = 0;
        }
        run.attempt_span = TraceSpan::disabled();
        let _ctx = adopt(run.group_ctx.0, run.group_ctx.1);
        let policy = self.policy;
        match classify(&err) {
            Disposition::Fatal => {
                // Escalation past retry dumps the flight recorder (one-shot,
                // no-op unless armed) so the spans leading here survive.
                gengar_telemetry::FlightRecorder::global().trigger("client-fatal");
                Self::fail_group(run, results, err);
            }
            Disposition::Retry => {
                self.metrics.retries.inc();
                match run.state.charge_deferred(&policy, err) {
                    Ok(at) => {
                        run.phase = GroupPhase::Backoff {
                            resume_at: at,
                            reconnect: false,
                        }
                    }
                    Err(last) => Self::fail_group(run, results, last),
                }
            }
            Disposition::Reconnect => {
                gengar_telemetry::FlightRecorder::global().trigger("client-reconnect");
                self.metrics.retries.inc();
                match run.state.charge_deferred(&policy, err) {
                    Ok(at) => {
                        run.phase = GroupPhase::Backoff {
                            resume_at: at,
                            reconnect: true,
                        }
                    }
                    Err(last) => {
                        // Reconnect budget exhausted: escalate to the
                        // replica (once per group) before giving up.
                        if run.state.escalate() && self.failover(run.server).is_ok() {
                            run.phase = GroupPhase::Backoff {
                                resume_at: Instant::now(),
                                reconnect: false,
                            };
                        } else {
                            Self::fail_group(run, results, last);
                        }
                    }
                }
            }
            Disposition::Failover => {
                // The machine is gone from the fabric; skip the reconnect
                // dance and re-mount the group's ward on its replica. The
                // immediate backoff wake restarts the attempt over the
                // unresolved ops — settled records stay settled.
                gengar_telemetry::FlightRecorder::global().trigger("client-failover");
                self.metrics.retries.inc();
                if run.state.escalate() && self.failover(run.server).is_ok() {
                    run.phase = GroupPhase::Backoff {
                        resume_at: Instant::now(),
                        reconnect: false,
                    };
                } else {
                    Self::fail_group(run, results, err);
                }
            }
        }
    }

    /// Budget exhausted (or fatal): ops that completed stay completed,
    /// the rest carry the final error. Other server groups still run.
    fn fail_group(
        run: &mut GroupRun,
        results: &mut [Option<Result<(), GengarError>>],
        last: GengarError,
    ) {
        for &i in &run.indices {
            if results[i].is_none() {
                results[i] = Some(Err(last.clone()));
            }
        }
        run.attempt_span = TraceSpan::disabled();
        run.group_span = TraceSpan::disabled();
        run.phase = GroupPhase::Done;
    }

    /// Closes a completed attempt pass: everything resolved ends the
    /// group, a pass that resolved nothing fails it (the loop would spin
    /// forever), anything in between starts the next pass over the
    /// stragglers without charging the retry budget.
    fn finish_attempt(
        &mut self,
        run: &mut GroupRun,
        ops: &[BatchOp<'_>],
        results: &mut [Option<Result<(), GengarError>>],
    ) {
        let pending = run
            .indices
            .iter()
            .filter(|&&i| results[i].is_none())
            .count();
        if pending == 0 {
            run.attempt_span = TraceSpan::disabled();
            run.group_span = TraceSpan::disabled();
            run.phase = GroupPhase::Done;
            return;
        }
        if pending == run.pending_at_start {
            // Defensive: a successful attempt must resolve something.
            Self::fail_group(
                run,
                results,
                GengarError::ProtocolViolation("batch attempt made no progress"),
            );
            return;
        }
        run.attempt_span = TraceSpan::disabled();
        self.start_attempt(run, ops, results);
    }

    /// The write half of an attempt pass, resumable at any op index.
    ///
    /// Under `Consistency::None` on a healthy staging ring, the *last*
    /// write per object is window-eligible — its record is gathered into
    /// a scratch lane and posted with up to `window_depth` others under
    /// one doorbell ([`GengarClient::post_staged`]). Earlier same-object
    /// writes and everything the planner cannot batch (seqlock writes,
    /// oversize payloads, degraded connections) take the scalar path,
    /// with any planned chunk posted first as an ordering barrier.
    /// Posting parks the group (`StagedWait`/`RingWait`) instead of
    /// blocking; the walk resumes at `resume` once the flight settles.
    fn step_writes(
        &mut self,
        run: &mut GroupRun,
        cursor: usize,
        ops: &mut [BatchOp<'_>],
        results: &mut [Option<Result<(), GengarError>>],
    ) -> Result<(), GengarError> {
        let (stage_cap, slot_bytes, max_payload, op_buf) = {
            let conn = self.conn(run.server)?;
            match conn.staging.as_ref() {
                Some(st) if self.config.consistency == Consistency::None && !conn.degraded => {
                    let layout = st.layout();
                    let cap = (conn.window.depth() as usize)
                        .min(layout.slots as usize)
                        .min((conn.op_buf_len / layout.slot_bytes()) as usize);
                    (cap, layout.slot_bytes(), st.max_payload(), conn.op_buf)
                }
                _ => (0, 0, 0, conn.op_buf),
            }
        };
        // A tenant with a staged-occupancy cap never plans a window larger
        // than the cap: an oversize window could never reserve, so it
        // would park forever. Oversize single payloads take the scalar
        // path, which sheds them to the direct write.
        let tenant_cap = self
            .tenant
            .as_ref()
            .map(|t| t.spec().staged_bytes_cap)
            .filter(|&cap| cap > 0);
        let mut staged: Vec<StagedPlan> = Vec::new();
        let mut staged_bytes: u64 = 0;
        let mut cursor = cursor;
        while cursor < run.indices.len() {
            let i = run.indices[cursor];
            if results[i].is_some() {
                cursor += 1;
                continue;
            }
            let (ptr, offset, data_len) = match &ops[i] {
                BatchOp::Write { ptr, offset, data } => (*ptr, *offset, data.len() as u64),
                _ => {
                    cursor += 1;
                    continue;
                }
            };
            let base = ptr.addr.raw();
            if stage_cap > 0
                && run.last_write.get(&base) == Some(&i)
                && data_len <= max_payload
                && tenant_cap.is_none_or(|cap| data_len <= cap)
            {
                if tenant_cap.is_some_and(|cap| staged_bytes + data_len > cap) {
                    // The occupancy cap bounds one window; post what is
                    // planned and resume here, unadvanced.
                    return self.post_staged(run, cursor, staged, ops);
                }
                staged_bytes += data_len;
                staged.push(StagedPlan {
                    idx: i,
                    target_raw: ptr.addr.add(offset).raw(),
                    base_raw: base,
                    off: offset,
                    lane: op_buf + staged.len() as u64 * slot_bytes,
                });
                cursor += 1;
                if staged.len() == stage_cap {
                    return self.post_staged(run, cursor, staged, ops);
                }
            } else if !staged.is_empty() {
                // Ordering barrier: planned records must land before this
                // scalar write (same-object order; the scalar path also
                // reuses the scratch lanes). Resume here, unadvanced.
                return self.post_staged(run, cursor, staged, ops);
            } else {
                // Issue gate: a dry tenant bucket parks the group (no
                // retry budget charged) and the walk resumes right here.
                if let Some(tenant) = &self.tenant {
                    if let Err(wake) = tenant.issue_admit(1, data_len) {
                        run.phase = GroupPhase::Throttle {
                            resume_at: wake,
                            next: Box::new(GroupPhase::Writes { cursor }),
                        };
                        return Ok(());
                    }
                }
                let data: &[u8] = match &ops[i] {
                    BatchOp::Write { data, .. } => data,
                    _ => unreachable!("matched above"),
                };
                let outcome = self.write_attempt(ptr, offset, data);
                Self::resolve_scalar(outcome, &mut results[i])?;
                cursor += 1;
            }
        }
        if staged.is_empty() {
            run.phase = GroupPhase::Reads { cursor: 0 };
            Ok(())
        } else {
            // resume == len: the resumed write walk falls straight
            // through to the read pass.
            self.post_staged(run, run.indices.len(), staged, ops)
        }
    }

    /// Routes a planned staged-write window: posts it if the ring has
    /// room, otherwise parks the group in `RingWait` to poll the drained
    /// watermark (the blocking paths sleep here instead).
    fn post_staged(
        &mut self,
        run: &mut GroupRun,
        resume: usize,
        plans: Vec<StagedPlan>,
        ops: &[BatchOp<'_>],
    ) -> Result<(), GengarError> {
        if let Some(tenant) = &self.tenant {
            let bytes: u64 = plans
                .iter()
                .map(|p| match &ops[p.idx] {
                    BatchOp::Write { data, .. } => data.len() as u64,
                    _ => 0,
                })
                .sum();
            // Occupancy admission first: the planner never builds a
            // window larger than the cap, so a failed reserve means other
            // flights hold the budget — park briefly until they settle
            // and release, re-entering here.
            if !tenant.try_reserve_staged(bytes) {
                run.phase = GroupPhase::Throttle {
                    resume_at: Instant::now() + Duration::from_micros(20),
                    next: Box::new(GroupPhase::PostWrites { resume, plans }),
                };
                return Ok(());
            }
            // Token gate: weighted rate/bandwidth charge. A dry bucket
            // parks until its refill instant, handing the occupancy
            // reservation back (both gates re-run on wake).
            if let Err(wake) = tenant.issue_admit(plans.len() as u64, bytes) {
                tenant.release_staged(bytes);
                run.phase = GroupPhase::Throttle {
                    resume_at: wake,
                    next: Box::new(GroupPhase::PostWrites { resume, plans }),
                };
                return Ok(());
            }
            run.staged_reserved += bytes;
        }
        let full = {
            let conn = self.conn(run.server)?;
            let st = conn.staging.as_ref().expect("planned on a staging ring");
            if st.ring_room() < plans.len() {
                st.note_ring_full();
                Some(st.known_drained())
            } else {
                None
            }
        };
        if let Some(drained) = full {
            let now = Instant::now();
            run.phase = GroupPhase::RingWait {
                resume,
                plans,
                next_poll: now,
                sleep_us: 5,
                last_seen: drained,
                stall_deadline: now + self.policy.attempt_timeout(),
            };
            return Ok(());
        }
        self.begin_staged(run, resume, plans, ops)
    }

    /// Posts a staged-write window under one doorbell and parks the group
    /// on the open flight. Failures of the post itself (nothing staged)
    /// count toward the connection's degraded tracking.
    fn begin_staged(
        &mut self,
        run: &mut GroupRun,
        resume: usize,
        plans: Vec<StagedPlan>,
        ops: &[BatchOp<'_>],
    ) -> Result<(), GengarError> {
        let items: Vec<(u64, &[u8], u64)> = plans
            .iter()
            .map(|p| {
                let data: &[u8] = match &ops[p.idx] {
                    BatchOp::Write { data, .. } => data,
                    _ => unreachable!("planned from a write"),
                };
                (p.target_raw, data, p.lane)
            })
            .collect();
        let threshold = self.config.staging_fault_threshold;
        let conn = self.conn_mut(run.server)?;
        match conn
            .staging
            .as_mut()
            .expect("planned on a staging ring")
            .stage_batch_begin(&items)
        {
            Ok(flight) => {
                run.phase = GroupPhase::StagedWait {
                    resume,
                    plans,
                    flight,
                };
                Ok(())
            }
            Err(e) => {
                conn.staging_faults += 1;
                if conn.staging_faults >= threshold {
                    conn.degraded = true;
                }
                Err(e)
            }
        }
    }

    /// Retires a completed staged-write flight and settles the per-record
    /// outcomes (store buffer, hotness, degraded tracking). Successfully
    /// staged records resolve their ops even when the function then
    /// returns a transport error for a failed sibling: acknowledged
    /// records are durable and must not be replayed.
    fn settle_staged(
        &mut self,
        run: &mut GroupRun,
        resume: usize,
        plans: Vec<StagedPlan>,
        flight: StagedFlight,
        ops: &[BatchOp<'_>],
        results: &mut [Option<Result<(), GengarError>>],
    ) -> Result<(), GengarError> {
        // The flight has settled (acknowledged or failed per record):
        // its staged-occupancy reservation is done either way.
        if run.staged_reserved > 0 {
            if let Some(tenant) = &self.tenant {
                tenant.release_staged(run.staged_reserved);
            }
            run.staged_reserved = 0;
        }
        let outcomes = {
            let conn = self.conn_mut(run.server)?;
            conn.staging
                .as_mut()
                .expect("flight implies a staging ring")
                .stage_batch_finish(flight)
        };
        let threshold = self.config.staging_fault_threshold;
        let mut first_err: Option<GengarError> = None;
        let mut any_ok = false;
        for (p, outcome) in plans.iter().zip(outcomes) {
            match outcome {
                Ok(seq) => {
                    any_ok = true;
                    let data: &[u8] = match &ops[p.idx] {
                        BatchOp::Write { data, .. } => data,
                        _ => unreachable!("planned from a write"),
                    };
                    self.write_back.insert(
                        p.base_raw,
                        WriteBack {
                            seq,
                            off: p.off,
                            data: data.to_vec(),
                        },
                    );
                    self.metrics.staged_writes.inc();
                    results[p.idx] = Some(Ok(()));
                    self.record(run.server, p.base_raw, true)?;
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        {
            let conn = self.conn_mut(run.server)?;
            if any_ok {
                conn.staging_faults = 0;
            }
            if first_err.is_some() {
                conn.staging_faults += 1;
                if conn.staging_faults >= threshold {
                    conn.degraded = true;
                }
            }
        }
        self.purge_write_back(run.server)?;
        self.maybe_remirror(run.server);
        match first_err {
            Some(e) => Err(e),
            None => {
                run.phase = GroupPhase::Writes { cursor: resume };
                Ok(())
            }
        }
    }

    /// The read half of an attempt pass, resumable at any op index.
    ///
    /// Store-buffer hits and seqlock-validated reads stay scalar; plain
    /// NVM reads and cache-frame fetches are packed into scratch lanes
    /// and posted in windows ([`GengarClient::post_reads`]), parking the
    /// group on the flight instead of blocking. A pass that plans nothing
    /// further closes the attempt.
    fn step_reads(
        &mut self,
        run: &mut GroupRun,
        cursor: usize,
        ops: &mut [BatchOp<'_>],
        results: &mut [Option<Result<(), GengarError>>],
    ) -> Result<(), GengarError> {
        let (depth, op_buf, op_buf_len) = {
            let conn = self.conn(run.server)?;
            (conn.window.depth() as usize, conn.op_buf, conn.op_buf_len)
        };
        let mut plans: Vec<ReadPlan> = Vec::new();
        let mut lane_off: u64 = 0;
        let mut cursor = cursor;
        while cursor < run.indices.len() {
            let i = run.indices[cursor];
            if results[i].is_some() {
                cursor += 1;
                continue;
            }
            let (ptr, offset, buf_len) = match &ops[i] {
                BatchOp::Read { ptr, offset, buf } => (*ptr, *offset, buf.len() as u64),
                _ => {
                    cursor += 1;
                    continue;
                }
            };
            let base = ptr.addr.raw();
            let plain =
                self.config.consistency == Consistency::None || self.held.contains_key(&base);
            let worth = buf_len * 2 >= ptr.size;
            let mut scalar = !plain || self.write_back.contains_key(&base);
            let mut cached = None;
            if !scalar && worth {
                if let Some(&slot_raw) = self.remap.get(&base) {
                    match GlobalAddr::from_raw(slot_raw) {
                        Some(s)
                            if s.class() == MemClass::DramCache
                                && SLOT_HEADER + ptr.size + SLOT_TAIL <= op_buf_len =>
                        {
                            cached = Some(s)
                        }
                        _ => {
                            self.remap.remove(&base);
                            self.metrics.cache_rejects.inc();
                        }
                    }
                }
            }
            let need = match cached {
                Some(_) => SLOT_HEADER + ptr.size + SLOT_TAIL,
                // Oversize plain reads chunk through the scalar path.
                None => buf_len,
            };
            scalar |= need > op_buf_len;
            if scalar {
                if !plans.is_empty() {
                    // Scalar reads scribble over the whole op area, so
                    // every planned lane must be copied out first.
                    // Resume here, unadvanced.
                    return self.post_reads(run, cursor, plans, ops);
                }
                // Issue gate: a dry tenant bucket parks the group and the
                // read walk resumes right here.
                if let Some(tenant) = &self.tenant {
                    if let Err(wake) = tenant.issue_admit(1, buf_len) {
                        run.phase = GroupPhase::Throttle {
                            resume_at: wake,
                            next: Box::new(GroupPhase::Reads { cursor }),
                        };
                        return Ok(());
                    }
                }
                let outcome = {
                    let buf = match &mut ops[i] {
                        BatchOp::Read { buf, .. } => &mut **buf,
                        _ => unreachable!("matched above"),
                    };
                    self.read_attempt(ptr, offset, buf)
                };
                Self::resolve_scalar(outcome, &mut results[i])?;
                cursor += 1;
                continue;
            }
            if plans.len() == depth || lane_off + need > op_buf_len {
                return self.post_reads(run, cursor, plans, ops);
            }
            plans.push(ReadPlan {
                idx: i,
                ptr,
                offset,
                lane: op_buf + lane_off,
                cached,
            });
            lane_off += need;
            cursor += 1;
        }
        if plans.is_empty() {
            self.finish_attempt(run, ops, results);
            Ok(())
        } else {
            self.post_reads(run, run.indices.len(), plans, ops)
        }
    }

    /// Posts a planned read window under one doorbell and parks the group
    /// on the pending completions.
    fn post_reads(
        &mut self,
        run: &mut GroupRun,
        resume: usize,
        plans: Vec<ReadPlan>,
        ops: &[BatchOp<'_>],
    ) -> Result<(), GengarError> {
        // Issue gate: charge the window's ops and wire bytes (cache-frame
        // fetches pull the whole frame); a dry bucket parks the group and
        // re-enters here (`PostReads`) on wake.
        if let Some(tenant) = &self.tenant {
            let bytes: u64 = plans
                .iter()
                .map(|p| match p.cached {
                    Some(_) => SLOT_HEADER + p.ptr.size + SLOT_TAIL,
                    None => match &ops[p.idx] {
                        BatchOp::Read { buf, .. } => buf.len() as u64,
                        _ => 0,
                    },
                })
                .sum();
            if let Err(wake) = tenant.issue_admit(plans.len() as u64, bytes) {
                run.phase = GroupPhase::Throttle {
                    resume_at: wake,
                    next: Box::new(GroupPhase::PostReads { resume, plans }),
                };
                return Ok(());
            }
        }
        let mr_lkey = self.mr.lkey();
        let conn = self.conn(run.server)?;
        let (nvm_rkey, cache_rkey) = (conn.nvm_rkey(), conn.cache_rkey());
        let sends: Vec<SendOp> = plans
            .iter()
            .map(|p| match p.cached {
                Some(slot) => SendOp::Read {
                    local: Sge::new(mr_lkey, p.lane, SLOT_HEADER + p.ptr.size + SLOT_TAIL),
                    remote: RemoteAddr::new(cache_rkey, slot.offset()),
                },
                None => {
                    let len = match &ops[p.idx] {
                        BatchOp::Read { buf, .. } => buf.len() as u64,
                        _ => unreachable!("planned from a read"),
                    };
                    SendOp::Read {
                        local: Sge::new(mr_lkey, p.lane, len),
                        remote: RemoteAddr::new(nvm_rkey, p.ptr.addr.offset() + p.offset),
                    }
                }
            })
            .collect();
        let pending = conn.window.post(&conn.data, sends)?;
        run.phase = GroupPhase::ReadWait {
            resume,
            plans,
            pending,
        };
        Ok(())
    }

    /// Settles a completed read flight: copies every lane out and
    /// resolves per-op outcomes. Cache frames are FaRM-validated from
    /// their lanes; invalid ones fall back to scalar NVM reads in a
    /// second pass *after* all lane copies (the scalar path reuses the
    /// lanes as scratch). The read walk then resumes at `resume`.
    fn settle_reads(
        &mut self,
        run: &mut GroupRun,
        resume: usize,
        plans: Vec<ReadPlan>,
        completions: Vec<Result<Wc, RdmaError>>,
        ops: &mut [BatchOp<'_>],
        results: &mut [Option<Result<(), GengarError>>],
    ) -> Result<(), GengarError> {
        let region = self.mr.region().clone();
        let nvm_rkey = self.conn(run.server)?.nvm_rkey();
        let mut first_err: Option<GengarError> = None;
        let mut fallbacks: Vec<usize> = Vec::new();
        for (k, (p, wc)) in plans.iter().zip(completions).enumerate() {
            match wc {
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(GengarError::Rdma(e));
                    }
                }
                Ok(_) if p.cached.is_some() => {
                    let mut hdr_bytes = [0u8; SLOT_HEADER as usize];
                    region.read(p.lane, &mut hdr_bytes)?;
                    let hdr = decode_slot_header(&hdr_bytes);
                    let mut tail_bytes = [0u8; 8];
                    region.read(p.lane + SLOT_HEADER + p.ptr.size, &mut tail_bytes)?;
                    let tail = u64::from_le_bytes(tail_bytes);
                    let valid = hdr.tag == p.ptr.addr.raw()
                        && hdr.version.is_multiple_of(2)
                        && hdr.len == p.ptr.size
                        && tail == hdr.version;
                    if valid {
                        {
                            let buf = match &mut ops[p.idx] {
                                BatchOp::Read { buf, .. } => &mut **buf,
                                _ => unreachable!("planned from a read"),
                            };
                            region.read(p.lane + SLOT_HEADER + p.offset, buf)?;
                        }
                        self.metrics.cache_hits.inc();
                        results[p.idx] = Some(Ok(()));
                        self.record(run.server, p.ptr.addr.raw(), false)?;
                    } else {
                        self.remap.remove(&p.ptr.addr.raw());
                        self.metrics.cache_rejects.inc();
                        fallbacks.push(k);
                    }
                }
                Ok(_) => {
                    let worth = {
                        let buf = match &mut ops[p.idx] {
                            BatchOp::Read { buf, .. } => &mut **buf,
                            _ => unreachable!("planned from a read"),
                        };
                        region.read(p.lane, buf)?;
                        buf.len() as u64 * 2 >= p.ptr.size
                    };
                    self.metrics.nvm_reads.inc();
                    results[p.idx] = Some(Ok(()));
                    if worth {
                        self.record(run.server, p.ptr.addr.raw(), false)?;
                    }
                }
            }
        }
        for k in fallbacks {
            let p = &plans[k];
            let outcome = {
                let buf = match &mut ops[p.idx] {
                    BatchOp::Read { buf, .. } => &mut **buf,
                    _ => unreachable!("planned from a read"),
                };
                self.read_remote(run.server, nvm_rkey, p.ptr.addr.offset() + p.offset, buf)
            };
            match outcome {
                Ok(()) => {
                    self.metrics.nvm_reads.inc();
                    results[p.idx] = Some(Ok(()));
                    // A cached plan implies a cache-worthy read.
                    self.record(run.server, p.ptr.addr.raw(), false)?;
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                run.phase = GroupPhase::Reads { cursor: resume };
                Ok(())
            }
        }
    }

    /// Remote atomic compare-and-swap on an 8-byte-aligned word of the
    /// object. Returns the value observed before the operation.
    ///
    /// # Errors
    ///
    /// Bounds/alignment violations, transport failures that outlive the
    /// operation deadline.
    pub fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        Self::check_access(ptr, offset, 8)?;
        let server = ptr.addr.server();
        let mut state = self.retry_state();
        // The verb is only ever re-posted after a failure that provably
        // preceded execution (the fabric injects faults before the remote
        // word is touched), so a retried CAS cannot double-apply.
        let prev = loop {
            match self.cas_attempt(ptr, offset, expected, new) {
                Ok(v) => break v,
                Err(e) => self.recover(server, e, &mut state)?,
            }
        };
        // The durability anchor is idempotent and retried independently so
        // a flush failure never re-executes the atomic.
        loop {
            match self.finish_atomic(ptr, offset) {
                Ok(()) => return Ok(prev),
                Err(e) => self.recover(server, e, &mut state)?,
            }
        }
    }

    fn cas_attempt(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        let op_cas = self.op_cas;
        let mr_lkey = self.mr.lkey();
        let region = self.mr.region().clone();
        let server = ptr.addr.server();
        let conn = self.conn(server)?;
        conn.data.compare_swap(
            Sge::new(mr_lkey, op_cas, 8),
            RemoteAddr::new(conn.nvm_rkey(), ptr.addr.offset() + offset),
            expected,
            new,
        )?;
        let mut prev = [0u8; 8];
        region.read(op_cas, &mut prev)?;
        Ok(u64::from_le_bytes(prev))
    }

    /// Remote atomics mutate NVM without persistence; anchor durability
    /// with the flush RPC (which also invalidates any cached copy), then
    /// drop stale local views.
    fn finish_atomic(&mut self, ptr: GlobalPtr, offset: u64) -> Result<(), GengarError> {
        let server = ptr.addr.server();
        let conn = self.conn(server)?;
        match conn.rpc.call(&Request::FlushRange {
            addr: ptr.addr.add(offset).raw(),
            len: 8,
        })? {
            Response::Ok => {}
            Response::Err { code } => return Err(error_for_code(code, 8)),
            _ => return Err(GengarError::ProtocolViolation("bad flush response")),
        }
        self.remap.remove(&ptr.addr.raw());
        self.write_back.remove(&ptr.addr.raw());
        self.record(server, ptr.addr.raw(), true)
    }

    /// Remote atomic fetch-and-add, returning the prior value.
    ///
    /// # Errors
    ///
    /// Bounds/alignment violations, transport failures that outlive the
    /// operation deadline.
    pub fn faa_u64(&mut self, ptr: GlobalPtr, offset: u64, add: u64) -> Result<u64, GengarError> {
        Self::check_access(ptr, offset, 8)?;
        let server = ptr.addr.server();
        let mut state = self.retry_state();
        // Same re-execution discipline as [`GengarClient::cas_u64`]: only
        // provably unexecuted FAAs are re-posted, so the add never lands
        // twice.
        let prev = loop {
            match self.faa_attempt(ptr, offset, add) {
                Ok(v) => break v,
                Err(e) => self.recover(server, e, &mut state)?,
            }
        };
        loop {
            match self.finish_atomic(ptr, offset) {
                Ok(()) => return Ok(prev),
                Err(e) => self.recover(server, e, &mut state)?,
            }
        }
    }

    fn faa_attempt(&mut self, ptr: GlobalPtr, offset: u64, add: u64) -> Result<u64, GengarError> {
        let op_cas = self.op_cas;
        let mr_lkey = self.mr.lkey();
        let region = self.mr.region().clone();
        let server = ptr.addr.server();
        let conn = self.conn(server)?;
        conn.data.fetch_add(
            Sge::new(mr_lkey, op_cas, 8),
            RemoteAddr::new(conn.nvm_rkey(), ptr.addr.offset() + offset),
            add,
        )?;
        let mut prev = [0u8; 8];
        region.read(op_cas, &mut prev)?;
        Ok(u64::from_le_bytes(prev))
    }

    /// Acquires the object's writer lock via remote CAS.
    ///
    /// # Errors
    ///
    /// [`GengarError::LockContended`] after `lock_retries` failed attempts.
    pub fn lock(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        Self::check_access(ptr, 0, 0)?;
        let base = ptr.addr.raw();
        if self.held.contains_key(&base) {
            return Ok(());
        }
        let word_off = ptr.addr.offset() - OBJ_HEADER;
        let mut backoff = Backoff::default();
        for _ in 0..self.config.lock_retries {
            let current = self.read_lockword(ptr.addr)?;
            if !lockword::is_locked(current) {
                let locked = lockword::locked(current);
                let op_cas = self.op_cas;
                let mr_lkey = self.mr.lkey();
                let region = self.mr.region().clone();
                let conn = self.conn(ptr.addr.server())?;
                conn.data.compare_swap(
                    Sge::new(mr_lkey, op_cas, 8),
                    RemoteAddr::new(conn.nvm_rkey(), word_off),
                    current,
                    locked,
                )?;
                let mut prev = [0u8; 8];
                region.read(op_cas, &mut prev)?;
                if u64::from_le_bytes(prev) == current {
                    self.held.insert(base, locked);
                    return Ok(());
                }
            }
            self.metrics.lock_retries.inc();
            backoff.wait();
        }
        Err(GengarError::LockContended(ptr.addr))
    }

    /// Releases a lock held by this client, bumping the object version.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] if this client does not hold the
    /// lock.
    pub fn unlock(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        let base = ptr.addr.raw();
        let locked_word = *self
            .held
            .get(&base)
            .ok_or(GengarError::ProtocolViolation("unlock without lock"))?;
        let release = lockword::release(locked_word);
        let word_off = ptr.addr.offset() - OBJ_HEADER;
        let server = ptr.addr.server();
        let nvm_rkey = self.conn(server)?.nvm_rkey();
        // Forget the lock only once the release write landed; a failed
        // release leaves it in `held` so a retried unlock (or the write
        // path's auto-unlock) can release it instead of deadlocking on a
        // lock word nobody remembers owning.
        self.write_remote(server, nvm_rkey, word_off, &release.to_le_bytes())?;
        self.held.remove(&base);
        Ok(())
    }

    /// Reads the object's raw lock/version word (one 8-byte READ). Exposed
    /// for systems layered on Gengar that implement their own validation,
    /// e.g. client-side caches.
    ///
    /// # Errors
    ///
    /// Transport failures as [`GengarError::Rdma`].
    pub fn read_lock_word(&mut self, ptr: GlobalPtr) -> Result<u64, GengarError> {
        Self::check_access(ptr, 0, 0)?;
        self.read_lockword(ptr.addr)
    }

    /// Records one access for the piggybacked hotness report.
    fn record(&mut self, server: u8, base_raw: u64, wrote: bool) -> Result<(), GengarError> {
        // A promoted ward serves from the replica's shadow region, which
        // has no cache plane of its own: reporting would make the replica
        // cache the ward's addresses against its *own* NVM. Skip it.
        if self.redirects.contains_key(&server) {
            return Ok(());
        }
        let entry = self
            .pending
            .entry(server)
            .or_default()
            .entry(base_raw)
            .or_insert((0, false));
        entry.0 += 1;
        entry.1 |= wrote;
        self.ops_since_report += 1;
        if self.ops_since_report >= self.config.report_every {
            self.flush_reports()?;
        }
        Ok(())
    }

    /// Sends pending hotness reports now and applies the piggybacked remap
    /// updates. Called automatically every `report_every` accesses.
    ///
    /// # Errors
    ///
    /// Transport failures as [`GengarError::Rdma`].
    pub fn flush_reports(&mut self) -> Result<(), GengarError> {
        self.ops_since_report = 0;
        let pending = std::mem::take(&mut self.pending);
        for (server, entries) in pending {
            let mut batch: Vec<AccessEntry> = entries
                .into_iter()
                .map(|(addr, (count, wrote))| AccessEntry { addr, count, wrote })
                .collect();
            while !batch.is_empty() {
                let chunk: Vec<AccessEntry> = batch.drain(..batch.len().min(MAX_REPORT)).collect();
                let conn = self.conn(server)?;
                match conn.rpc.call(&Request::Report { entries: chunk })? {
                    Response::Report { remaps } => {
                        for r in remaps {
                            if r.cache_addr == 0 {
                                self.remap.remove(&r.addr);
                            } else {
                                if self.remap.len() >= self.config.remap_cache_entries
                                    && !self.remap.contains_key(&r.addr)
                                {
                                    continue;
                                }
                                self.remap.insert(r.addr, r.cache_addr);
                            }
                        }
                    }
                    Response::Err { .. } => {}
                    _ => return Err(GengarError::ProtocolViolation("bad report response")),
                }
                self.metrics.reports.inc();
            }
        }
        Ok(())
    }

    /// Blocks until every staged write this client issued has been drained
    /// to NVM (used by tests and durability-sensitive applications).
    ///
    /// Runs under the same recovery loop as the data operations: a stalled
    /// drain (dead server) is bounded by the per-operation deadline, and a
    /// reconnect replays the un-drained writes before waiting again.
    ///
    /// # Errors
    ///
    /// Transport failures that outlive the operation deadline, as
    /// [`GengarError::Rdma`].
    pub fn drain_all(&mut self) -> Result<(), GengarError> {
        for server in self.server_ids() {
            let mut state = self.retry_state();
            loop {
                let result = (|| {
                    let conn = self.conn_mut(server)?;
                    if let Some(st) = conn.staging.as_mut() {
                        let last = st.next_seq().saturating_sub(1);
                        if last > 0 {
                            st.wait_drained(last)?;
                        }
                    }
                    Ok(())
                })();
                match result {
                    Ok(()) => break,
                    Err(e) => self.recover(server, e, &mut state)?,
                }
            }
        }
        self.write_back.clear();
        Ok(())
    }

    /// Number of remap entries currently cached locally.
    pub fn remap_entries(&self) -> usize {
        self.remap.len()
    }
}
