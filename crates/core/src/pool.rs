//! The `DshmPool` abstraction: the API surface shared by Gengar and the
//! baseline systems it is evaluated against.

use crate::addr::GlobalPtr;
use crate::client::GengarClient;
use crate::error::GengarError;

/// A distributed shared (hybrid) memory pool, from a client's perspective.
///
/// [`GengarClient`] implements this, as do the comparators in the
/// `gengar-baselines` crate, so workloads (YCSB, MapReduce, microbenchmarks)
/// run unchanged against every design point.
pub trait DshmPool {
    /// Allocates `size` payload bytes on `server`.
    ///
    /// # Errors
    ///
    /// Pool exhaustion, oversized objects, transport failures.
    fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError>;

    /// Frees an allocated object.
    ///
    /// # Errors
    ///
    /// Invalid address, double free, transport failures.
    fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError>;

    /// Reads `buf.len()` bytes at `ptr + offset`.
    ///
    /// # Errors
    ///
    /// Bounds violations, transport failures.
    fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError>;

    /// Writes `data` at `ptr + offset`. Durable when this returns.
    ///
    /// # Errors
    ///
    /// Bounds violations, transport failures.
    fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError>;

    /// Atomic compare-and-swap on an 8-byte-aligned word of the object,
    /// returning the previously observed value.
    ///
    /// # Errors
    ///
    /// Bounds/alignment violations, transport failures.
    fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError>;

    /// Servers reachable through this handle.
    fn servers(&self) -> Vec<u8>;

    /// Visibility barrier: when this returns, every write this handle has
    /// issued is visible to *other* clients' reads (for Gengar, waits for
    /// the proxy to drain this client's staged writes). Defaults to a
    /// no-op for designs whose writes are immediately visible.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn barrier(&mut self) -> Result<(), GengarError> {
        Ok(())
    }
}

impl<P: DshmPool + ?Sized> DshmPool for Box<P> {
    fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        (**self).alloc(server, size)
    }

    fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        (**self).free(ptr)
    }

    fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError> {
        (**self).read(ptr, offset, buf)
    }

    fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError> {
        (**self).write(ptr, offset, data)
    }

    fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        (**self).cas_u64(ptr, offset, expected, new)
    }

    fn servers(&self) -> Vec<u8> {
        (**self).servers()
    }

    fn barrier(&mut self) -> Result<(), GengarError> {
        (**self).barrier()
    }
}

impl DshmPool for GengarClient {
    fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        GengarClient::alloc(self, server, size)
    }

    fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        GengarClient::free(self, ptr)
    }

    fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError> {
        GengarClient::read(self, ptr, offset, buf)
    }

    fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError> {
        GengarClient::write(self, ptr, offset, data)
    }

    fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        GengarClient::cas_u64(self, ptr, offset, expected, new)
    }

    fn servers(&self) -> Vec<u8> {
        self.server_ids()
    }

    fn barrier(&mut self) -> Result<(), GengarError> {
        self.drain_all()
    }
}
