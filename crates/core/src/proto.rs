//! Control-plane wire protocol (encoded by hand over SEND/RECV).
//!
//! Messages are small (bounded by [`MAX_MSG`]) and carry fixed-width
//! little-endian fields behind a one-byte opcode. The data plane never uses
//! these messages — reads, writes and atomics are one-sided.

use bytes::{Buf, BufMut};

use crate::error::GengarError;
use crate::hotness::AccessEntry;

/// Maximum encoded message size (fits one RPC buffer slot).
pub const MAX_MSG: usize = 4096;

/// Maximum access-report entries per message.
pub const MAX_REPORT: usize = 128;

/// Maximum tenant-name bytes carried in a `Mount` request. Longer names
/// are truncated on encode (a config error, not a wire hazard).
pub const MAX_TENANT: usize = 64;

/// Maximum JSON bytes an `Inspect` response carries: [`MAX_MSG`] minus the
/// opcode and length prefix. The health plane builds its document against
/// this budget (dropping the oldest window digests first), so encode-side
/// truncation is a backstop, not the sizing mechanism.
pub const MAX_INSPECT_JSON: usize = MAX_MSG - 5;

/// Client-to-server requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Learn the server's exported regions and feature flags, declaring
    /// the tenant this connection bills to (QoS identity).
    Mount {
        /// Tenant name (see [`crate::config::ClientConfig::tenant`]).
        tenant: String,
    },
    /// Allocate an object with `size` payload bytes.
    Alloc {
        /// Payload size in bytes.
        size: u64,
    },
    /// Free the object whose payload starts at `addr` (raw global address).
    Free {
        /// Raw global address of the payload base.
        addr: u64,
    },
    /// Open a proxy staging ring; the server assigns a client id.
    OpenStaging,
    /// Piggybacked hotness report. The response carries remap updates for
    /// the reported addresses.
    Report {
        /// Batched access entries.
        entries: Vec<AccessEntry>,
    },
    /// Make `[addr, addr+len)` durable and invalidate any cached copy
    /// (direct-write path).
    FlushRange {
        /// Raw global address of the written payload base.
        addr: u64,
        /// Length of the written range.
        len: u64,
    },
    /// Invalidate any cached copy of `addr` without flushing.
    Invalidate {
        /// Raw global address of the payload base.
        addr: u64,
    },
    /// Read the drained watermark of ring `client_id`.
    QueryDurable {
        /// Ring owner.
        client_id: u32,
    },
    /// Promote this server to primary for the objects of dead server
    /// `primary` (sent to the *backup*). The backup replays un-drained
    /// mirror-ring records into its shadow region before answering, so a
    /// client that gets `Promoted` back may immediately read every settled
    /// write through the shadow.
    Promote {
        /// Pool id of the dead primary being failed away from.
        primary: u8,
    },
    /// Ask a server which pool member currently backs it up (clients use
    /// this to re-open a mirror lane after the old backup died).
    QueryReplica,
    /// Admin introspection: ask the server for its live health document
    /// (component states, SLO standings, window digests). Served from the
    /// health plane's already-computed state, so it is cheap enough to
    /// poll — `gengar-top` calls it once per server per refresh.
    Inspect,
}

/// Exported-region descriptions returned by `Mount`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MountInfo {
    /// Server identifier within the pool.
    pub server_id: u8,
    /// rkey of the NVM data region.
    pub nvm_rkey: u32,
    /// rkey of the DRAM cache region.
    pub cache_rkey: u32,
    /// rkey of the staging region.
    pub staging_rkey: u32,
    /// rkey of the control region.
    pub ctl_rkey: u32,
    /// NVM bytes exported.
    pub nvm_capacity: u64,
    /// Whether server-side hot-data caching is enabled.
    pub enable_cache: bool,
    /// Whether the proxy write path is enabled.
    pub enable_proxy: bool,
    /// Staging-ring slot payload capacity (bytes).
    pub slot_payload: u64,
    /// Slots per staging ring.
    pub slots_per_ring: u32,
    /// rkey of the replication shadow region ([`NO_BACKUP`]-paired `0`
    /// when replication is off). After a failover, clients address the
    /// promoted ward's data through this region at unchanged offsets.
    pub shadow_rkey: u32,
    /// Pool id of the server backing this one up ([`NO_BACKUP`] = none).
    pub backup: u8,
}

/// `MountInfo::backup` value meaning "no backup assigned".
pub const NO_BACKUP: u8 = 0xFF;

impl MountInfo {
    /// The staging-ring geometry this mount advertises. Client and server
    /// both derive their ring arithmetic from this one value, so the two
    /// sides can never disagree on slot sizes or offsets.
    pub fn ring_layout(&self) -> crate::proxy::RingLayout {
        crate::proxy::RingLayout {
            slot_payload: self.slot_payload,
            slots: self.slots_per_ring,
        }
    }
}

/// One remap update piggybacked on a `Report` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapUpdate {
    /// Raw global address of the object's payload base.
    pub addr: u64,
    /// Raw global address of the cached copy's slot frame, or 0 if the
    /// object is not (or no longer) cached.
    pub cache_addr: u64,
}

/// Server-to-client responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Mount succeeded.
    Mount(MountInfo),
    /// Allocation succeeded; `addr` is the payload base (raw).
    Alloc {
        /// Raw global address of the payload base.
        addr: u64,
    },
    /// Staging ring opened.
    Staging {
        /// Assigned client id (selects the ring).
        client_id: u32,
        /// Ring base offset within the staging region.
        ring_offset: u64,
    },
    /// Report folded; remap updates for the reported addresses.
    Report {
        /// Current cache locations for reported addresses.
        remaps: Vec<RemapUpdate>,
    },
    /// Drained watermark of the queried ring.
    Durable {
        /// Highest drained (and NVM-flushed) sequence number.
        seq: u64,
    },
    /// Generic success.
    Ok,
    /// Answer to `QueryReplica`: the server's current backup assignment.
    Replica {
        /// Pool id of the current backup ([`NO_BACKUP`] = none).
        backup: u8,
    },
    /// Answer to `Promote`: the backup now serves the ward's objects from
    /// its shadow region.
    Promoted {
        /// Mirror-ring records replayed into the shadow during promotion.
        replayed: u64,
    },
    /// Answer to `Inspect`: the versioned health document (see
    /// DESIGN.md § Live health & SLO plane for the schema).
    Inspect {
        /// JSON document, at most [`MAX_INSPECT_JSON`] bytes.
        json: String,
    },
    /// The request failed.
    Err {
        /// Error code (see [`err_code`]).
        code: u16,
    },
}

/// Error codes carried in [`Response::Err`].
pub mod err_code {
    /// Out of pool memory.
    pub const OOM: u16 = 1;
    /// Object too large.
    pub const TOO_LARGE: u16 = 2;
    /// Invalid address.
    pub const INVALID_ADDR: u16 = 3;
    /// Double free.
    pub const DOUBLE_FREE: u16 = 4;
    /// Server at client capacity.
    pub const NO_CAPACITY: u16 = 5;
    /// Malformed request.
    pub const BAD_REQUEST: u16 = 6;
    /// Tenant over its QoS budget; retry after backing off.
    pub const THROTTLED: u16 = 7;
}

/// Maps an error-code response to the client-visible error.
pub fn error_for_code(code: u16, requested: u64) -> GengarError {
    match code {
        err_code::OOM => GengarError::OutOfMemory { requested },
        err_code::TOO_LARGE => GengarError::ObjectTooLarge {
            requested,
            max: crate::alloc::MAX_CLASS,
        },
        err_code::INVALID_ADDR | err_code::DOUBLE_FREE => {
            GengarError::ProtocolViolation("server rejected address")
        }
        err_code::NO_CAPACITY => GengarError::ProtocolViolation("server at client capacity"),
        err_code::THROTTLED => GengarError::Throttled,
        _ => GengarError::ProtocolViolation("unknown error code"),
    }
}

/// Trace context carried on every request, right after the opcode byte:
/// `[trace u64][parent span u64]`, both 0 when the caller is untraced.
/// The server adopts it around the handler, so server-side spans (RPC
/// service time, staging setup, durable-watermark queries) land in the
/// originating client op's trace — including the RPCs a reconnect issues,
/// which is what keeps a trace causally whole across connection loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id of the issuing op (0 = untraced).
    pub trace: u64,
    /// Span id of the caller's active span (0 = none).
    pub parent: u64,
}

impl TraceCtx {
    /// Captures the calling thread's current trace context.
    pub fn current() -> Self {
        let (trace, parent) = gengar_telemetry::current_context();
        TraceCtx {
            trace: trace.0,
            parent: parent.0,
        }
    }

    /// Installs this context on the calling thread until the guard drops.
    pub fn adopt(self) -> gengar_telemetry::ContextGuard {
        gengar_telemetry::adopt(
            gengar_telemetry::TraceId(self.trace),
            gengar_telemetry::SpanId(self.parent),
        )
    }
}

/// Encoded size of [`TraceCtx`] on the wire.
const TRACE_CTX_BYTES: usize = 16;

const REQ_MOUNT: u8 = 1;
const REQ_ALLOC: u8 = 2;
const REQ_FREE: u8 = 3;
const REQ_OPEN_STAGING: u8 = 4;
const REQ_REPORT: u8 = 5;
const REQ_FLUSH_RANGE: u8 = 6;
const REQ_INVALIDATE: u8 = 7;
const REQ_QUERY_DURABLE: u8 = 8;
const REQ_PROMOTE: u8 = 9;
const REQ_QUERY_REPLICA: u8 = 10;
const REQ_INSPECT: u8 = 11;

const RESP_MOUNT: u8 = 129;
const RESP_ALLOC: u8 = 130;
const RESP_STAGING: u8 = 131;
const RESP_REPORT: u8 = 132;
const RESP_DURABLE: u8 = 133;
const RESP_OK: u8 = 134;
const RESP_ERR: u8 = 135;
const RESP_REPLICA: u8 = 136;
const RESP_PROMOTED: u8 = 137;
const RESP_INSPECT: u8 = 138;

impl Request {
    fn tag(&self) -> u8 {
        match self {
            Request::Mount { .. } => REQ_MOUNT,
            Request::Alloc { .. } => REQ_ALLOC,
            Request::Free { .. } => REQ_FREE,
            Request::OpenStaging => REQ_OPEN_STAGING,
            Request::Report { .. } => REQ_REPORT,
            Request::FlushRange { .. } => REQ_FLUSH_RANGE,
            Request::Invalidate { .. } => REQ_INVALIDATE,
            Request::QueryDurable { .. } => REQ_QUERY_DURABLE,
            Request::Promote { .. } => REQ_PROMOTE,
            Request::QueryReplica => REQ_QUERY_REPLICA,
            Request::Inspect => REQ_INSPECT,
        }
    }

    /// Encodes into `buf` as `[tag][trace ctx][fields]`, capturing the
    /// calling thread's trace context — encode happens on the issuing
    /// client thread, so the op's trace id rides the request for free.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let ctx = TraceCtx::current();
        buf.put_u8(self.tag());
        buf.put_u64_le(ctx.trace);
        buf.put_u64_le(ctx.parent);
        match self {
            Request::OpenStaging => {}
            Request::Mount { tenant } => {
                let name = tenant.as_bytes();
                let n = name.len().min(MAX_TENANT);
                buf.put_u16_le(n as u16);
                buf.put_slice(&name[..n]);
            }
            Request::Alloc { size } => buf.put_u64_le(*size),
            Request::Free { addr } => buf.put_u64_le(*addr),
            Request::Report { entries } => {
                buf.put_u16_le(entries.len().min(MAX_REPORT) as u16);
                for e in entries.iter().take(MAX_REPORT) {
                    buf.put_u64_le(e.addr);
                    buf.put_u32_le(e.count);
                    buf.put_u8(e.wrote as u8);
                }
            }
            Request::FlushRange { addr, len } => {
                buf.put_u64_le(*addr);
                buf.put_u64_le(*len);
            }
            Request::Invalidate { addr } => buf.put_u64_le(*addr),
            Request::QueryDurable { client_id } => buf.put_u32_le(*client_id),
            Request::Promote { primary } => buf.put_u8(*primary),
            Request::QueryReplica => {}
            Request::Inspect => {}
        }
    }

    /// Decodes from `buf`, discarding the trace context.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] on truncated or unknown input.
    pub fn decode(buf: &[u8]) -> Result<Request, GengarError> {
        Self::decode_traced(buf).map(|(req, _)| req)
    }

    /// Decodes from `buf`, returning the request and the trace context of
    /// the client op that issued it.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] on truncated or unknown input.
    pub fn decode_traced(mut buf: &[u8]) -> Result<(Request, TraceCtx), GengarError> {
        let malformed = GengarError::ProtocolViolation("malformed request");
        if buf.is_empty() {
            return Err(malformed);
        }
        let tag = buf.get_u8();
        if buf.remaining() < TRACE_CTX_BYTES {
            return Err(malformed);
        }
        let ctx = TraceCtx {
            trace: buf.get_u64_le(),
            parent: buf.get_u64_le(),
        };
        let req = match tag {
            REQ_MOUNT => {
                if buf.remaining() < 2 {
                    return Err(malformed);
                }
                let n = buf.get_u16_le() as usize;
                if n > MAX_TENANT || buf.remaining() < n {
                    return Err(malformed);
                }
                let mut name = vec![0u8; n];
                buf.copy_to_slice(&mut name);
                let tenant = String::from_utf8(name)
                    .map_err(|_| GengarError::ProtocolViolation("tenant name not utf-8"))?;
                Request::Mount { tenant }
            }
            REQ_ALLOC => {
                if buf.remaining() < 8 {
                    return Err(malformed);
                }
                Request::Alloc {
                    size: buf.get_u64_le(),
                }
            }
            REQ_FREE => {
                if buf.remaining() < 8 {
                    return Err(malformed);
                }
                Request::Free {
                    addr: buf.get_u64_le(),
                }
            }
            REQ_OPEN_STAGING => Request::OpenStaging,
            REQ_REPORT => {
                if buf.remaining() < 2 {
                    return Err(malformed);
                }
                let n = buf.get_u16_le() as usize;
                if n > MAX_REPORT || buf.remaining() < n * 13 {
                    return Err(malformed);
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(AccessEntry {
                        addr: buf.get_u64_le(),
                        count: buf.get_u32_le(),
                        wrote: buf.get_u8() != 0,
                    });
                }
                Request::Report { entries }
            }
            REQ_FLUSH_RANGE => {
                if buf.remaining() < 16 {
                    return Err(malformed);
                }
                Request::FlushRange {
                    addr: buf.get_u64_le(),
                    len: buf.get_u64_le(),
                }
            }
            REQ_INVALIDATE => {
                if buf.remaining() < 8 {
                    return Err(malformed);
                }
                Request::Invalidate {
                    addr: buf.get_u64_le(),
                }
            }
            REQ_QUERY_DURABLE => {
                if buf.remaining() < 4 {
                    return Err(malformed);
                }
                Request::QueryDurable {
                    client_id: buf.get_u32_le(),
                }
            }
            REQ_PROMOTE => {
                if buf.remaining() < 1 {
                    return Err(malformed);
                }
                Request::Promote {
                    primary: buf.get_u8(),
                }
            }
            REQ_QUERY_REPLICA => Request::QueryReplica,
            REQ_INSPECT => Request::Inspect,
            _ => return Err(GengarError::ProtocolViolation("unknown request opcode")),
        };
        Ok((req, ctx))
    }
}

impl Response {
    /// Encodes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Mount(m) => {
                buf.put_u8(RESP_MOUNT);
                buf.put_u8(m.server_id);
                buf.put_u32_le(m.nvm_rkey);
                buf.put_u32_le(m.cache_rkey);
                buf.put_u32_le(m.staging_rkey);
                buf.put_u32_le(m.ctl_rkey);
                buf.put_u64_le(m.nvm_capacity);
                buf.put_u8(m.enable_cache as u8);
                buf.put_u8(m.enable_proxy as u8);
                buf.put_u64_le(m.slot_payload);
                buf.put_u32_le(m.slots_per_ring);
                buf.put_u32_le(m.shadow_rkey);
                buf.put_u8(m.backup);
            }
            Response::Alloc { addr } => {
                buf.put_u8(RESP_ALLOC);
                buf.put_u64_le(*addr);
            }
            Response::Staging {
                client_id,
                ring_offset,
            } => {
                buf.put_u8(RESP_STAGING);
                buf.put_u32_le(*client_id);
                buf.put_u64_le(*ring_offset);
            }
            Response::Report { remaps } => {
                buf.put_u8(RESP_REPORT);
                buf.put_u16_le(remaps.len().min(MAX_REPORT) as u16);
                for r in remaps.iter().take(MAX_REPORT) {
                    buf.put_u64_le(r.addr);
                    buf.put_u64_le(r.cache_addr);
                }
            }
            Response::Durable { seq } => {
                buf.put_u8(RESP_DURABLE);
                buf.put_u64_le(*seq);
            }
            Response::Ok => buf.put_u8(RESP_OK),
            Response::Replica { backup } => {
                buf.put_u8(RESP_REPLICA);
                buf.put_u8(*backup);
            }
            Response::Promoted { replayed } => {
                buf.put_u8(RESP_PROMOTED);
                buf.put_u64_le(*replayed);
            }
            Response::Inspect { json } => {
                buf.put_u8(RESP_INSPECT);
                // Backstop: truncate on a char boundary so an oversized
                // document yields a short-but-valid UTF-8 payload instead
                // of overflowing the RPC slot.
                let mut n = json.len().min(MAX_INSPECT_JSON);
                while n > 0 && !json.is_char_boundary(n) {
                    n -= 1;
                }
                buf.put_u32_le(n as u32);
                buf.put_slice(&json.as_bytes()[..n]);
            }
            Response::Err { code } => {
                buf.put_u8(RESP_ERR);
                buf.put_u16_le(*code);
            }
        }
    }

    /// Decodes from `buf`.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] on truncated or unknown input.
    pub fn decode(mut buf: &[u8]) -> Result<Response, GengarError> {
        let malformed = GengarError::ProtocolViolation("malformed response");
        if buf.is_empty() {
            return Err(malformed);
        }
        let tag = buf.get_u8();
        let resp = match tag {
            RESP_MOUNT => {
                if buf.remaining() < 1 + 16 + 8 + 2 + 12 + 5 {
                    return Err(malformed);
                }
                Response::Mount(MountInfo {
                    server_id: buf.get_u8(),
                    nvm_rkey: buf.get_u32_le(),
                    cache_rkey: buf.get_u32_le(),
                    staging_rkey: buf.get_u32_le(),
                    ctl_rkey: buf.get_u32_le(),
                    nvm_capacity: buf.get_u64_le(),
                    enable_cache: buf.get_u8() != 0,
                    enable_proxy: buf.get_u8() != 0,
                    slot_payload: buf.get_u64_le(),
                    slots_per_ring: buf.get_u32_le(),
                    shadow_rkey: buf.get_u32_le(),
                    backup: buf.get_u8(),
                })
            }
            RESP_ALLOC => {
                if buf.remaining() < 8 {
                    return Err(malformed);
                }
                Response::Alloc {
                    addr: buf.get_u64_le(),
                }
            }
            RESP_STAGING => {
                if buf.remaining() < 12 {
                    return Err(malformed);
                }
                Response::Staging {
                    client_id: buf.get_u32_le(),
                    ring_offset: buf.get_u64_le(),
                }
            }
            RESP_REPORT => {
                if buf.remaining() < 2 {
                    return Err(malformed);
                }
                let n = buf.get_u16_le() as usize;
                if n > MAX_REPORT || buf.remaining() < n * 16 {
                    return Err(malformed);
                }
                let mut remaps = Vec::with_capacity(n);
                for _ in 0..n {
                    remaps.push(RemapUpdate {
                        addr: buf.get_u64_le(),
                        cache_addr: buf.get_u64_le(),
                    });
                }
                Response::Report { remaps }
            }
            RESP_DURABLE => {
                if buf.remaining() < 8 {
                    return Err(malformed);
                }
                Response::Durable {
                    seq: buf.get_u64_le(),
                }
            }
            RESP_OK => Response::Ok,
            RESP_REPLICA => {
                if buf.remaining() < 1 {
                    return Err(malformed);
                }
                Response::Replica {
                    backup: buf.get_u8(),
                }
            }
            RESP_PROMOTED => {
                if buf.remaining() < 8 {
                    return Err(malformed);
                }
                Response::Promoted {
                    replayed: buf.get_u64_le(),
                }
            }
            RESP_INSPECT => {
                if buf.remaining() < 4 {
                    return Err(malformed);
                }
                let n = buf.get_u32_le() as usize;
                if n > MAX_INSPECT_JSON || buf.remaining() < n {
                    return Err(malformed);
                }
                let mut bytes = vec![0u8; n];
                buf.copy_to_slice(&mut bytes);
                let json = String::from_utf8(bytes)
                    .map_err(|_| GengarError::ProtocolViolation("inspect json not utf-8"))?;
                Response::Inspect { json }
            }
            RESP_ERR => {
                if buf.remaining() < 2 {
                    return Err(malformed);
                }
                Response::Err {
                    code: buf.get_u16_le(),
                }
            }
            _ => return Err(GengarError::ProtocolViolation("unknown response opcode")),
        };
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert!(buf.len() <= MAX_MSG);
        assert_eq!(Request::decode(&buf).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert!(buf.len() <= MAX_MSG);
        assert_eq!(Response::decode(&buf).unwrap(), r);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Mount {
            tenant: "default".to_owned(),
        });
        roundtrip_req(Request::Mount {
            tenant: String::new(),
        });
        roundtrip_req(Request::Alloc { size: 12345 });
        roundtrip_req(Request::Free { addr: u64::MAX / 3 });
        roundtrip_req(Request::OpenStaging);
        roundtrip_req(Request::Report {
            entries: vec![
                AccessEntry {
                    addr: 7,
                    count: 3,
                    wrote: true,
                },
                AccessEntry {
                    addr: 9,
                    count: 1,
                    wrote: false,
                },
            ],
        });
        roundtrip_req(Request::FlushRange { addr: 64, len: 128 });
        roundtrip_req(Request::Invalidate { addr: 99 });
        roundtrip_req(Request::QueryDurable { client_id: 4 });
        roundtrip_req(Request::Promote { primary: 3 });
        roundtrip_req(Request::QueryReplica);
        roundtrip_req(Request::Inspect);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Mount(MountInfo {
            server_id: 2,
            nvm_rkey: 10,
            cache_rkey: 11,
            staging_rkey: 12,
            ctl_rkey: 13,
            nvm_capacity: 1 << 30,
            enable_cache: true,
            enable_proxy: false,
            slot_payload: 4064,
            slots_per_ring: 16,
            shadow_rkey: 14,
            backup: 1,
        }));
        roundtrip_resp(Response::Alloc { addr: 42 });
        roundtrip_resp(Response::Staging {
            client_id: 3,
            ring_offset: 1 << 20,
        });
        roundtrip_resp(Response::Report {
            remaps: vec![
                RemapUpdate {
                    addr: 1,
                    cache_addr: 2,
                },
                RemapUpdate {
                    addr: 3,
                    cache_addr: 0,
                },
            ],
        });
        roundtrip_resp(Response::Durable { seq: 77 });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Replica { backup: NO_BACKUP });
        roundtrip_resp(Response::Replica { backup: 2 });
        roundtrip_resp(Response::Promoted { replayed: 12 });
        roundtrip_resp(Response::Inspect {
            json: String::new(),
        });
        roundtrip_resp(Response::Inspect {
            json: "{\"v\":1,\"overall\":\"healthy\"}".to_owned(),
        });
        roundtrip_resp(Response::Err {
            code: err_code::OOM,
        });
    }

    #[test]
    fn max_inspect_json_fits_and_oversize_truncates_on_boundary() {
        // Exactly at the budget: round-trips whole.
        let json = "x".repeat(MAX_INSPECT_JSON);
        let mut buf = Vec::new();
        Response::Inspect { json: json.clone() }.encode(&mut buf);
        assert_eq!(buf.len(), MAX_MSG);
        assert_eq!(Response::decode(&buf).unwrap(), Response::Inspect { json });

        // Over budget with a multi-byte char straddling the cut: the
        // encoder truncates back to a char boundary, so the payload stays
        // valid UTF-8 and within MAX_MSG.
        let mut json = "x".repeat(MAX_INSPECT_JSON - 1);
        json.push('é'); // 2 bytes: one past the budget
        json.push_str("tail");
        let mut buf = Vec::new();
        Response::Inspect { json }.encode(&mut buf);
        assert!(buf.len() <= MAX_MSG);
        match Response::decode(&buf).unwrap() {
            Response::Inspect { json } => {
                assert_eq!(json.len(), MAX_INSPECT_JSON - 1);
                assert!(json.chars().all(|c| c == 'x'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_inspect_rejected() {
        let mut buf = Vec::new();
        Response::Inspect {
            json: "{\"v\":1}".to_owned(),
        }
        .encode(&mut buf);
        assert!(Response::decode(&buf[..buf.len() - 2]).is_err());
        assert!(Response::decode(&[RESP_INSPECT, 1, 0]).is_err());
        // A length prefix past the budget is rejected even if bytes follow.
        let mut bad = vec![RESP_INSPECT];
        bad.extend_from_slice(&(MAX_INSPECT_JSON as u32 + 1).to_le_bytes());
        bad.extend(std::iter::repeat_n(b'x', MAX_INSPECT_JSON + 1));
        assert!(Response::decode(&bad).is_err());
        // Non-UTF-8 payload is rejected.
        let mut bad = vec![RESP_INSPECT];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Response::decode(&bad).is_err());
    }

    #[test]
    fn full_report_fits_in_max_msg() {
        let entries = vec![
            AccessEntry {
                addr: u64::MAX,
                count: u32::MAX,
                wrote: true,
            };
            MAX_REPORT
        ];
        let mut buf = Vec::new();
        Request::Report { entries }.encode(&mut buf);
        assert!(buf.len() <= MAX_MSG);
        let remaps = vec![
            RemapUpdate {
                addr: u64::MAX,
                cache_addr: u64::MAX,
            };
            MAX_REPORT
        ];
        let mut buf = Vec::new();
        Response::Report { remaps }.encode(&mut buf);
        assert!(buf.len() <= MAX_MSG);
    }

    #[test]
    fn truncated_input_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[REQ_ALLOC, 1, 2]).is_err());
        assert!(Response::decode(&[RESP_ALLOC]).is_err());
        assert!(Request::decode(&[250]).is_err());
        assert!(Response::decode(&[250]).is_err());
    }

    #[test]
    fn request_carries_trace_context() {
        let mut buf = Vec::new();
        {
            let _g =
                gengar_telemetry::adopt(gengar_telemetry::TraceId(42), gengar_telemetry::SpanId(7));
            Request::Alloc { size: 1 }.encode(&mut buf);
        }
        let (req, ctx) = Request::decode_traced(&buf).unwrap();
        assert_eq!(req, Request::Alloc { size: 1 });
        assert_eq!(
            ctx,
            TraceCtx {
                trace: 42,
                parent: 7
            }
        );
        // An untraced caller encodes the zero context.
        let mut buf = Vec::new();
        Request::OpenStaging.encode(&mut buf);
        let (_, ctx) = Request::decode_traced(&buf).unwrap();
        assert_eq!(ctx, TraceCtx::default());
    }

    #[test]
    fn oversized_tenant_truncated_on_encode() {
        let mut buf = Vec::new();
        Request::Mount {
            tenant: "t".repeat(MAX_TENANT + 30),
        }
        .encode(&mut buf);
        match Request::decode(&buf).unwrap() {
            Request::Mount { tenant } => assert_eq!(tenant.len(), MAX_TENANT),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn throttled_code_maps_to_throttled_error() {
        assert!(matches!(
            error_for_code(err_code::THROTTLED, 0),
            GengarError::Throttled
        ));
    }

    #[test]
    fn error_codes_map() {
        assert!(matches!(
            error_for_code(err_code::OOM, 10),
            GengarError::OutOfMemory { requested: 10 }
        ));
        assert!(matches!(
            error_for_code(err_code::TOO_LARGE, 10),
            GengarError::ObjectTooLarge { .. }
        ));
        assert!(matches!(
            error_for_code(999, 0),
            GengarError::ProtocolViolation(_)
        ));
    }
}
