//! The proxy write protocol (client side).
//!
//! RDMA writes straight to remote NVM pay the NVM write/persist cost on the
//! critical path. Gengar redesigns the write protocol around a *proxy*:
//! the client places the write record into a per-client staging ring in the
//! server's ADR-protected DRAM with a single WRITE_WITH_IMM (durable on
//! completion), and the server's proxy thread drains records to NVM in the
//! background. Client-visible write latency drops from
//! `WRITE + flush-RPC + NVM persist` to one DRAM-speed round trip.
//!
//! Ring layout: ring `i` occupies `[i * ring_bytes, (i+1) * ring_bytes)` of
//! the staging region; each ring has [`SLOTS_PER_RING`] fixed slots of
//! `RECORD_HEADER + slot_payload` bytes. The immediate carries the slot
//! index. Flow control: the client tracks in-flight slots and consults the
//! server's drained-watermark word (one-sided READ of the control region)
//! when the ring is full.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use gengar_rdma::{Endpoint, MemoryRegion, Payload, PendingOps, RKey, RemoteAddr, SendOp, Sge};
use gengar_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, TelemetryConfig, Tracer};

use crate::error::GengarError;
use crate::layout::{checksum, encode_record_header, RECORD_HEADER};

/// Slots per staging ring.
pub const SLOTS_PER_RING: u32 = 16;

/// Default patience of [`StagingWriter::wait_drained`]. A healthy proxy
/// drains a slot in microseconds; a watermark that has not moved for this
/// long means the server is gone or the drain threads are stopped, and the
/// wait reports [`gengar_rdma::RdmaError::Timeout`] instead of hanging.
pub const DEFAULT_DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// Ring geometry shared between client and server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLayout {
    /// Payload capacity of one slot.
    pub slot_payload: u64,
    /// Slots per ring.
    pub slots: u32,
}

impl RingLayout {
    /// Derives the layout from a configured per-ring byte budget.
    pub fn for_ring_bytes(ring_bytes: u64) -> Self {
        let slot_bytes = (ring_bytes / SLOTS_PER_RING as u64).max(RECORD_HEADER + 64);
        RingLayout {
            slot_payload: slot_bytes - RECORD_HEADER,
            slots: SLOTS_PER_RING,
        }
    }

    /// Bytes of one slot (header + payload).
    pub fn slot_bytes(&self) -> u64 {
        RECORD_HEADER + self.slot_payload
    }

    /// Bytes of one ring.
    pub fn ring_bytes(&self) -> u64 {
        self.slot_bytes() * self.slots as u64
    }

    /// Offset of slot `idx` within the ring.
    pub fn slot_offset(&self, idx: u32) -> u64 {
        self.slot_bytes() * idx as u64
    }
}

/// A staged-write doorbell batch in flight: posted with
/// [`StagingWriter::stage_batch_begin`], polled with
/// [`StagingWriter::poll_flight`] and retired with
/// [`StagingWriter::stage_batch_finish`]. While a flight is open no other
/// staging may run on the same writer (the ring cursors are reserved for
/// it); the concurrent issue engine keeps one open flight per group.
#[derive(Debug)]
pub struct StagedFlight {
    pending: PendingOps,
    base_seq: u64,
    base_slot: u32,
    n: usize,
}

impl StagedFlight {
    /// Number of records in the flight.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty flight.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Client-side handle to its staging ring.
///
/// Not thread-safe: each client thread owns its own ring, mirroring how
/// each Gengar client owns its connection state.
#[derive(Debug)]
pub struct StagingWriter {
    /// Dedicated proxy queue pair to the server.
    ep: Endpoint,
    staging_rkey: RKey,
    ctl_rkey: RKey,
    ring_offset: u64,
    layout: RingLayout,
    client_id: u32,
    /// Local scratch MR used to gather records (and land watermark reads).
    scratch: std::sync::Arc<MemoryRegion>,
    /// Offset within the scratch MR reserved for this writer
    /// (`slot_bytes + 8` bytes: record staging + watermark landing pad).
    scratch_off: u64,
    next_slot: u32,
    next_seq: u64,
    in_flight: VecDeque<u64>, // sequence numbers, oldest first
    drained: u64,
    /// Patience of [`StagingWriter::wait_drained`] before it reports the
    /// drain as stalled.
    drain_deadline: Duration,
    /// Compact QoS tenant tag stamped into every record header so the
    /// server drain can account durable bytes per tenant (0 = QoS off).
    tenant_tag: u32,
    /// `proxy.*` handles: in-flight ring occupancy, staged-record count,
    /// ring-full stalls and staging latency.
    occupancy: GaugeHandle,
    staged: CounterHandle,
    ring_full_waits: CounterHandle,
    stage_ns: HistogramHandle,
}

impl StagingWriter {
    /// Creates a writer for ring `client_id` at `ring_offset` of the
    /// staging region.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ep: Endpoint,
        staging_rkey: RKey,
        ctl_rkey: RKey,
        ring_offset: u64,
        layout: RingLayout,
        client_id: u32,
        scratch: std::sync::Arc<MemoryRegion>,
        scratch_off: u64,
        telemetry: TelemetryConfig,
    ) -> Self {
        let tel = telemetry.handle();
        StagingWriter {
            ep,
            staging_rkey,
            ctl_rkey,
            ring_offset,
            layout,
            client_id,
            scratch,
            scratch_off,
            next_slot: 0,
            next_seq: 1,
            in_flight: VecDeque::new(),
            drained: 0,
            drain_deadline: DEFAULT_DRAIN_DEADLINE,
            tenant_tag: 0,
            occupancy: tel.gauge("proxy", "ring_occupancy"),
            staged: tel.counter("proxy", "staged_records"),
            ring_full_waits: tel.counter("proxy", "ring_full_waits"),
            stage_ns: tel.histogram("proxy", "stage_ns"),
        }
    }

    /// Largest payload a single staged write can carry.
    pub fn max_payload(&self) -> u64 {
        self.layout.slot_payload
    }

    /// The ring geometry this writer stages into.
    pub fn layout(&self) -> RingLayout {
        self.layout
    }

    /// The ring (client) id this writer stages into.
    pub fn client_id(&self) -> u32 {
        self.client_id
    }

    /// Sequence numbers staged but not yet observed drained, oldest first.
    pub fn in_flight(&self) -> impl Iterator<Item = u64> + '_ {
        self.in_flight.iter().copied()
    }

    /// Adjusts the patience of [`StagingWriter::wait_drained`].
    pub fn set_drain_deadline(&mut self, deadline: Duration) {
        self.drain_deadline = deadline;
    }

    /// Sets the QoS tenant tag stamped into subsequent record headers.
    pub fn set_tenant_tag(&mut self, tag: u32) {
        self.tenant_tag = tag;
    }

    /// Sequence number the next staged write will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest sequence number known drained (from the last watermark read).
    pub fn known_drained(&self) -> u64 {
        self.drained
    }

    /// Stages a durable write of `data` to raw global address `addr_raw`.
    /// Returns the record's sequence number. Durable when this returns.
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] if `data` exceeds the slot payload;
    /// transport failures as [`GengarError::Rdma`].
    pub fn stage_write(&mut self, addr_raw: u64, data: &[u8]) -> Result<u64, GengarError> {
        if data.len() as u64 > self.layout.slot_payload {
            return Err(GengarError::ObjectTooLarge {
                requested: data.len() as u64,
                max: self.layout.slot_payload,
            });
        }
        let _t = self.stage_ns.span();
        // Staging runs on the issuing client thread, so the op's trace
        // context is live here; the trace id also rides the record header
        // into the ring so the server's drain can join the same trace.
        let tracer = Tracer::global();
        let mut stage_span = tracer.span("proxy.stage");
        let trace = gengar_telemetry::current_context().0 .0;
        // Ring full: wait for the proxy to drain the oldest slot.
        while self.in_flight.len() >= self.layout.slots as usize {
            let _wait = tracer.span("proxy.ring_full_wait");
            self.ring_full_waits.inc();
            let oldest = *self.in_flight.front().expect("nonempty");
            self.wait_drained(oldest)?;
        }
        let seq = self.next_seq;
        let slot = self.next_slot;
        stage_span.set_detail(seq);

        // Gather the record in local scratch, then ship it with one
        // WRITE_WITH_IMM. The immediate names the slot.
        let mut header = [0u8; RECORD_HEADER as usize];
        encode_record_header(
            &mut header,
            seq,
            addr_raw,
            data.len() as u64,
            checksum(data),
            trace,
            self.tenant_tag,
        );
        self.scratch.region().write(self.scratch_off, &header)?;
        self.scratch
            .region()
            .write(self.scratch_off + RECORD_HEADER, data)?;
        let record_len = RECORD_HEADER + data.len() as u64;
        let remote = RemoteAddr::new(
            self.staging_rkey,
            self.ring_offset + self.layout.slot_offset(slot),
        );
        self.ep.write_with_imm(
            Payload::Sge(Sge::new(self.scratch.lkey(), self.scratch_off, record_len)),
            remote,
            slot,
        )?;

        self.in_flight.push_back(seq);
        self.staged.inc();
        self.occupancy.set(self.in_flight.len() as i64);
        self.next_seq += 1;
        self.next_slot = (self.next_slot + 1) % self.layout.slots;
        Ok(seq)
    }

    /// Stages a window of durable writes with one doorbell: every record
    /// is gathered into its own scratch lane (`gather_off`, caller-owned,
    /// inside this writer's scratch MR) and the whole list is posted as a
    /// single WRITE_WITH_IMM batch. Returns one result per item in order;
    /// `Ok(seq)` means that record is durably in its slot.
    ///
    /// Failure handling follows a prefix/hole rule. Let `k` be the last
    /// item that completed: the ring cursors advance by `k + 1` and every
    /// sequence number up to `k` — including failed holes — is tracked as
    /// in flight. Hole seqs retire automatically because the server's
    /// drained watermark stores each drained record's own (monotonically
    /// increasing) sequence number, so a later record's drain covers the
    /// hole. Items after `k` never occupied their slots: a retry reuses
    /// the same slots with fresh sequence numbers.
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] if any payload exceeds the slot
    /// capacity (nothing staged); transport failures of the post itself
    /// as [`GengarError::Rdma`] (nothing staged). Per-record transport
    /// failures land in the inner results.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `items` fits the ring (`len <= slots`); the
    /// client's window planner guarantees this.
    pub fn stage_write_batch(
        &mut self,
        items: &[(u64, &[u8], u64)],
    ) -> Result<Vec<Result<u64, GengarError>>, GengarError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let _t = self.stage_ns.span();
        // Ring must have room for the whole window before anything posts.
        let tracer = Tracer::global();
        while self.ring_room() < items.len() {
            let _wait = tracer.span("proxy.ring_full_wait");
            self.ring_full_waits.inc();
            let oldest = *self.in_flight.front().expect("nonempty");
            self.wait_drained(oldest)?;
        }
        let mut flight = self.stage_batch_begin(items)?;
        while !self.poll_flight(&mut flight) {
            if let Some(wake) = self.flight_done_wake(&flight) {
                gengar_hybridmem::latency::spin_until(wake);
            }
        }
        Ok(self.stage_batch_finish(flight))
    }

    /// Slots currently free in the ring (as of the last watermark read).
    /// [`StagingWriter::stage_batch_begin`] requires room for the whole
    /// batch; call [`StagingWriter::refresh_drained`] to retire slots.
    pub fn ring_room(&self) -> usize {
        self.layout.slots as usize - self.in_flight.len()
    }

    /// Counts one ring-full stall (`proxy.ring_full_waits`). The blocking
    /// staging paths count their own waits; the concurrent issue engine,
    /// which parks instead of blocking, calls this when it first finds the
    /// ring too full for a flight.
    pub fn note_ring_full(&self) {
        self.ring_full_waits.inc();
    }

    /// Posts a window of staged writes as one doorbell without waiting
    /// for completions. The ring cursors stay put until
    /// [`StagingWriter::stage_batch_finish`] learns which prefix of the
    /// flight made it; until then no other staging may run on this writer.
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] if any payload exceeds the slot
    /// capacity (nothing staged); [`GengarError::ProtocolViolation`] if
    /// the ring lacks room (callers check [`StagingWriter::ring_room`]);
    /// transport failures of the post itself as [`GengarError::Rdma`]
    /// (nothing staged).
    pub fn stage_batch_begin(
        &mut self,
        items: &[(u64, &[u8], u64)],
    ) -> Result<StagedFlight, GengarError> {
        debug_assert!(items.len() <= self.layout.slots as usize);
        for &(_, data, _) in items {
            if data.len() as u64 > self.layout.slot_payload {
                return Err(GengarError::ObjectTooLarge {
                    requested: data.len() as u64,
                    max: self.layout.slot_payload,
                });
            }
        }
        if self.ring_room() < items.len() {
            return Err(GengarError::ProtocolViolation(
                "staging ring lacks room for the batch",
            ));
        }
        let tracer = Tracer::global();
        let mut stage_span = tracer.span("proxy.stage_batch");
        stage_span.set_detail(items.len() as u64);
        let trace = gengar_telemetry::current_context().0 .0;

        let mut ops = Vec::with_capacity(items.len());
        for (i, &(addr_raw, data, gather_off)) in items.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            let slot = (self.next_slot + i as u32) % self.layout.slots;
            let mut header = [0u8; RECORD_HEADER as usize];
            encode_record_header(
                &mut header,
                seq,
                addr_raw,
                data.len() as u64,
                checksum(data),
                trace,
                self.tenant_tag,
            );
            self.scratch.region().write(gather_off, &header)?;
            self.scratch
                .region()
                .write(gather_off + RECORD_HEADER, data)?;
            ops.push(SendOp::Write {
                payload: Payload::Sge(Sge::new(
                    self.scratch.lkey(),
                    gather_off,
                    RECORD_HEADER + data.len() as u64,
                )),
                remote: RemoteAddr::new(
                    self.staging_rkey,
                    self.ring_offset + self.layout.slot_offset(slot),
                ),
                imm: Some(slot),
            });
        }
        let pending = self.ep.post_many(ops)?;
        Ok(StagedFlight {
            pending,
            base_seq: self.next_seq,
            base_slot: self.next_slot,
            n: items.len(),
        })
    }

    /// One non-blocking harvest pass over a flight's completions. Returns
    /// `true` once every record has an outcome.
    pub fn poll_flight(&mut self, flight: &mut StagedFlight) -> bool {
        self.ep.poll_pending(&mut flight.pending)
    }

    /// When to next poll a still-pending flight; `None` once it is done.
    pub fn flight_next_wake(&self, flight: &StagedFlight) -> Option<Instant> {
        self.ep.pending_next_wake(&flight.pending)
    }

    /// When a still-pending flight is expected to be *fully* harvestable;
    /// `None` once it is done. Flights settle as a unit
    /// ([`StagingWriter::stage_batch_finish`]), so waiters sleep until
    /// this instead of waking per staggered completion.
    pub fn flight_done_wake(&self, flight: &StagedFlight) -> Option<Instant> {
        self.ep.pending_done_wake(&flight.pending)
    }

    /// Retires a completed flight: applies the prefix/hole rule to the
    /// ring cursors and returns one result per record in order; `Ok(seq)`
    /// means that record is durably in its slot.
    ///
    /// Failure handling: let `k` be the last record that completed. The
    /// ring cursors advance by `k + 1` and every sequence number up to
    /// `k` — including failed holes — is tracked as in flight. Hole seqs
    /// retire automatically because the server's drained watermark stores
    /// each drained record's own (monotonically increasing) sequence
    /// number, so a later record's drain covers the hole. Records after
    /// `k` never occupied their slots: a retry reuses the same slots with
    /// fresh sequence numbers.
    ///
    /// # Panics
    ///
    /// Debug-asserts the flight was opened by this writer and is done.
    pub fn stage_batch_finish(&mut self, flight: StagedFlight) -> Vec<Result<u64, GengarError>> {
        debug_assert!(flight.pending.is_done());
        debug_assert_eq!(flight.base_seq, self.next_seq);
        debug_assert_eq!(flight.base_slot, self.next_slot);
        let completions = flight.pending.into_results();
        let mut out = Vec::with_capacity(flight.n);
        let mut last_ok: Option<usize> = None;
        for (i, wc) in completions.into_iter().enumerate() {
            match wc {
                Ok(_) => {
                    last_ok = Some(i);
                    out.push(Ok(self.next_seq + i as u64));
                }
                Err(e) => out.push(Err(GengarError::Rdma(e))),
            }
        }
        if let Some(k) = last_ok {
            for i in 0..=k {
                self.in_flight.push_back(self.next_seq + i as u64);
            }
            self.staged
                .add(out[..=k].iter().filter(|r| r.is_ok()).count() as u64);
            self.next_seq += k as u64 + 1;
            self.next_slot = (self.next_slot + k as u32 + 1) % self.layout.slots;
        }
        self.occupancy.set(self.in_flight.len() as i64);
        out
    }

    /// Reads the server's drained watermark for this ring (one-sided READ
    /// of the control region) and retires in-flight records it covers.
    ///
    /// # Errors
    ///
    /// Transport failures as [`GengarError::Rdma`].
    pub fn refresh_drained(&mut self) -> Result<u64, GengarError> {
        let pad = self.scratch_off + self.layout.slot_bytes();
        self.ep.read(
            Sge::new(self.scratch.lkey(), pad, 8),
            RemoteAddr::new(self.ctl_rkey, self.client_id as u64 * 8),
        )?;
        let mut word = [0u8; 8];
        self.scratch.region().read(pad, &mut word)?;
        self.drained = u64::from_le_bytes(word);
        while self
            .in_flight
            .front()
            .is_some_and(|&seq| seq <= self.drained)
        {
            self.in_flight.pop_front();
        }
        self.occupancy.set(self.in_flight.len() as i64);
        Ok(self.drained)
    }

    /// Blocks until the record with sequence `seq` has been drained to NVM.
    ///
    /// Waits *politely*: after each unsuccessful watermark check the thread
    /// sleeps with growing backoff. Flow-control stalls mean the proxy is
    /// behind; burning the CPU here would only starve it further (clients
    /// and servers share cores in the emulation).
    ///
    /// # Errors
    ///
    /// Transport failures as [`GengarError::Rdma`];
    /// [`gengar_rdma::RdmaError::Timeout`] if the watermark makes no
    /// progress for the drain deadline (stalled or dead proxy) — the wait
    /// never hangs forever.
    pub fn wait_drained(&mut self, seq: u64) -> Result<(), GengarError> {
        let mut sleep_us = 5u64;
        let mut last_progress = Instant::now();
        let mut last_seen = self.drained;
        while self.drained < seq {
            self.refresh_drained()?;
            if self.drained > last_seen {
                last_seen = self.drained;
                last_progress = Instant::now();
            }
            if self.drained < seq {
                if last_progress.elapsed() >= self.drain_deadline {
                    return Err(GengarError::Rdma(gengar_rdma::RdmaError::Timeout));
                }
                std::thread::sleep(Duration::from_micros(sleep_us));
                sleep_us = (sleep_us * 2).min(200);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_geometry() {
        let l = RingLayout::for_ring_bytes(64 << 10);
        assert_eq!(l.slots, SLOTS_PER_RING);
        assert_eq!(l.slot_bytes(), 4096);
        assert_eq!(l.slot_payload, 4096 - RECORD_HEADER);
        assert_eq!(l.ring_bytes(), 64 << 10);
        assert_eq!(l.slot_offset(0), 0);
        assert_eq!(l.slot_offset(3), 3 * 4096);
    }

    #[test]
    fn tiny_ring_budget_still_usable() {
        let l = RingLayout::for_ring_bytes(100);
        assert!(l.slot_payload >= 64);
    }

    #[test]
    fn tiny_ring_bytes_clamp_keeps_slots_addressable() {
        // Budgets below one minimal slot per ring still produce a layout
        // whose slot arithmetic is self-consistent: every slot fits inside
        // ring_bytes() and the clamp floor holds for any budget.
        for ring_bytes in [0, 1, 63, 64, 100, RECORD_HEADER, RECORD_HEADER + 64, 4096] {
            let l = RingLayout::for_ring_bytes(ring_bytes);
            assert!(l.slot_bytes() >= RECORD_HEADER + 64, "budget {ring_bytes}");
            assert_eq!(l.slots, SLOTS_PER_RING);
            let last = l.slot_offset(l.slots - 1);
            assert_eq!(last + l.slot_bytes(), l.ring_bytes());
        }
    }

    #[test]
    fn mount_info_round_trips_the_server_layout() {
        // The server derives its geometry once; the mount response carries
        // it and the client reconstructs the identical layout.
        let server_side = RingLayout::for_ring_bytes(100);
        let mount = crate::proto::MountInfo {
            server_id: 1,
            nvm_rkey: 0,
            cache_rkey: 0,
            staging_rkey: 0,
            ctl_rkey: 0,
            nvm_capacity: 0,
            enable_cache: true,
            enable_proxy: true,
            slot_payload: server_side.slot_payload,
            slots_per_ring: server_side.slots,
        };
        assert_eq!(mount.ring_layout(), server_side);
    }
}
