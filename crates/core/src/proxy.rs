//! The proxy write protocol (client side).
//!
//! RDMA writes straight to remote NVM pay the NVM write/persist cost on the
//! critical path. Gengar redesigns the write protocol around a *proxy*:
//! the client places the write record into a per-client staging ring in the
//! server's ADR-protected DRAM with a single WRITE_WITH_IMM (durable on
//! completion), and the server's proxy thread drains records to NVM in the
//! background. Client-visible write latency drops from
//! `WRITE + flush-RPC + NVM persist` to one DRAM-speed round trip.
//!
//! Ring layout: ring `i` occupies `[i * ring_bytes, (i+1) * ring_bytes)` of
//! the staging region; each ring has [`SLOTS_PER_RING`] fixed slots of
//! `RECORD_HEADER + slot_payload` bytes. The immediate carries the slot
//! index. Flow control: the client tracks in-flight slots and consults the
//! server's drained-watermark word (one-sided READ of the control region)
//! when the ring is full.
//!
//! **Replication fan-out.** With primary–backup replication the writer
//! carries an optional [`MirrorLane`]: a second ring, on the primary's
//! backup server, with identical geometry and lock-stepped cursors. Every
//! record is gathered once in scratch and shipped twice — the mirror WR
//! rides the same doorbell window, so the replication tax is one extra WR
//! per lane, not an extra round trip — and a record is only acked once
//! *both* lanes completed. Slot reuse waits for both drained watermarks,
//! so at any instant every settled record is either already durable on
//! both sides or still intact in the mirror ring, which is exactly what
//! the backup replays at promotion. A mirror-lane failure drops the lane
//! and acks on the primary alone (availability over redundancy; the
//! client re-establishes a mirror in the background), and after a
//! failover the lane roles invert: the mirror becomes the only target.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use gengar_rdma::{Endpoint, MemoryRegion, Payload, PendingOps, RKey, RemoteAddr, SendOp, Sge};
use gengar_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, TelemetryConfig, Tracer};

use crate::error::GengarError;
use crate::layout::{checksum, encode_record_header, RECORD_HEADER};

/// Slots per staging ring.
pub const SLOTS_PER_RING: u32 = 16;

/// Default patience of [`StagingWriter::wait_drained`]. A healthy proxy
/// drains a slot in microseconds; a watermark that has not moved for this
/// long means the server is gone or the drain threads are stopped, and the
/// wait reports [`gengar_rdma::RdmaError::Timeout`] instead of hanging.
pub const DEFAULT_DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// Ring geometry shared between client and server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLayout {
    /// Payload capacity of one slot.
    pub slot_payload: u64,
    /// Slots per ring.
    pub slots: u32,
}

impl RingLayout {
    /// Derives the layout from a configured per-ring byte budget.
    pub fn for_ring_bytes(ring_bytes: u64) -> Self {
        let slot_bytes = (ring_bytes / SLOTS_PER_RING as u64).max(RECORD_HEADER + 64);
        RingLayout {
            slot_payload: slot_bytes - RECORD_HEADER,
            slots: SLOTS_PER_RING,
        }
    }

    /// Bytes of one slot (header + payload).
    pub fn slot_bytes(&self) -> u64 {
        RECORD_HEADER + self.slot_payload
    }

    /// Bytes of one ring.
    pub fn ring_bytes(&self) -> u64 {
        self.slot_bytes() * self.slots as u64
    }

    /// Offset of slot `idx` within the ring.
    pub fn slot_offset(&self, idx: u32) -> u64 {
        self.slot_bytes() * idx as u64
    }
}

/// Client side of a mirror lane: the backup half of the staged-write
/// fan-out. Built from a [`crate::server::MirrorChannel`] plus the rkeys
/// the client already holds from the backup's mount.
#[derive(Debug)]
pub struct MirrorLane {
    /// Dedicated proxy queue pair to the backup server.
    pub ep: Endpoint,
    /// The backup's staging-region rkey.
    pub staging_rkey: RKey,
    /// The backup's control-region rkey (mirror drained watermark).
    pub ctl_rkey: RKey,
    /// Byte offset of the mirror ring within the backup's staging region.
    pub ring_offset: u64,
    /// The mirror ring's client id on the backup.
    pub client_id: u32,
    /// Replica epoch stamped into every record staged under this lane.
    pub epoch: u32,
    /// Highest sequence number that predates this lane: records at or
    /// below it were never mirrored, so the mirror watermark does not
    /// gate their retirement. Zero for a lane established at connect
    /// time; `next_seq - 1` for one re-established mid-stream.
    pub floor: u64,
}

/// A staged-write doorbell batch in flight: posted with
/// [`StagingWriter::stage_batch_begin`], polled with
/// [`StagingWriter::poll_flight`] and retired with
/// [`StagingWriter::stage_batch_finish`]. While a flight is open no other
/// staging may run on the same writer (the ring cursors are reserved for
/// it); the concurrent issue engine keeps one open flight per group.
#[derive(Debug)]
pub struct StagedFlight {
    /// Primary-lane completions (`None` after a failover: the primary is
    /// gone and the mirror lane is the only target).
    pending: Option<PendingOps>,
    /// Mirror-lane completions (`None` when unreplicated).
    mirror_pending: Option<PendingOps>,
    base_seq: u64,
    base_slot: u32,
    n: usize,
}

impl StagedFlight {
    /// Number of records in the flight.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty flight.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Client-side handle to its staging ring.
///
/// Not thread-safe: each client thread owns its own ring, mirroring how
/// each Gengar client owns its connection state.
#[derive(Debug)]
pub struct StagingWriter {
    /// Dedicated proxy queue pair to the server.
    ep: Endpoint,
    staging_rkey: RKey,
    ctl_rkey: RKey,
    ring_offset: u64,
    layout: RingLayout,
    client_id: u32,
    /// Local scratch MR used to gather records (and land watermark reads).
    scratch: std::sync::Arc<MemoryRegion>,
    /// Offset within the scratch MR reserved for this writer
    /// (`slot_bytes + 16` bytes: record staging + primary and mirror
    /// watermark landing pads).
    scratch_off: u64,
    next_slot: u32,
    next_seq: u64,
    in_flight: VecDeque<u64>, // sequence numbers, oldest first
    drained: u64,
    /// The replication fan-out target, when this writer is mirrored.
    mirror: Option<MirrorLane>,
    /// Last mirror drained watermark read (meaningless without a mirror).
    mirror_drained: u64,
    /// After a failover the primary lane is dead: records post to the
    /// mirror alone and the mirror watermark is the only retire gate.
    primary_down: bool,
    /// Set when a mirror WR failed and the lane was dropped; the client
    /// harvests it to trigger background re-mirroring.
    mirror_lost: bool,
    /// Patience of [`StagingWriter::wait_drained`] before it reports the
    /// drain as stalled.
    drain_deadline: Duration,
    /// Compact QoS tenant tag stamped into every record header so the
    /// server drain can account durable bytes per tenant (0 = QoS off).
    tenant_tag: u32,
    /// `proxy.*` handles: in-flight ring occupancy, staged-record count,
    /// ring-full stalls and staging latency.
    occupancy: GaugeHandle,
    staged: CounterHandle,
    ring_full_waits: CounterHandle,
    stage_ns: HistogramHandle,
    /// `replica.*` handles: records staged but not yet drained by the
    /// mirror lane, and mirror lanes dropped after a failed WR or
    /// watermark read. Both feed the replication health component.
    mirror_lag: GaugeHandle,
    mirror_losses: CounterHandle,
}

impl StagingWriter {
    /// Creates a writer for ring `client_id` at `ring_offset` of the
    /// staging region.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ep: Endpoint,
        staging_rkey: RKey,
        ctl_rkey: RKey,
        ring_offset: u64,
        layout: RingLayout,
        client_id: u32,
        scratch: std::sync::Arc<MemoryRegion>,
        scratch_off: u64,
        telemetry: TelemetryConfig,
    ) -> Self {
        let tel = telemetry.handle();
        StagingWriter {
            ep,
            staging_rkey,
            ctl_rkey,
            ring_offset,
            layout,
            client_id,
            scratch,
            scratch_off,
            next_slot: 0,
            next_seq: 1,
            in_flight: VecDeque::new(),
            drained: 0,
            mirror: None,
            mirror_drained: 0,
            primary_down: false,
            mirror_lost: false,
            drain_deadline: DEFAULT_DRAIN_DEADLINE,
            tenant_tag: 0,
            occupancy: tel.gauge("proxy", "ring_occupancy"),
            staged: tel.counter("proxy", "staged_records"),
            ring_full_waits: tel.counter("proxy", "ring_full_waits"),
            stage_ns: tel.histogram("proxy", "stage_ns"),
            mirror_lag: tel.gauge("replica", "mirror_lag"),
            mirror_losses: tel.counter("replica", "mirror_losses"),
        }
    }

    /// Largest payload a single staged write can carry.
    pub fn max_payload(&self) -> u64 {
        self.layout.slot_payload
    }

    /// The ring geometry this writer stages into.
    pub fn layout(&self) -> RingLayout {
        self.layout
    }

    /// The ring (client) id this writer stages into.
    pub fn client_id(&self) -> u32 {
        self.client_id
    }

    /// Sequence numbers staged but not yet observed drained, oldest first.
    pub fn in_flight(&self) -> impl Iterator<Item = u64> + '_ {
        self.in_flight.iter().copied()
    }

    /// Adjusts the patience of [`StagingWriter::wait_drained`].
    pub fn set_drain_deadline(&mut self, deadline: Duration) {
        self.drain_deadline = deadline;
    }

    /// Sets the QoS tenant tag stamped into subsequent record headers.
    pub fn set_tenant_tag(&mut self, tag: u32) {
        self.tenant_tag = tag;
    }

    /// Attaches (or replaces) the mirror lane. Subsequent records are
    /// stamped with the lane's epoch and fanned out to both rings.
    pub fn set_mirror(&mut self, mut lane: MirrorLane) {
        // Records staged before this lane existed were never mirrored:
        // the mirror watermark must not gate their retirement.
        lane.floor = self.next_seq.saturating_sub(1);
        self.mirror_drained = 0;
        self.mirror_lost = false;
        self.mirror = Some(lane);
        self.mirror_lag.set(0);
    }

    /// Whether a mirror lane is currently attached.
    pub fn has_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// The attached mirror lane's replica epoch, if any.
    pub fn mirror_epoch(&self) -> Option<u32> {
        self.mirror.as_ref().map(|m| m.epoch)
    }

    /// The attached mirror lane's ring id on the backup, if any.
    pub fn mirror_client_id(&self) -> Option<u32> {
        self.mirror.as_ref().map(|m| m.client_id)
    }

    /// Switches the writer to failover mode: the primary lane is dead,
    /// records post to the mirror alone, and the mirror watermark is the
    /// only retire gate.
    ///
    /// # Errors
    ///
    /// [`gengar_rdma::RdmaError::NotConnected`] when no mirror lane is
    /// attached — an unreplicated writer has nowhere to fail over to.
    pub fn fail_over_to_mirror(&mut self) -> Result<(), GengarError> {
        if self.mirror.is_none() {
            return Err(GengarError::Rdma(gengar_rdma::RdmaError::NotConnected));
        }
        self.primary_down = true;
        Ok(())
    }

    /// Whether the writer is in failover mode (mirror lane only).
    pub fn is_primary_down(&self) -> bool {
        self.primary_down
    }

    /// Harvests (and clears) the mirror-lost flag. Set when a mirror WR
    /// failed and the lane was dropped mid-stream; the client uses it to
    /// re-establish a mirror in the background.
    pub fn take_mirror_lost(&mut self) -> bool {
        std::mem::take(&mut self.mirror_lost)
    }

    /// Drops the mirror lane after a failed WR or watermark read and
    /// records the loss for replication health.
    fn lose_mirror(&mut self) {
        self.mirror = None;
        self.mirror_lost = true;
        self.mirror_losses.inc();
        self.mirror_lag.set(0);
    }

    /// Publishes how many records the mirror lane still owes (staged but
    /// not mirror-drained) — the replication health lag signal.
    fn publish_mirror_lag(&self) {
        if let Some(m) = &self.mirror {
            let lag = (self.next_seq - 1).saturating_sub(self.mirror_drained.max(m.floor));
            self.mirror_lag.set(lag.min(i64::MAX as u64) as i64);
        }
    }

    /// The epoch stamped into record headers (0 = unreplicated).
    fn record_epoch(&self) -> u32 {
        self.mirror.as_ref().map_or(0, |m| m.epoch)
    }

    /// Highest sequence number every active lane has drained: the retire
    /// gate for slot reuse. A lane's watermark only constrains records it
    /// actually carried (the mirror's `floor` covers its blind spot).
    fn effective_drained(&self) -> u64 {
        let mut eff = u64::MAX;
        if !self.primary_down {
            eff = eff.min(self.drained);
        }
        if let Some(m) = &self.mirror {
            eff = eff.min(self.mirror_drained.max(m.floor));
        }
        if eff == u64::MAX {
            // No lane at all (unreplicated writer mid-failover): nothing
            // gates, but nothing drains either — report primary progress.
            eff = self.drained;
        }
        eff
    }

    /// Sequence number the next staged write will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest sequence number known drained by every active lane (from
    /// the last watermark read).
    pub fn known_drained(&self) -> u64 {
        self.effective_drained()
    }

    /// Stages a durable write of `data` to raw global address `addr_raw`.
    /// Returns the record's sequence number. Durable when this returns.
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] if `data` exceeds the slot payload;
    /// transport failures as [`GengarError::Rdma`].
    pub fn stage_write(&mut self, addr_raw: u64, data: &[u8]) -> Result<u64, GengarError> {
        if data.len() as u64 > self.layout.slot_payload {
            return Err(GengarError::ObjectTooLarge {
                requested: data.len() as u64,
                max: self.layout.slot_payload,
            });
        }
        let _t = self.stage_ns.span();
        // Staging runs on the issuing client thread, so the op's trace
        // context is live here; the trace id also rides the record header
        // into the ring so the server's drain can join the same trace.
        let tracer = Tracer::global();
        let mut stage_span = tracer.span("proxy.stage");
        let trace = gengar_telemetry::current_context().0 .0;
        // Ring full: wait for the proxy to drain the oldest slot.
        while self.in_flight.len() >= self.layout.slots as usize {
            let _wait = tracer.span("proxy.ring_full_wait");
            self.ring_full_waits.inc();
            let oldest = *self.in_flight.front().expect("nonempty");
            self.wait_drained(oldest)?;
        }
        let seq = self.next_seq;
        let slot = self.next_slot;
        stage_span.set_detail(seq);

        // Gather the record in local scratch, then ship it with one
        // WRITE_WITH_IMM. The immediate names the slot.
        let mut header = [0u8; RECORD_HEADER as usize];
        encode_record_header(
            &mut header,
            seq,
            addr_raw,
            data.len() as u64,
            checksum(data),
            trace,
            self.tenant_tag,
            self.record_epoch(),
        );
        self.scratch.region().write(self.scratch_off, &header)?;
        self.scratch
            .region()
            .write(self.scratch_off + RECORD_HEADER, data)?;
        let record_len = RECORD_HEADER + data.len() as u64;
        let sge = Sge::new(self.scratch.lkey(), self.scratch_off, record_len);
        let remote = RemoteAddr::new(
            self.staging_rkey,
            self.ring_offset + self.layout.slot_offset(slot),
        );
        // Fan-out: post the mirror WR first (non-blocking) so its
        // completion overlaps the primary's blocking round trip — the
        // replication tax is one extra WR, not a second round trip.
        let mirror_pending = match &self.mirror {
            Some(m) => {
                let op = SendOp::Write {
                    payload: Payload::Sge(sge),
                    remote: RemoteAddr::new(
                        m.staging_rkey,
                        m.ring_offset + self.layout.slot_offset(slot),
                    ),
                    imm: Some(slot),
                };
                match m.ep.post_many(vec![op]) {
                    Ok(p) => Some(p),
                    Err(_) if !self.primary_down => {
                        // Mirror post failed: drop the lane, ack on the
                        // primary alone (availability over redundancy).
                        self.lose_mirror();
                        None
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            None => {
                if self.primary_down {
                    // Failover with no mirror: nowhere to stage.
                    return Err(GengarError::Rdma(gengar_rdma::RdmaError::NotConnected));
                }
                None
            }
        };
        if !self.primary_down {
            if let Err(e) = self.ep.write_with_imm(Payload::Sge(sge), remote, slot) {
                // The record may still land in the mirror ring, which is
                // harmless: a retry restages the same seq into the same
                // slot, and the drain is idempotent per sequence number.
                if let Some(mut p) = mirror_pending {
                    if let Some(m) = &self.mirror {
                        while !m.ep.poll_pending(&mut p) {
                            if let Some(wake) = m.ep.pending_done_wake(&p) {
                                gengar_hybridmem::latency::spin_until(wake);
                            }
                        }
                    }
                }
                return Err(e.into());
            }
        }
        if let Some(mut p) = mirror_pending {
            let mirror_ok = {
                let m = self.mirror.as_ref().expect("mirror lane posted");
                while !m.ep.poll_pending(&mut p) {
                    if let Some(wake) = m.ep.pending_done_wake(&p) {
                        gengar_hybridmem::latency::spin_until(wake);
                    }
                }
                p.into_results().into_iter().all(|r| r.is_ok())
            };
            if !mirror_ok {
                if self.primary_down {
                    // The mirror is the only lane: surface the failure.
                    return Err(GengarError::Rdma(gengar_rdma::RdmaError::NotConnected));
                }
                self.lose_mirror();
            }
        }

        self.in_flight.push_back(seq);
        self.staged.inc();
        self.occupancy.set(self.in_flight.len() as i64);
        self.next_seq += 1;
        self.next_slot = (self.next_slot + 1) % self.layout.slots;
        self.publish_mirror_lag();
        Ok(seq)
    }

    /// Stages a window of durable writes with one doorbell: every record
    /// is gathered into its own scratch lane (`gather_off`, caller-owned,
    /// inside this writer's scratch MR) and the whole list is posted as a
    /// single WRITE_WITH_IMM batch. Returns one result per item in order;
    /// `Ok(seq)` means that record is durably in its slot.
    ///
    /// Failure handling follows a prefix/hole rule. Let `k` be the last
    /// item that completed: the ring cursors advance by `k + 1` and every
    /// sequence number up to `k` — including failed holes — is tracked as
    /// in flight. Hole seqs retire automatically because the server's
    /// drained watermark stores each drained record's own (monotonically
    /// increasing) sequence number, so a later record's drain covers the
    /// hole. Items after `k` never occupied their slots: a retry reuses
    /// the same slots with fresh sequence numbers.
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] if any payload exceeds the slot
    /// capacity (nothing staged); transport failures of the post itself
    /// as [`GengarError::Rdma`] (nothing staged). Per-record transport
    /// failures land in the inner results.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `items` fits the ring (`len <= slots`); the
    /// client's window planner guarantees this.
    pub fn stage_write_batch(
        &mut self,
        items: &[(u64, &[u8], u64)],
    ) -> Result<Vec<Result<u64, GengarError>>, GengarError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let _t = self.stage_ns.span();
        // Ring must have room for the whole window before anything posts.
        let tracer = Tracer::global();
        while self.ring_room() < items.len() {
            let _wait = tracer.span("proxy.ring_full_wait");
            self.ring_full_waits.inc();
            let oldest = *self.in_flight.front().expect("nonempty");
            self.wait_drained(oldest)?;
        }
        let mut flight = self.stage_batch_begin(items)?;
        while !self.poll_flight(&mut flight) {
            if let Some(wake) = self.flight_done_wake(&flight) {
                gengar_hybridmem::latency::spin_until(wake);
            }
        }
        Ok(self.stage_batch_finish(flight))
    }

    /// Slots currently free in the ring (as of the last watermark read).
    /// [`StagingWriter::stage_batch_begin`] requires room for the whole
    /// batch; call [`StagingWriter::refresh_drained`] to retire slots.
    pub fn ring_room(&self) -> usize {
        self.layout.slots as usize - self.in_flight.len()
    }

    /// Counts one ring-full stall (`proxy.ring_full_waits`). The blocking
    /// staging paths count their own waits; the concurrent issue engine,
    /// which parks instead of blocking, calls this when it first finds the
    /// ring too full for a flight.
    pub fn note_ring_full(&self) {
        self.ring_full_waits.inc();
    }

    /// Posts a window of staged writes as one doorbell without waiting
    /// for completions. The ring cursors stay put until
    /// [`StagingWriter::stage_batch_finish`] learns which prefix of the
    /// flight made it; until then no other staging may run on this writer.
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] if any payload exceeds the slot
    /// capacity (nothing staged); [`GengarError::ProtocolViolation`] if
    /// the ring lacks room (callers check [`StagingWriter::ring_room`]);
    /// transport failures of the post itself as [`GengarError::Rdma`]
    /// (nothing staged).
    pub fn stage_batch_begin(
        &mut self,
        items: &[(u64, &[u8], u64)],
    ) -> Result<StagedFlight, GengarError> {
        debug_assert!(items.len() <= self.layout.slots as usize);
        for &(_, data, _) in items {
            if data.len() as u64 > self.layout.slot_payload {
                return Err(GengarError::ObjectTooLarge {
                    requested: data.len() as u64,
                    max: self.layout.slot_payload,
                });
            }
        }
        if self.ring_room() < items.len() {
            return Err(GengarError::ProtocolViolation(
                "staging ring lacks room for the batch",
            ));
        }
        let tracer = Tracer::global();
        let mut stage_span = tracer.span("proxy.stage_batch");
        stage_span.set_detail(items.len() as u64);
        let trace = gengar_telemetry::current_context().0 .0;

        let mut ops = Vec::with_capacity(items.len());
        let mut mirror_ops = Vec::with_capacity(if self.mirror.is_some() {
            items.len()
        } else {
            0
        });
        for (i, &(addr_raw, data, gather_off)) in items.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            let slot = (self.next_slot + i as u32) % self.layout.slots;
            let mut header = [0u8; RECORD_HEADER as usize];
            encode_record_header(
                &mut header,
                seq,
                addr_raw,
                data.len() as u64,
                checksum(data),
                trace,
                self.tenant_tag,
                self.record_epoch(),
            );
            self.scratch.region().write(gather_off, &header)?;
            self.scratch
                .region()
                .write(gather_off + RECORD_HEADER, data)?;
            let sge = Sge::new(
                self.scratch.lkey(),
                gather_off,
                RECORD_HEADER + data.len() as u64,
            );
            ops.push(SendOp::Write {
                payload: Payload::Sge(sge),
                remote: RemoteAddr::new(
                    self.staging_rkey,
                    self.ring_offset + self.layout.slot_offset(slot),
                ),
                imm: Some(slot),
            });
            if let Some(m) = &self.mirror {
                // The mirror WR reuses the gathered record verbatim; it
                // rides the same doorbell window on the lane's own QP.
                mirror_ops.push(SendOp::Write {
                    payload: Payload::Sge(sge),
                    remote: RemoteAddr::new(
                        m.staging_rkey,
                        m.ring_offset + self.layout.slot_offset(slot),
                    ),
                    imm: Some(slot),
                });
            }
        }
        let pending = if self.primary_down {
            None
        } else {
            Some(self.ep.post_many(ops)?)
        };
        let mirror_pending = match &self.mirror {
            Some(m) => match m.ep.post_many(mirror_ops) {
                Ok(p) => Some(p),
                Err(e) => {
                    if self.primary_down || pending.is_none() {
                        return Err(e.into());
                    }
                    // Mirror doorbell failed: drop the lane and let the
                    // flight settle on the primary alone.
                    self.lose_mirror();
                    None
                }
            },
            None => {
                if self.primary_down {
                    return Err(GengarError::Rdma(gengar_rdma::RdmaError::NotConnected));
                }
                None
            }
        };
        Ok(StagedFlight {
            pending,
            mirror_pending,
            base_seq: self.next_seq,
            base_slot: self.next_slot,
            n: items.len(),
        })
    }

    /// One non-blocking harvest pass over a flight's completions (both
    /// lanes). Returns `true` once every record has an outcome.
    pub fn poll_flight(&mut self, flight: &mut StagedFlight) -> bool {
        let mut done = true;
        if let Some(p) = &mut flight.pending {
            done &= self.ep.poll_pending(p);
        }
        match (&mut flight.mirror_pending, &self.mirror) {
            (Some(p), Some(m)) => done &= m.ep.poll_pending(p),
            // The lane was shed while this flight was open (a mirror WR or
            // watermark-read failure dropped `self.mirror`): the endpoint
            // that could harvest these completions is gone. Abandon them —
            // the primary lane stays authoritative (every shed path keeps
            // it; only a failover removes it, and a failover flight's
            // mirror is never shed) — so the flight can settle instead of
            // never reporting done.
            (mp @ Some(_), None) => *mp = None,
            (None, _) => {}
        }
        done
    }

    /// When to next poll a still-pending flight; `None` once it is done.
    pub fn flight_next_wake(&self, flight: &StagedFlight) -> Option<Instant> {
        let a = flight
            .pending
            .as_ref()
            .and_then(|p| self.ep.pending_next_wake(p));
        let b = match (&flight.mirror_pending, &self.mirror) {
            (Some(p), Some(m)) => m.ep.pending_next_wake(p),
            _ => None,
        };
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// When a still-pending flight is expected to be *fully* harvestable;
    /// `None` once it is done. Flights settle as a unit
    /// ([`StagingWriter::stage_batch_finish`]), so waiters sleep until
    /// this instead of waking per staggered completion. With a mirror
    /// lane the flight is done when the *slower* lane is.
    pub fn flight_done_wake(&self, flight: &StagedFlight) -> Option<Instant> {
        let a = flight
            .pending
            .as_ref()
            .and_then(|p| self.ep.pending_done_wake(p));
        let b = match (&flight.mirror_pending, &self.mirror) {
            (Some(p), Some(m)) => m.ep.pending_done_wake(p),
            _ => None,
        };
        match (a, b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        }
    }

    /// Retires a completed flight: applies the prefix/hole rule to the
    /// ring cursors and returns one result per record in order; `Ok(seq)`
    /// means that record is durably in its slot.
    ///
    /// Failure handling: let `k` be the last record that completed. The
    /// ring cursors advance by `k + 1` and every sequence number up to
    /// `k` — including failed holes — is tracked as in flight. Hole seqs
    /// retire automatically because the server's drained watermark stores
    /// each drained record's own (monotonically increasing) sequence
    /// number, so a later record's drain covers the hole. Records after
    /// `k` never occupied their slots: a retry reuses the same slots with
    /// fresh sequence numbers.
    ///
    /// # Panics
    ///
    /// Debug-asserts the flight was opened by this writer and is done.
    pub fn stage_batch_finish(&mut self, flight: StagedFlight) -> Vec<Result<u64, GengarError>> {
        debug_assert!(flight.pending.as_ref().is_none_or(|p| p.is_done()));
        debug_assert!(flight.mirror_pending.as_ref().is_none_or(|p| p.is_done()));
        debug_assert_eq!(flight.base_seq, self.next_seq);
        debug_assert_eq!(flight.base_slot, self.next_slot);
        // The authoritative lane is the primary; after a failover it is
        // the mirror. The other lane's failures never fail a record —
        // a dead mirror drops the lane (ack on primary alone), and the
        // ack rule holds because a record only reports `Ok` once every
        // lane that was posted has completed (the flight settles as a
        // unit across both lanes).
        let completions = match flight.pending {
            Some(p) => {
                let mirror_failed = flight
                    .mirror_pending
                    .map(PendingOps::into_results)
                    .is_some_and(|rs| rs.iter().any(|r| r.is_err()));
                if mirror_failed {
                    self.lose_mirror();
                }
                p.into_results()
            }
            None => flight
                .mirror_pending
                .expect("failover flight carries a mirror lane")
                .into_results(),
        };
        let mut out = Vec::with_capacity(flight.n);
        let mut last_ok: Option<usize> = None;
        for (i, wc) in completions.into_iter().enumerate() {
            match wc {
                Ok(_) => {
                    last_ok = Some(i);
                    out.push(Ok(self.next_seq + i as u64));
                }
                Err(e) => out.push(Err(GengarError::Rdma(e))),
            }
        }
        if let Some(k) = last_ok {
            for i in 0..=k {
                self.in_flight.push_back(self.next_seq + i as u64);
            }
            self.staged
                .add(out[..=k].iter().filter(|r| r.is_ok()).count() as u64);
            self.next_seq += k as u64 + 1;
            self.next_slot = (self.next_slot + k as u32 + 1) % self.layout.slots;
        }
        self.occupancy.set(self.in_flight.len() as i64);
        out
    }

    /// Reads the drained watermark of every active lane (one-sided READ
    /// of each control region) and retires in-flight records every lane
    /// has covered. A slot is only reusable once both the primary drain
    /// *and* the mirror drain are past it — that is what makes every
    /// settled record recoverable from the backup at any kill point.
    ///
    /// # Errors
    ///
    /// Transport failures as [`GengarError::Rdma`].
    pub fn refresh_drained(&mut self) -> Result<u64, GengarError> {
        let pad = self.scratch_off + self.layout.slot_bytes();
        if !self.primary_down {
            self.ep.read(
                Sge::new(self.scratch.lkey(), pad, 8),
                RemoteAddr::new(self.ctl_rkey, self.client_id as u64 * 8),
            )?;
            let mut word = [0u8; 8];
            self.scratch.region().read(pad, &mut word)?;
            self.drained = u64::from_le_bytes(word);
        }
        if let Some(m) = &self.mirror {
            let mpad = pad + 8;
            let read = m.ep.read(
                Sge::new(self.scratch.lkey(), mpad, 8),
                RemoteAddr::new(m.ctl_rkey, m.client_id as u64 * 8),
            );
            match read {
                Ok(_) => {
                    let mut word = [0u8; 8];
                    self.scratch.region().read(mpad, &mut word)?;
                    self.mirror_drained = u64::from_le_bytes(word);
                }
                Err(e) => {
                    if self.primary_down {
                        return Err(e.into());
                    }
                    // Watermark read failures count as a dead mirror too:
                    // a wedged lane must not stall the primary's ring.
                    self.lose_mirror();
                }
            }
        }
        let effective = self.effective_drained();
        while self.in_flight.front().is_some_and(|&seq| seq <= effective) {
            self.in_flight.pop_front();
        }
        self.occupancy.set(self.in_flight.len() as i64);
        self.publish_mirror_lag();
        Ok(effective)
    }

    /// Blocks until the record with sequence `seq` has been drained to NVM.
    ///
    /// Waits *politely*: after each unsuccessful watermark check the thread
    /// sleeps with growing backoff. Flow-control stalls mean the proxy is
    /// behind; burning the CPU here would only starve it further (clients
    /// and servers share cores in the emulation).
    ///
    /// # Errors
    ///
    /// Transport failures as [`GengarError::Rdma`];
    /// [`gengar_rdma::RdmaError::Timeout`] if the watermark makes no
    /// progress for the drain deadline (stalled or dead proxy) — the wait
    /// never hangs forever.
    pub fn wait_drained(&mut self, seq: u64) -> Result<(), GengarError> {
        let mut sleep_us = 5u64;
        let mut last_progress = Instant::now();
        let mut last_seen = self.effective_drained();
        while self.effective_drained() < seq {
            let drained = self.refresh_drained()?;
            if drained > last_seen {
                last_seen = drained;
                last_progress = Instant::now();
            }
            if drained < seq {
                if last_progress.elapsed() >= self.drain_deadline {
                    return Err(GengarError::Rdma(gengar_rdma::RdmaError::Timeout));
                }
                std::thread::sleep(Duration::from_micros(sleep_us));
                sleep_us = (sleep_us * 2).min(200);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_geometry() {
        let l = RingLayout::for_ring_bytes(64 << 10);
        assert_eq!(l.slots, SLOTS_PER_RING);
        assert_eq!(l.slot_bytes(), 4096);
        assert_eq!(l.slot_payload, 4096 - RECORD_HEADER);
        assert_eq!(l.ring_bytes(), 64 << 10);
        assert_eq!(l.slot_offset(0), 0);
        assert_eq!(l.slot_offset(3), 3 * 4096);
    }

    #[test]
    fn tiny_ring_budget_still_usable() {
        let l = RingLayout::for_ring_bytes(100);
        assert!(l.slot_payload >= 64);
    }

    #[test]
    fn tiny_ring_bytes_clamp_keeps_slots_addressable() {
        // Budgets below one minimal slot per ring still produce a layout
        // whose slot arithmetic is self-consistent: every slot fits inside
        // ring_bytes() and the clamp floor holds for any budget.
        for ring_bytes in [0, 1, 63, 64, 100, RECORD_HEADER, RECORD_HEADER + 64, 4096] {
            let l = RingLayout::for_ring_bytes(ring_bytes);
            assert!(l.slot_bytes() >= RECORD_HEADER + 64, "budget {ring_bytes}");
            assert_eq!(l.slots, SLOTS_PER_RING);
            let last = l.slot_offset(l.slots - 1);
            assert_eq!(last + l.slot_bytes(), l.ring_bytes());
        }
    }

    #[test]
    fn mount_info_round_trips_the_server_layout() {
        // The server derives its geometry once; the mount response carries
        // it and the client reconstructs the identical layout.
        let server_side = RingLayout::for_ring_bytes(100);
        let mount = crate::proto::MountInfo {
            server_id: 1,
            nvm_rkey: 0,
            cache_rkey: 0,
            staging_rkey: 0,
            ctl_rkey: 0,
            nvm_capacity: 0,
            enable_cache: true,
            enable_proxy: true,
            slot_payload: server_side.slot_payload,
            slots_per_ring: server_side.slots,
            shadow_rkey: 0,
            backup: crate::proto::NO_BACKUP,
        };
        assert_eq!(mount.ring_layout(), server_side);
    }
}
