//! On-media layouts: object headers in NVM, cache-slot frames in DRAM,
//! staged-write records in the proxy rings — plus the checksum that guards
//! them against torn RDMA reads.

/// Size of the per-object header preceding every payload in NVM:
/// `[lock/version word u64][payload_len u64]`.
pub const OBJ_HEADER: u64 = 16;

/// Offset of the lock/version word within the header.
pub const OBJ_WORD_OFF: u64 = 16; // subtract from payload base

/// Cache-slot frame preceding the cached payload in server DRAM:
/// `[tag u64][version u64][checksum u64][len u64]`. The payload is followed
/// by an 8-byte *tail version* ([`SLOT_TAIL`]): readers accept a frame only
/// when the head and tail versions match and are even (FaRM-style), which
/// detects torn one-sided reads without a read-side checksum pass. The
/// checksum word is written at promotion for diagnostics; in-place updates
/// clear it.
pub const SLOT_HEADER: u64 = 32;

/// Size of the cache-slot tail version trailing the payload.
pub const SLOT_TAIL: u64 = 8;

/// Staged-record header in a proxy ring slot:
/// `[seq u64][addr u64][len u64][checksum u64][trace u64][tenant u32][epoch u32]`.
/// The trace word carries the originating op's trace id across the
/// client→proxy→drain handoff, so the server's asynchronous NVM drain can
/// open a span in the same causal trace (0 = untraced record). The tenant
/// word carries the compact QoS tenant tag so the drain can account
/// durable bytes to the tenant after the client-visible ack (0 = no
/// tenant / QoS off). The epoch word carries the replica epoch of the
/// mirror lane the record was staged under (0 = unreplicated): a backup
/// ring id can be reused across mirror tenures, and promotion replay must
/// not apply a stale tenure's leftover records, so the backup only accepts
/// records stamped with the ring's current epoch.
pub const RECORD_HEADER: u64 = 48;

/// FNV-1a 64-bit hash, used as the torn-read/torn-record checksum.
///
/// RDMA reads larger than 8 bytes are not atomic with respect to concurrent
/// writes; real systems (FaRM, Pilaf) guard against torn data with per-line
/// versions or checksums. Gengar's cache slots and staged records embed this
/// checksum so readers/recovery can reject partially-updated frames.
pub fn checksum(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    // FNV-1a over 8-byte words (plus a byte-wise tail): same mixing
    // quality for torn-read detection at an eighth of the cost, which
    // matters because readers checksum every cached payload.
    let mut h = OFFSET ^ (data.len() as u64).wrapping_mul(PRIME);
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Helpers for the object lock/version word.
///
/// Bit 0 is the writer-lock bit; bits 1..64 hold the version. Writers
/// acquire the word with RDMA CAS, bump the version on release.
pub mod lockword {
    /// Initial word: version 0, unlocked.
    pub const INIT: u64 = 0;

    /// Returns the word with the lock bit set.
    pub fn locked(word: u64) -> u64 {
        word | 1
    }

    /// Returns whether the lock bit is set.
    pub fn is_locked(word: u64) -> bool {
        word & 1 == 1
    }

    /// Version component of the word.
    pub fn version(word: u64) -> u64 {
        word >> 1
    }

    /// Unlocked word carrying `version`.
    pub fn with_version(version: u64) -> u64 {
        version << 1
    }

    /// The word a releasing writer publishes: version bumped, lock clear.
    pub fn release(locked_word: u64) -> u64 {
        with_version(version(locked_word) + 1)
    }
}

/// Encodes a cache-slot frame header into `out[0..32]`.
pub fn encode_slot_header(out: &mut [u8], tag: u64, version: u64, cksum: u64, len: u64) {
    out[0..8].copy_from_slice(&tag.to_le_bytes());
    out[8..16].copy_from_slice(&version.to_le_bytes());
    out[16..24].copy_from_slice(&cksum.to_le_bytes());
    out[24..32].copy_from_slice(&len.to_le_bytes());
}

/// A decoded cache-slot frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHeader {
    /// Raw global address of the object this slot caches (0 = invalid).
    pub tag: u64,
    /// Seqlock version (even = stable).
    pub version: u64,
    /// Checksum of the payload bytes.
    pub checksum: u64,
    /// Payload length.
    pub len: u64,
}

/// Decodes a cache-slot frame header from `buf[0..32]`.
pub fn decode_slot_header(buf: &[u8]) -> SlotHeader {
    SlotHeader {
        tag: u64::from_le_bytes(buf[0..8].try_into().expect("32-byte header")),
        version: u64::from_le_bytes(buf[8..16].try_into().expect("32-byte header")),
        checksum: u64::from_le_bytes(buf[16..24].try_into().expect("32-byte header")),
        len: u64::from_le_bytes(buf[24..32].try_into().expect("32-byte header")),
    }
}

/// Encodes a staged-record header into `out[0..48]`.
#[allow(clippy::too_many_arguments)]
pub fn encode_record_header(
    out: &mut [u8],
    seq: u64,
    addr: u64,
    len: u64,
    cksum: u64,
    trace: u64,
    tenant: u32,
    epoch: u32,
) {
    out[0..8].copy_from_slice(&seq.to_le_bytes());
    out[8..16].copy_from_slice(&addr.to_le_bytes());
    out[16..24].copy_from_slice(&len.to_le_bytes());
    out[24..32].copy_from_slice(&cksum.to_le_bytes());
    out[32..40].copy_from_slice(&trace.to_le_bytes());
    out[40..44].copy_from_slice(&tenant.to_le_bytes());
    out[44..48].copy_from_slice(&epoch.to_le_bytes());
}

/// A decoded staged-record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Ring sequence number (starts at 1; 0 marks an empty slot).
    pub seq: u64,
    /// Raw global address of the write's destination.
    pub addr: u64,
    /// Payload length.
    pub len: u64,
    /// Checksum over the payload bytes.
    pub checksum: u64,
    /// Trace id of the originating client op (0 = untraced).
    pub trace: u64,
    /// Compact QoS tenant tag (0 = no tenant / QoS off).
    pub tenant: u32,
    /// Replica epoch of the mirror lane this record was staged under
    /// (0 = unreplicated). Guards a reused backup ring against replaying
    /// a stale tenure's leftover records at promotion.
    pub epoch: u32,
}

/// Decodes a staged-record header from `buf[0..48]`.
pub fn decode_record_header(buf: &[u8]) -> RecordHeader {
    RecordHeader {
        seq: u64::from_le_bytes(buf[0..8].try_into().expect("48-byte header")),
        addr: u64::from_le_bytes(buf[8..16].try_into().expect("48-byte header")),
        len: u64::from_le_bytes(buf[16..24].try_into().expect("48-byte header")),
        checksum: u64::from_le_bytes(buf[24..32].try_into().expect("48-byte header")),
        trace: u64::from_le_bytes(buf[32..40].try_into().expect("48-byte header")),
        tenant: u32::from_le_bytes(buf[40..44].try_into().expect("48-byte header")),
        epoch: u32::from_le_bytes(buf[44..48].try_into().expect("48-byte header")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"gengar");
        assert_eq!(a, checksum(b"gengar"));
        assert_ne!(a, checksum(b"gengaR"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn lockword_protocol() {
        use lockword::*;
        assert!(!is_locked(INIT));
        assert_eq!(version(INIT), 0);
        let l = locked(INIT);
        assert!(is_locked(l));
        assert_eq!(version(l), 0);
        let r = release(l);
        assert!(!is_locked(r));
        assert_eq!(version(r), 1);
        assert_eq!(version(release(locked(r))), 2);
        assert_eq!(with_version(7), 14);
    }

    #[test]
    fn slot_header_roundtrip() {
        let mut buf = [0u8; 32];
        encode_slot_header(&mut buf, 0xAABB, 42, 0xDEAD_BEEF, 4096);
        let h = decode_slot_header(&buf);
        assert_eq!(
            h,
            SlotHeader {
                tag: 0xAABB,
                version: 42,
                checksum: 0xDEAD_BEEF,
                len: 4096
            }
        );
    }

    #[test]
    fn record_header_roundtrip() {
        let mut buf = [0u8; RECORD_HEADER as usize];
        encode_record_header(&mut buf, 9, 0x0100_0000_0000_0040, 128, 77, 0xC0FFEE, 5, 3);
        let h = decode_record_header(&buf);
        assert_eq!(h.seq, 9);
        assert_eq!(h.addr, 0x0100_0000_0000_0040);
        assert_eq!(h.len, 128);
        assert_eq!(h.checksum, 77);
        assert_eq!(h.trace, 0xC0FFEE);
        assert_eq!(h.tenant, 5);
        assert_eq!(h.epoch, 3);
    }
}
