//! Configuration for servers and clients, including the ablation toggles
//! the evaluation sweeps over (cache on/off, proxy on/off).

use std::time::Duration;

use gengar_hybridmem::DeviceProfile;
use gengar_telemetry::TelemetryConfig;
use serde::{Deserialize, Serialize};

use crate::cache::CachePolicy;
use crate::qos::QosConfig;

/// Consistency level for shared objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Consistency {
    /// No cross-user guarantees: raw reads/writes (single-user mode).
    None,
    /// Writers lock objects via one-sided CAS; readers validate seqlock
    /// versions and retry. This is Gengar's multi-user sharing mode.
    Seqlock,
}

/// Primary–backup replication of the staged-write path.
///
/// With replication enabled every server allocates a *shadow* NVM device
/// (same geometry as its own NVM) that mirrors the NVM of the server it
/// backs up. Clients fan staged writes out to the backup's mirror ring
/// before reporting them settled, so losing the primary machine loses no
/// settled write: the client promotes the backup (which replays any
/// un-drained mirror-ring records into the shadow) and keeps going.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Mirror staged writes to a backup server and allow failover.
    pub enabled: bool,
    /// How often the cluster's rebalance thread checks backup liveness and
    /// re-establishes a new backup for servers whose replica died.
    pub rebalance_interval: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            enabled: false,
            rebalance_interval: Duration::from_millis(50),
        }
    }
}

/// Live health & SLO plane: windowed sampling, per-component state
/// machines with hysteresis, and burn-rate alerts that arm the flight
/// recorder. Disabled by default: no sampler thread runs and `Inspect`
/// serves a minimal "unknown" document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Run the health plane (sampler + evaluation tick).
    pub enabled: bool,
    /// Sampling/evaluation interval: each tick closes one window and
    /// re-evaluates every component state machine.
    pub tick: Duration,
    /// Windows retained in the ring (the live history `Inspect` serves).
    pub window_ring: usize,
    /// Consecutive ticks a signal must sit above a threshold before the
    /// component escalates (suppresses single-tick blips).
    pub escalate_after: u32,
    /// Consecutive clean ticks before a component steps back down one
    /// level (longer than `escalate_after` so recovery doesn't flap).
    pub recover_after: u32,
    /// Signal thresholds for the component state machines.
    #[serde(default)]
    pub thresholds: HealthThresholds,
    /// Service-level objectives evaluated every tick.
    #[serde(default)]
    pub slo: SloConfig,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: false,
            tick: Duration::from_millis(100),
            window_ring: 60,
            escalate_after: 2,
            recover_after: 3,
            thresholds: HealthThresholds::default(),
            slo: SloConfig::default(),
        }
    }
}

impl HealthConfig {
    /// An enabled plane with the default cadence and thresholds.
    pub fn enabled() -> Self {
        HealthConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// Per-component `Degraded`/`Critical` thresholds on windowed signals.
/// Rates are events per second over the window; levels are raw gauge
/// readings at window close.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthThresholds {
    /// Proxy ring-full waits per second: clients blocking on ring space.
    pub ring_wait_degraded: f64,
    /// Ring-full waits per second at which the ring is critical.
    pub ring_wait_critical: f64,
    /// Drain backlog (staged-not-yet-drained records) marking pressure.
    pub backlog_degraded: i64,
    /// Drain backlog at which the drain plane is critical.
    pub backlog_critical: i64,
    /// Mirror-lane lag (records staged ahead of the mirror drain).
    pub mirror_lag_degraded: i64,
    /// Mirror-lane lag at which replication is critical.
    pub mirror_lag_critical: i64,
    /// Tenant throttle events per second (QoS plane pushing back).
    pub throttle_degraded: f64,
    /// Throttle events per second at which the QoS plane is critical.
    pub throttle_critical: f64,
    /// Client fault-recovery retries + reconnects per second.
    pub retry_degraded: f64,
    /// Retry/reconnect rate marking a client storm as critical.
    pub retry_critical: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            ring_wait_degraded: 100.0,
            ring_wait_critical: 10_000.0,
            backlog_degraded: 4_096,
            backlog_critical: 65_536,
            mirror_lag_degraded: 1_024,
            mirror_lag_critical: 16_384,
            throttle_degraded: 1_000.0,
            throttle_critical: 100_000.0,
            retry_degraded: 50.0,
            retry_critical: 5_000.0,
        }
    }
}

/// Service-level objectives. Each is evaluated per window as a burn rate —
/// how fast the error budget is being consumed relative to plan — and a
/// sustained burn above `burn_alert` arms the flight recorder so the
/// incident's causal trace is captured while it is still happening.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Target 99th-percentile op latency (reads and writes pooled).
    pub op_p99: Duration,
    /// Fraction of ops allowed to miss the latency target (the budget the
    /// burn rate is measured against).
    pub error_budget: f64,
    /// Allowed fault-recovery retries per op (error-rate objective).
    pub max_error_rate: f64,
    /// Allowed mirror-lane lag, in staged records (replication objective).
    pub max_replication_lag: i64,
    /// Burn-rate multiple that fires the alert (1.0 = consuming budget
    /// exactly as planned; 2.0 = twice as fast).
    pub burn_alert: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            op_p99: Duration::from_millis(10),
            error_budget: 0.01,
            max_error_rate: 0.01,
            max_replication_lag: 16_384,
            burn_alert: 2.0,
        }
    }
}

/// Server-side configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Bytes of NVM exported into the pool.
    pub nvm_capacity: u64,
    /// Bytes of ADR-protected DRAM per client staging ring.
    pub staging_ring_capacity: u64,
    /// Maximum clients (bounds staging region size).
    pub max_clients: u32,
    /// The cache plane: capacity, admission mode, ghost sizing, demotion,
    /// hotness thresholds and sketch shape. `CachePolicy::disabled()` turns
    /// the whole plane off (the paper's no-cache ablation arm).
    #[serde(default)]
    pub cache: CachePolicy,
    /// Proxy-based write protocol (ablation toggle).
    pub enable_proxy: bool,
    /// How often the hotness monitor folds reports and promotes/demotes.
    pub epoch: Duration,
    /// Largest allocatable payload.
    pub max_object: u64,
    /// Timing profile of the NVM device.
    pub nvm_profile: DeviceProfile,
    /// Timing profile of the DRAM devices (cache, control, messages).
    pub dram_profile: DeviceProfile,
    /// Timing profile of the staging device (must be durable on write).
    pub staging_profile: DeviceProfile,
    /// Track durable images so crashes can be simulated (costs memory).
    pub crash_sim: bool,
    /// Proxy drain threads. Rings are assigned to threads by client id, so
    /// per-ring ordering is preserved while drain bandwidth scales.
    pub proxy_threads: u32,
    /// Whether server-side metrics (cache, proxy, hotness) are recorded
    /// into the global telemetry registry.
    pub telemetry: TelemetryConfig,
    /// Multi-tenant QoS plane (tenant budgets, admission control).
    /// Disabled by default: no plane is built and no path pays for it.
    #[serde(default)]
    pub qos: QosConfig,
    /// Primary–backup replication of staged writes. Disabled by default:
    /// no shadow device is allocated and writes pay no mirror WR.
    #[serde(default)]
    pub replication: ReplicationConfig,
    /// Live health & SLO plane. Disabled by default: no sampler thread
    /// runs and `Inspect` serves a minimal document.
    #[serde(default)]
    pub health: HealthConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            nvm_capacity: 256 << 20,
            staging_ring_capacity: 1 << 20,
            max_clients: 64,
            cache: CachePolicy::default(),
            enable_proxy: true,
            epoch: Duration::from_millis(20),
            max_object: 16 << 20,
            nvm_profile: DeviceProfile::optane(),
            dram_profile: DeviceProfile::dram(),
            staging_profile: DeviceProfile::adr_dram(),
            crash_sim: false,
            proxy_threads: 2,
            telemetry: TelemetryConfig::default(),
            qos: QosConfig::default(),
            replication: ReplicationConfig::default(),
            health: HealthConfig::default(),
        }
    }
}

impl ServerConfig {
    /// A small configuration for unit tests (few MiB, fast epochs,
    /// zero-latency devices).
    pub fn small() -> Self {
        use gengar_hybridmem::{MemKind, PersistenceMode};
        let mut staging = DeviceProfile::instant(MemKind::Dram);
        staging.persistence = PersistenceMode::Adr;
        ServerConfig {
            nvm_capacity: 8 << 20,
            staging_ring_capacity: 64 << 10,
            max_clients: 8,
            cache: CachePolicy::new()
                .capacity(1 << 20)
                .hot_threshold(2)
                .cacheable_max(16 << 10),
            epoch: Duration::from_millis(5),
            max_object: 1 << 20,
            nvm_profile: DeviceProfile::instant(MemKind::Nvm),
            dram_profile: DeviceProfile::instant(MemKind::Dram),
            staging_profile: staging,
            ..Default::default()
        }
    }

    /// The paper's baseline comparator shape: no DRAM cache, no proxy
    /// (direct one-sided access to NVM, Octopus-like).
    pub fn nvm_direct() -> Self {
        ServerConfig {
            cache: CachePolicy::disabled(),
            enable_proxy: false,
            ..Default::default()
        }
    }
}

/// Client-side configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Consistency level for shared objects.
    pub consistency: Consistency,
    /// Local scratch buffer registered for RDMA (per client).
    pub scratch_capacity: u64,
    /// Send an access report to each server after this many accesses.
    pub report_every: u32,
    /// Retries for a consistent read before giving up.
    pub read_retries: u32,
    /// Retries for lock acquisition before giving up.
    pub lock_retries: u32,
    /// Remember at most this many remote-cache remap entries.
    pub remap_cache_entries: usize,
    /// Overall deadline for one client operation, spanning every retry,
    /// backoff sleep and reconnect attempt. Also the default RPC deadline.
    pub op_deadline: Duration,
    /// Maximum fault-recovery retries per operation (backoff attempts).
    pub max_retries: u32,
    /// First backoff sleep after a retryable fault; doubles per attempt.
    pub retry_backoff: Duration,
    /// Ceiling for the exponential backoff between retries.
    pub retry_backoff_max: Duration,
    /// After this many consecutive staged-write failures on one server the
    /// client degrades that connection to the direct NVM write path until
    /// the next successful reconnect.
    pub staging_fault_threshold: u32,
    /// Outstanding operations per connection for batched/vectored
    /// operations ([`crate::batch::OpBatch`], `read_batch`/`write_batch`):
    /// up to this many work requests are posted under one doorbell and
    /// completed out of order. `1` disables pipelining (every op is a
    /// full round trip). Scalar `read`/`write` are unaffected: a batch of
    /// one behaves exactly like the serial path.
    pub window_depth: u32,
    /// Whether client-side metrics (per-op latency, stats counters) are
    /// recorded into the global telemetry registry.
    pub telemetry: TelemetryConfig,
    /// Tenant this client authenticates as: sent in the Mount handshake,
    /// bound server-side for RPC throttling and fabric admission, and
    /// used client-side to pace at the QoS issue gate. Clients of the
    /// same tenant share one budget.
    #[serde(default = "default_tenant")]
    pub tenant: String,
}

/// The implicit tenant for configs that never set one.
fn default_tenant() -> String {
    "default".to_owned()
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            consistency: Consistency::None,
            scratch_capacity: 4 << 20,
            report_every: 64,
            read_retries: 16,
            lock_retries: 10_000,
            remap_cache_entries: 65_536,
            op_deadline: Duration::from_secs(2),
            max_retries: 64,
            retry_backoff: Duration::from_micros(50),
            retry_backoff_max: Duration::from_millis(5),
            staging_fault_threshold: 3,
            window_depth: 16,
            telemetry: TelemetryConfig::default(),
            tenant: default_tenant(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = ServerConfig::default();
        assert!(s.cache.enabled && s.enable_proxy);
        assert!(s.cache.capacity < s.nvm_capacity);
        assert!(s.cache.cacheable_max <= s.cache.capacity);
        assert_eq!(s.cache.admission, crate::cache::AdmissionMode::TinyLfu);
        assert!(s.cache.ghost_entries > 0);
        assert!(!s.cache.demotion, "demotion is opt-in (extra NVM area)");
        assert!(s.cache.sample_every >= 1);
        let c = ClientConfig::default();
        assert!(c.report_every > 0);
        assert!(c.scratch_capacity >= 1 << 20);
        assert!(c.op_deadline >= Duration::from_millis(100));
        assert!(c.retry_backoff <= c.retry_backoff_max);
        assert!(c.max_retries > 0 && c.staging_fault_threshold > 0);
        assert!(c.window_depth >= 1);
        assert_eq!(c.tenant, "default");
        assert!(!s.qos.enabled, "QoS must be opt-in");
        assert!(!s.replication.enabled, "replication must be opt-in");
        assert!(s.replication.rebalance_interval > Duration::ZERO);
        assert!(!s.health.enabled, "health plane must be opt-in");
        assert!(s.health.tick > Duration::ZERO && s.health.window_ring > 0);
        assert!(
            s.health.recover_after >= s.health.escalate_after,
            "recovery must be at least as slow as escalation or states flap"
        );
        let t = &s.health.thresholds;
        assert!(t.ring_wait_degraded < t.ring_wait_critical);
        assert!(t.backlog_degraded < t.backlog_critical);
        assert!(t.mirror_lag_degraded < t.mirror_lag_critical);
        assert!(t.throttle_degraded < t.throttle_critical);
        assert!(t.retry_degraded < t.retry_critical);
        let slo = &s.health.slo;
        assert!(slo.op_p99 > Duration::ZERO);
        assert!(slo.error_budget > 0.0 && slo.error_budget < 1.0);
        assert!(slo.max_error_rate > 0.0 && slo.burn_alert >= 1.0);
        assert!(HealthConfig::enabled().enabled);
    }

    #[test]
    fn nvm_direct_disables_gengar_mechanisms() {
        let s = ServerConfig::nvm_direct();
        assert!(!s.cache.enabled);
        assert!(!s.enable_proxy);
    }

    #[test]
    fn small_fits_in_test_budgets() {
        let s = ServerConfig::small();
        assert!(s.nvm_capacity <= 16 << 20);
        assert!(s.epoch <= Duration::from_millis(10));
    }
}
