//! Server-side DRAM cache of hot objects.
//!
//! Promoted objects get a *slot* in the server's DRAM cache region. A slot
//! holds a [`crate::layout::SlotHeader`] (tag = the object's global address,
//! a seqlock version, a diagnostic checksum, the length), the payload copy,
//! and a trailing tail version. Clients read slots with a single one-sided
//! READ and validate tag + even head version + head==tail (FaRM-style) — a
//! stale, torn or mid-update frame fails validation and the client falls
//! back to NVM, so remap staleness is always safe.
//!
//! # Policy
//!
//! Everything tunable about the cache plane lives in [`CachePolicy`]:
//!
//! * **Admission** ([`AdmissionMode`]) — `TinyLfu` keeps a doorkeeper of
//!   addresses that have already knocked once, so a one-hit-wonder cannot
//!   evict a proven-hot frame; `ScoreOnly` is the legacy compare-scores
//!   behaviour.
//! * **Ghost list** — recently evicted addresses (with the segment they were
//!   evicted from). A ghost hit bypasses the doorkeeper and adaptively
//!   resizes the protected vs. probationary split of the cache, ARC-style.
//! * **Demotion** — evicted-but-warm frames are copied into a server-local
//!   NVM demote area so re-promotion is one local NVM→DRAM copy instead of a
//!   full client miss. Demotion runs on the epoch thread only, never on the
//!   foreground proxy drain.

use std::collections::{HashMap, HashSet, VecDeque};

use gengar_hybridmem::MemRegion;
use gengar_telemetry::{CounterHandle, TelemetryConfig};
use serde::{Deserialize, Serialize};

use crate::addr::{GlobalAddr, MemClass};
use crate::alloc::FrameAllocator;
use crate::error::GengarError;
use crate::layout::{checksum, decode_slot_header, encode_slot_header, SLOT_HEADER, SLOT_TAIL};

/// How the cache decides whether a candidate may evict a resident frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionMode {
    /// Legacy behaviour: admit whenever the candidate's score is at least
    /// the victim's. Ties admit, which churns under a flat-score workload.
    ScoreOnly,
    /// TinyLFU-style: a first-time candidate is remembered in a doorkeeper
    /// and rejected; it may evict only on a later attempt, and only with a
    /// score *strictly* above the victim's. Ghost/demote re-entries bypass
    /// the filter entirely (they are proven-warm).
    #[default]
    TinyLfu,
}

/// Everything tunable about one server's cache plane, built builder-style:
///
/// ```
/// use gengar_core::{AdmissionMode, CachePolicy};
/// let policy = CachePolicy::new()
///     .capacity(16 << 20)
///     .admission(AdmissionMode::TinyLfu)
///     .ghost_entries(2048)
///     .demotion(true)
///     .hot_threshold(2);
/// assert!(policy.enabled);
/// ```
///
/// The policy is threaded from [`crate::ServerConfig`] through the server
/// into [`CacheManager`] and the hotness monitor — there are no loose cache
/// knobs anywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct CachePolicy {
    /// Master switch: when `false` the server promotes nothing and mounts
    /// advertise a disabled cache.
    pub enabled: bool,
    /// DRAM cache capacity in bytes (also sizes the NVM demote area).
    pub capacity: u64,
    /// Admission filter.
    pub admission: AdmissionMode,
    /// Ghost-list length in addresses; `0` disables the ghost list (and the
    /// adaptive protected/probation sizing that rides on it).
    pub ghost_entries: usize,
    /// Copy evicted-but-warm frames to a server-local NVM demote area.
    pub demotion: bool,
    /// Epoch-fold score at which an object becomes promotable.
    pub hot_threshold: u32,
    /// Objects larger than this are never cached.
    pub cacheable_max: u64,
    /// Sample 1-in-N reported accesses into the frequency sketch (1 =
    /// exact). Sampled adds are weighted by N so scores stay comparable.
    pub sample_every: u32,
    /// Count-min sketch width (counters per row).
    pub sketch_width: usize,
    /// Count-min sketch depth (rows).
    pub sketch_depth: usize,
    /// Max distinct addresses tracked per epoch fold.
    pub max_candidates: usize,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            enabled: true,
            capacity: 32 << 20,
            admission: AdmissionMode::TinyLfu,
            ghost_entries: 1024,
            demotion: false,
            hot_threshold: 4,
            cacheable_max: 64 << 10,
            sample_every: 1,
            sketch_width: 4096,
            sketch_depth: 4,
            max_candidates: 1 << 16,
        }
    }
}

impl CachePolicy {
    /// Default policy: 32 MiB, TinyLFU admission, 1024-entry ghost list,
    /// demotion off.
    pub fn new() -> Self {
        Self::default()
    }

    /// A policy with the cache switched off entirely.
    pub fn disabled() -> Self {
        CachePolicy {
            enabled: false,
            ..Self::default()
        }
    }

    /// Sets the DRAM capacity in bytes.
    #[must_use]
    pub fn capacity(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Sets the admission filter.
    #[must_use]
    pub fn admission(mut self, mode: AdmissionMode) -> Self {
        self.admission = mode;
        self
    }

    /// Sets the ghost-list length (0 disables it).
    #[must_use]
    pub fn ghost_entries(mut self, entries: usize) -> Self {
        self.ghost_entries = entries;
        self
    }

    /// Enables or disables NVM demotion of evicted-warm frames.
    #[must_use]
    pub fn demotion(mut self, on: bool) -> Self {
        self.demotion = on;
        self
    }

    /// Sets the promotion hotness threshold.
    #[must_use]
    pub fn hot_threshold(mut self, score: u32) -> Self {
        self.hot_threshold = score;
        self
    }

    /// Sets the largest cacheable object size.
    #[must_use]
    pub fn cacheable_max(mut self, bytes: u64) -> Self {
        self.cacheable_max = bytes;
        self
    }

    /// Sets the 1-in-N access sampling rate for the frequency sketch.
    #[must_use]
    pub fn sample_every(mut self, n: u32) -> Self {
        self.sample_every = n.max(1);
        self
    }
}

/// One cached object.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    slot_off: u64,
    payload_len: u64,
    score: u32,
    /// `true` once the frame has proven itself (remap hit or warm re-entry);
    /// protected frames are evicted only when probation is empty.
    protected: bool,
    /// Logical-clock stamp of the last remap hit (LRU within a segment).
    stamp: u64,
}

/// One frame parked in the NVM demote area.
#[derive(Debug, Clone, Copy)]
struct DemoteEntry {
    off: u64,
    len: u64,
    score: u32,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Objects promoted into the cache (includes re-promotions).
    pub promotions: u64,
    /// Objects evicted for capacity.
    pub evictions: u64,
    /// Objects invalidated by writes/frees.
    pub invalidations: u64,
    /// In-place updates applied by the proxy drain path.
    pub updates: u64,
    /// Candidates accepted by the admission filter (== promotions).
    pub admitted: u64,
    /// Candidates turned away by the admission filter.
    pub rejected: u64,
    /// Promotions whose address was found on the ghost list.
    pub ghost_hits: u64,
    /// Evicted-warm frames copied to the NVM demote area.
    pub demotions: u64,
    /// Promotions served by a local demote-area copy (no NVM object read).
    pub repromotions: u64,
}

/// Global-registry handles under the `cache` component. Per-instance
/// [`CacheStats`] stays authoritative for tests; these feed the harness
/// telemetry export.
#[derive(Debug, Clone, Default)]
struct CacheMetrics {
    hits: CounterHandle,
    misses: CounterHandle,
    promotions: CounterHandle,
    evictions: CounterHandle,
    invalidations: CounterHandle,
    updates: CounterHandle,
    admitted: CounterHandle,
    rejected: CounterHandle,
    ghost_hits: CounterHandle,
    demotions: CounterHandle,
    repromotions: CounterHandle,
}

impl CacheMetrics {
    fn new(config: TelemetryConfig) -> Self {
        let tel = config.handle();
        CacheMetrics {
            hits: tel.counter("cache", "hits"),
            misses: tel.counter("cache", "misses"),
            promotions: tel.counter("cache", "promotions"),
            evictions: tel.counter("cache", "evictions"),
            invalidations: tel.counter("cache", "invalidations"),
            updates: tel.counter("cache", "updates"),
            admitted: tel.counter("cache", "admitted"),
            rejected: tel.counter("cache", "rejected"),
            ghost_hits: tel.counter("cache", "ghost_hits"),
            demotions: tel.counter("cache", "demotions"),
            repromotions: tel.counter("cache", "repromotions"),
        }
    }
}

fn frame_need(payload_len: u64) -> u64 {
    SLOT_HEADER + payload_len + SLOT_TAIL
}

/// Manages the DRAM cache region of one memory server.
///
/// All methods run server-locally (promotion/eviction on the epoch thread,
/// updates on the proxy thread, invalidation on RPC threads) under the
/// server's cache mutex; remote clients only ever *read* the region.
#[derive(Debug)]
pub struct CacheManager {
    server_id: u8,
    region: MemRegion,
    alloc: FrameAllocator,
    entries: HashMap<u64, CacheEntry>,
    policy: CachePolicy,
    /// Logical clock for segment-LRU stamps.
    clock: u64,
    /// Bytes currently in the protected segment.
    protected_bytes: u64,
    /// Adaptive byte budget for the protected segment.
    protected_target: u64,
    /// Ghost list: recently evicted address → was it protected when evicted.
    ghost: HashMap<u64, bool>,
    ghost_order: VecDeque<u64>,
    /// TinyLFU doorkeeper: addresses that have already knocked once.
    doorkeeper: HashSet<u64>,
    demote: Option<DemoteArea>,
    stats: CacheStats,
    metrics: CacheMetrics,
}

#[derive(Debug)]
struct DemoteArea {
    region: MemRegion,
    alloc: FrameAllocator,
    entries: HashMap<u64, DemoteEntry>,
    order: VecDeque<u64>,
}

impl CacheManager {
    /// Creates a manager over the server's cache region, governed by
    /// `policy`. `demote` is the server-local NVM demote area (required iff
    /// `policy.demotion`); the DRAM byte budget is `region.len()` — the
    /// demote area is NVM and does not count against it.
    pub fn with_policy(
        server_id: u8,
        region: MemRegion,
        demote: Option<MemRegion>,
        policy: CachePolicy,
        telemetry: TelemetryConfig,
    ) -> Self {
        let capacity = region.len();
        let demote = if policy.demotion {
            demote.map(|r| {
                let cap = r.len();
                DemoteArea {
                    region: r,
                    alloc: FrameAllocator::new(0, cap),
                    entries: HashMap::new(),
                    order: VecDeque::new(),
                }
            })
        } else {
            None
        };
        CacheManager {
            server_id,
            region,
            alloc: FrameAllocator::new(0, capacity),
            entries: HashMap::new(),
            policy,
            clock: 0,
            protected_bytes: 0,
            protected_target: capacity / 2,
            ghost: HashMap::new(),
            ghost_order: VecDeque::new(),
            doorkeeper: HashSet::new(),
            demote,
            stats: CacheStats::default(),
            metrics: CacheMetrics::new(telemetry),
        }
    }

    /// The policy this manager was built with.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of frames parked in the demote area.
    pub fn demoted_len(&self) -> usize {
        self.demote.as_ref().map_or(0, |a| a.entries.len())
    }

    /// Whether `addr` has a copy in the demote area.
    pub fn has_demoted(&self, addr_raw: u64) -> bool {
        self.demote
            .as_ref()
            .is_some_and(|a| a.entries.contains_key(&addr_raw))
    }

    /// Whether the cache has warm memory of `addr` — on the ghost list or in
    /// the demote area. Remembered addresses bypass the hot threshold so a
    /// returning working set re-promotes on its first epoch back.
    pub fn remembers(&self, addr_raw: u64) -> bool {
        self.ghost.contains_key(&addr_raw) || self.has_demoted(addr_raw)
    }

    /// Looks up the cached copy of `addr` (raw payload-base address),
    /// returning the raw global address of its slot frame. A hit refreshes
    /// the frame's LRU stamp and upgrades it into the protected segment.
    pub fn lookup(&mut self, addr_raw: u64) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        let mut upgrade = None;
        let hit = match self.entries.get_mut(&addr_raw) {
            Some(e) => {
                e.stamp = clock;
                if !e.protected {
                    e.protected = true;
                    upgrade = Some(frame_need(e.payload_len));
                }
                Some(GlobalAddr::new(self.server_id, MemClass::DramCache, e.slot_off).raw())
            }
            None => None,
        };
        if let Some(need) = upgrade {
            self.protected_bytes += need;
            self.enforce_protected_target();
        }
        if hit.is_some() {
            self.metrics.hits.inc();
        } else {
            self.metrics.misses.inc();
        }
        hit
    }

    /// Returns whether `addr` is cached.
    pub fn contains(&self, addr_raw: u64) -> bool {
        self.entries.contains_key(&addr_raw)
    }

    /// Promotes an object: copies `payload` into a fresh slot and publishes
    /// it under `addr`. The admission filter decides whether it may evict
    /// resident frames. Returns `false` when rejected or it can never fit.
    ///
    /// # Errors
    ///
    /// Propagates device errors from slot writes.
    pub fn promote(
        &mut self,
        addr: GlobalAddr,
        payload: &[u8],
        score: u32,
    ) -> Result<bool, GengarError> {
        let addr_raw = addr.raw();
        if self.entries.contains_key(&addr_raw) {
            return Ok(true);
        }
        let ghost_hit = self.ghost_take(addr_raw, payload.len() as u64);
        let was_demoted = self.has_demoted(addr_raw);
        let admitted = self.insert_frame(
            addr_raw,
            payload,
            score,
            ghost_hit || was_demoted,
            ghost_hit || was_demoted,
        )?;
        if admitted {
            // The caller hands us a fresh payload; any parked demote copy is
            // now redundant (and possibly stale).
            self.demote_drop(addr_raw);
        }
        Ok(admitted)
    }

    /// Re-promotes `addr` from the demote area: one local NVM→DRAM copy, no
    /// NVM object read. Returns `false` when no demote copy exists (or the
    /// insert failed); the caller then takes the normal promote path.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn repromote(&mut self, addr_raw: u64, score: u32) -> Result<bool, GengarError> {
        let Some(d) = self
            .demote
            .as_ref()
            .and_then(|a| a.entries.get(&addr_raw).copied())
        else {
            return Ok(false);
        };
        if self.entries.contains_key(&addr_raw) {
            self.demote_drop(addr_raw);
            return Ok(true);
        }
        let mut payload = vec![0u8; d.len as usize];
        self.demote
            .as_ref()
            .expect("demote entry implies demote area")
            .region
            .read(d.off, &mut payload)?;
        let ghost_hit = self.ghost_take(addr_raw, d.len);
        let _ = ghost_hit;
        if self.insert_frame(addr_raw, &payload, score.max(d.score), true, true)? {
            self.demote_drop(addr_raw);
            self.stats.repromotions += 1;
            self.metrics.repromotions.inc();
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Allocates a slot (evicting per the admission filter) and publishes
    /// the frame. `bypass_admission` is set for proven-warm re-entries.
    fn insert_frame(
        &mut self,
        addr_raw: u64,
        payload: &[u8],
        score: u32,
        protected: bool,
        bypass_admission: bool,
    ) -> Result<bool, GengarError> {
        let need = frame_need(payload.len() as u64);
        if FrameAllocator::block_size(need).is_none_or(|b| b > self.alloc.capacity()) {
            return Ok(false);
        }
        let slot_off = loop {
            match self.alloc.alloc(need) {
                Ok(off) => break off,
                Err(_) => {
                    let Some((victim, victim_score)) = self.victim() else {
                        return Ok(false);
                    };
                    if !bypass_admission && !self.admission_allows(addr_raw, score, victim_score) {
                        self.stats.rejected += 1;
                        self.metrics.rejected.inc();
                        return Ok(false);
                    }
                    self.evict(victim)?;
                }
            }
        };
        let mut header = [0u8; SLOT_HEADER as usize];
        // Publish with an even version so readers accept it immediately.
        encode_slot_header(
            &mut header,
            addr_raw,
            2,
            checksum(payload),
            payload.len() as u64,
        );
        // Payload and tail version first, header (with the tag) last: a
        // concurrent reader of a recycled slot sees the old tag or the new
        // one, never a mix that passes tag + head/tail validation.
        self.region.write(slot_off + SLOT_HEADER, payload)?;
        self.region.write(
            slot_off + SLOT_HEADER + payload.len() as u64,
            &2u64.to_le_bytes(),
        )?;
        self.region.write(slot_off, &header)?;
        self.clock += 1;
        self.entries.insert(
            addr_raw,
            CacheEntry {
                slot_off,
                payload_len: payload.len() as u64,
                score,
                protected,
                stamp: self.clock,
            },
        );
        if protected {
            self.protected_bytes += need;
            self.enforce_protected_target();
        }
        self.stats.promotions += 1;
        self.metrics.promotions.inc();
        self.stats.admitted += 1;
        self.metrics.admitted.inc();
        Ok(true)
    }

    /// Whether `addr` (score `score`) may evict a frame scored
    /// `victim_score`.
    fn admission_allows(&mut self, addr_raw: u64, score: u32, victim_score: u32) -> bool {
        match self.policy.admission {
            AdmissionMode::ScoreOnly => victim_score <= score,
            AdmissionMode::TinyLfu => {
                let cap = self.policy.ghost_entries.saturating_mul(4).max(1024);
                if self.doorkeeper.len() >= cap {
                    self.doorkeeper.clear();
                }
                if self.doorkeeper.insert(addr_raw) {
                    // First eviction-requiring attempt: remember it, turn it
                    // away. A one-hit-wonder never comes back.
                    false
                } else {
                    score > victim_score
                }
            }
        }
    }

    /// Picks the eviction victim: coldest (then least-recently-hit) frame in
    /// probation, falling back to the protected segment only when probation
    /// is empty.
    fn victim(&self) -> Option<(u64, u32)> {
        let pick = |protected: bool| {
            self.entries
                .iter()
                .filter(|(_, e)| e.protected == protected)
                .min_by_key(|(_, e)| (e.score, e.stamp))
                .map(|(&a, e)| (a, e.score))
        };
        pick(false).or_else(|| pick(true))
    }

    /// Evicts `addr`: parks warm payloads in the demote area, records the
    /// address on the ghost list, then frees the slot.
    fn evict(&mut self, addr_raw: u64) -> Result<(), GengarError> {
        let Some(e) = self.entries.get(&addr_raw).copied() else {
            return Ok(());
        };
        if e.score >= 1 {
            self.demote_store(addr_raw, e)?;
        }
        self.ghost_insert(addr_raw, e.protected);
        self.remove(addr_raw, true)?;
        Ok(())
    }

    /// Removes `addr` from the ghost list; on a hit, adaptively resizes the
    /// protected target (ARC-style: misses to protected-evicted ghosts grow
    /// the protected segment, misses to probation-evicted ghosts shrink it).
    fn ghost_take(&mut self, addr_raw: u64, payload_len: u64) -> bool {
        let Some(from_protected) = self.ghost.remove(&addr_raw) else {
            return false;
        };
        let step = frame_need(payload_len);
        let capacity = self.alloc.capacity();
        let (lo, hi) = (capacity / 8, capacity.saturating_sub(capacity / 8));
        self.protected_target = if from_protected {
            (self.protected_target + step).min(hi)
        } else {
            self.protected_target.saturating_sub(step).max(lo)
        };
        self.stats.ghost_hits += 1;
        self.metrics.ghost_hits.inc();
        true
    }

    fn ghost_insert(&mut self, addr_raw: u64, from_protected: bool) {
        let cap = self.policy.ghost_entries;
        if cap == 0 {
            return;
        }
        if self.ghost.insert(addr_raw, from_protected).is_none() {
            self.ghost_order.push_back(addr_raw);
        }
        while self.ghost.len() > cap || self.ghost_order.len() > cap * 2 {
            let Some(old) = self.ghost_order.pop_front() else {
                break;
            };
            self.ghost.remove(&old);
        }
    }

    /// Demotes probation the least-recently-hit protected frames until the
    /// protected segment fits its adaptive byte target.
    fn enforce_protected_target(&mut self) {
        while self.protected_bytes > self.protected_target {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.protected)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&a, _)| a);
            let Some(a) = victim else { break };
            let e = self.entries.get_mut(&a).expect("victim exists");
            e.protected = false;
            self.protected_bytes = self
                .protected_bytes
                .saturating_sub(frame_need(e.payload_len));
        }
    }

    /// Copies an evicted frame's payload into the NVM demote area (epoch
    /// thread only — the foreground drain never pays for this write).
    fn demote_store(&mut self, addr_raw: u64, e: CacheEntry) -> Result<(), GengarError> {
        if self.demote.is_none() {
            return Ok(());
        }
        let mut payload = vec![0u8; e.payload_len as usize];
        self.region.read(e.slot_off + SLOT_HEADER, &mut payload)?;
        let area = self.demote.as_mut().expect("checked above");
        let need = e.payload_len.max(1);
        if FrameAllocator::block_size(need).is_none_or(|b| b > area.alloc.capacity()) {
            return Ok(());
        }
        let off = loop {
            match area.alloc.alloc(need) {
                Ok(off) => break off,
                Err(_) => {
                    // FIFO-evict the demote area; stale order entries (already
                    // dropped) are skipped.
                    let Some(old) = area.order.pop_front() else {
                        return Ok(());
                    };
                    if let Some(d) = area.entries.remove(&old) {
                        area.alloc.free(d.off)?;
                    }
                }
            }
        };
        area.region.write(off, &payload)?;
        area.entries.insert(
            addr_raw,
            DemoteEntry {
                off,
                len: e.payload_len,
                score: e.score,
            },
        );
        area.order.push_back(addr_raw);
        self.stats.demotions += 1;
        self.metrics.demotions.inc();
        Ok(())
    }

    /// Drops the demote-area copy of `addr`, if any.
    fn demote_drop(&mut self, addr_raw: u64) {
        if let Some(area) = self.demote.as_mut() {
            if let Some(d) = area.entries.remove(&addr_raw) {
                let _ = area.alloc.free(d.off);
            }
        }
    }

    fn remove(&mut self, addr_raw: u64, eviction: bool) -> Result<bool, GengarError> {
        if let Some(e) = self.entries.remove(&addr_raw) {
            if e.protected {
                self.protected_bytes = self
                    .protected_bytes
                    .saturating_sub(frame_need(e.payload_len));
            }
            // Clear the tag so racing clients with stale remap entries fail
            // validation instead of reading a recycled slot.
            self.region.write(e.slot_off, &0u64.to_le_bytes())?;
            self.alloc.free(e.slot_off)?;
            if eviction {
                self.stats.evictions += 1;
                self.metrics.evictions.inc();
            } else {
                self.stats.invalidations += 1;
                self.metrics.invalidations.inc();
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Invalidates the cached copy of `addr`, if any — including any parked
    /// demote copy, which is stale the moment the object changes. Returns
    /// whether a DRAM copy existed.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn invalidate(&mut self, addr_raw: u64) -> Result<bool, GengarError> {
        self.demote_drop(addr_raw);
        self.remove(addr_raw, false)
    }

    /// Applies a write of `data` at byte `rel_off` of the cached object
    /// `addr`, seqlock-style (odd version while mutating, checksum
    /// recomputed, even version after). Used by the proxy drain path to
    /// keep cached copies fresh. Returns whether the object was cached.
    ///
    /// # Errors
    ///
    /// Propagates device errors; out-of-object writes invalidate instead.
    pub fn update_range(
        &mut self,
        addr_raw: u64,
        rel_off: u64,
        data: &[u8],
    ) -> Result<bool, GengarError> {
        let entry = match self.entries.get(&addr_raw) {
            Some(e) => *e,
            None => {
                // A parked demote copy is stale the moment the object is
                // written; drop it rather than update it (the drain path
                // must never pay for a demote-area write).
                self.demote_drop(addr_raw);
                return Ok(false);
            }
        };
        if rel_off + data.len() as u64 > entry.payload_len {
            // A write larger than the cached frame: drop the copy.
            self.remove(addr_raw, false)?;
            return Ok(false);
        }
        let slot = entry.slot_off;
        let mut hdr_buf = [0u8; SLOT_HEADER as usize];
        self.region.read(slot, &mut hdr_buf)?;
        let hdr = decode_slot_header(&hdr_buf);
        // Seqlock update: head version odd, mutate, tail then head to the
        // new even version. The diagnostic checksum is cleared rather than
        // recomputed (readers validate via head/tail versions).
        self.region
            .write(slot + 8, &(hdr.version + 1).to_le_bytes())?;
        self.region.write(slot + SLOT_HEADER + rel_off, data)?;
        self.region.write(slot + 16, &0u64.to_le_bytes())?;
        self.region.write(
            slot + SLOT_HEADER + entry.payload_len,
            &(hdr.version + 2).to_le_bytes(),
        )?;
        self.region
            .write(slot + 8, &(hdr.version + 2).to_le_bytes())?;
        self.stats.updates += 1;
        self.metrics.updates.inc();
        Ok(true)
    }

    /// Refreshes entry scores from an epoch fold.
    pub fn refresh_scores(&mut self, folded: &[(u64, u32)]) {
        for &(addr, score) in folded {
            if let Some(e) = self.entries.get_mut(&addr) {
                e.score = score;
            }
        }
    }

    /// Ages every entry (halves scores) so stale entries become evictable.
    pub fn decay_scores(&mut self) {
        for e in self.entries.values_mut() {
            e.score >>= 1;
        }
        for d in self.demote.iter_mut().flat_map(|a| a.entries.values_mut()) {
            d.score >>= 1;
        }
    }

    /// Drops everything, including ghost/doorkeeper/demote state (used on
    /// recovery: DRAM contents are gone and warm memory is meaningless).
    pub fn clear(&mut self) {
        let addrs: Vec<u64> = self.entries.keys().copied().collect();
        for a in addrs {
            let _ = self.remove(a, false);
        }
        self.ghost.clear();
        self.ghost_order.clear();
        self.doorkeeper.clear();
        if let Some(area) = self.demote.as_mut() {
            for (_, d) in area.entries.drain() {
                let _ = area.alloc.free(d.off);
            }
            area.order.clear();
        }
        self.protected_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind};
    use std::sync::Arc;

    fn region(capacity: u64) -> MemRegion {
        let dev =
            Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), capacity).unwrap());
        MemRegion::whole(dev)
    }

    fn legacy_policy(capacity: u64) -> CachePolicy {
        CachePolicy::new()
            .capacity(capacity)
            .admission(AdmissionMode::ScoreOnly)
            .ghost_entries(0)
    }

    /// Legacy-behaviour manager (score-only admission, no ghost/demote) —
    /// what the deprecated `new`/`with_telemetry` shims produce.
    fn mgr(capacity: u64) -> CacheManager {
        CacheManager::with_policy(
            1,
            region(capacity),
            None,
            legacy_policy(capacity),
            TelemetryConfig::default(),
        )
    }

    fn adaptive_mgr(capacity: u64, ghost: usize, demotion: bool) -> CacheManager {
        let demote = demotion.then(|| region(capacity));
        CacheManager::with_policy(
            1,
            region(capacity),
            demote,
            CachePolicy::new()
                .capacity(capacity)
                .ghost_entries(ghost)
                .demotion(demotion),
            TelemetryConfig::default(),
        )
    }

    fn addr(off: u64) -> GlobalAddr {
        GlobalAddr::new(1, MemClass::Nvm, off)
    }

    #[test]
    fn promote_then_lookup() {
        let mut c = mgr(1 << 16);
        assert!(c.promote(addr(64), b"hot-data", 10).unwrap());
        let slot_raw = c.lookup(addr(64).raw()).unwrap();
        let slot = GlobalAddr::from_raw(slot_raw).unwrap();
        assert_eq!(slot.class(), MemClass::DramCache);
        // The slot frame validates: tag, even head version, matching tail.
        let mut frame = vec![0u8; (SLOT_HEADER + 8 + SLOT_TAIL) as usize];
        c.region.read(slot.offset(), &mut frame).unwrap();
        let h = decode_slot_header(&frame);
        assert_eq!(h.tag, addr(64).raw());
        assert_eq!(h.version % 2, 0);
        assert_eq!(h.len, 8);
        assert_eq!(h.checksum, checksum(b"hot-data"));
        assert_eq!(
            &frame[SLOT_HEADER as usize..(SLOT_HEADER + 8) as usize],
            b"hot-data"
        );
        let tail = u64::from_le_bytes(frame[(SLOT_HEADER + 8) as usize..].try_into().unwrap());
        assert_eq!(tail, h.version);
    }

    #[test]
    fn double_promote_is_idempotent() {
        let mut c = mgr(1 << 16);
        assert!(c.promote(addr(0), b"x", 1).unwrap());
        assert!(c.promote(addr(0), b"x", 1).unwrap());
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().promotions, 1);
    }

    #[test]
    fn invalidate_clears_tag() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"abc", 1).unwrap();
        let slot = GlobalAddr::from_raw(c.lookup(addr(0).raw()).unwrap()).unwrap();
        assert!(c.invalidate(addr(0).raw()).unwrap());
        assert!(c.lookup(addr(0).raw()).is_none());
        let mut tag = [0u8; 8];
        c.region.read(slot.offset(), &mut tag).unwrap();
        assert_eq!(u64::from_le_bytes(tag), 0);
        assert!(!c.invalidate(addr(0).raw()).unwrap());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn eviction_prefers_cold_entries() {
        // Capacity fits two 64-byte slots (32 hdr + payload).
        let mut c = mgr(128);
        assert!(c.promote(addr(0), b"aaaa", 1).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 5).unwrap());
        // A hotter third entry evicts the coldest.
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.lookup(addr(0).raw()).is_none(), "cold entry evicted");
        assert!(c.lookup(addr(64).raw()).is_some());
        assert!(c.lookup(addr(128).raw()).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn colder_candidate_does_not_evict_hotter_entries() {
        let mut c = mgr(128);
        assert!(c.promote(addr(0), b"aaaa", 10).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 10).unwrap());
        assert!(!c.promote(addr(128), b"cccc", 1).unwrap());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn oversized_object_rejected_without_eviction() {
        let mut c = mgr(256);
        c.promote(addr(0), b"keep", 1).unwrap();
        let big = vec![0u8; 1024];
        assert!(!c.promote(addr(64), &big, 100).unwrap());
        assert!(c.contains(addr(0).raw()));
    }

    #[test]
    fn update_range_bumps_head_and_tail_versions() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"hello world!", 1).unwrap();
        assert!(c.update_range(addr(0).raw(), 6, b"gengar").unwrap());
        let slot = GlobalAddr::from_raw(c.lookup(addr(0).raw()).unwrap()).unwrap();
        let mut frame = vec![0u8; (SLOT_HEADER + 12 + SLOT_TAIL) as usize];
        c.region.read(slot.offset(), &mut frame).unwrap();
        let h = decode_slot_header(&frame);
        assert_eq!(
            &frame[SLOT_HEADER as usize..(SLOT_HEADER + 12) as usize],
            b"hello gengar"
        );
        assert_eq!(h.version, 4);
        let tail = u64::from_le_bytes(frame[(SLOT_HEADER + 12) as usize..].try_into().unwrap());
        assert_eq!(tail, 4);
        assert_eq!(c.stats().updates, 1);
    }

    #[test]
    fn update_beyond_frame_invalidates() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"tiny", 1).unwrap();
        let long = vec![9u8; 100];
        assert!(!c.update_range(addr(0).raw(), 0, &long).unwrap());
        assert!(!c.contains(addr(0).raw()));
    }

    #[test]
    fn update_of_uncached_is_noop() {
        let mut c = mgr(1 << 16);
        assert!(!c.update_range(addr(0).raw(), 0, b"x").unwrap());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"a", 1).unwrap();
        c.promote(addr(64), b"b", 1).unwrap();
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn scores_refresh_and_decay() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"a", 8).unwrap();
        c.refresh_scores(&[(addr(0).raw(), 20)]);
        c.decay_scores();
        assert_eq!(c.entries[&addr(0).raw()].score, 10);
    }

    #[test]
    fn policy_builder_round_trips() {
        let p = CachePolicy::new()
            .capacity(123)
            .admission(AdmissionMode::ScoreOnly)
            .ghost_entries(7)
            .demotion(true)
            .hot_threshold(9)
            .cacheable_max(456)
            .sample_every(3);
        assert_eq!(p.capacity, 123);
        assert_eq!(p.admission, AdmissionMode::ScoreOnly);
        assert_eq!(p.ghost_entries, 7);
        assert!(p.demotion);
        assert_eq!(p.hot_threshold, 9);
        assert_eq!(p.cacheable_max, 456);
        assert_eq!(p.sample_every, 3);
        assert!(!CachePolicy::disabled().enabled);
        assert_eq!(CachePolicy::new(), CachePolicy::default());
    }

    #[test]
    fn doorkeeper_blocks_first_knock_then_admits_hotter() {
        let mut c = adaptive_mgr(128, 64, false);
        assert!(c.promote(addr(0), b"aaaa", 5).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 5).unwrap());
        // First eviction-requiring attempt: remembered, rejected — a
        // one-hit-wonder cannot displace resident frames.
        assert!(!c.promote(addr(128), b"cccc", 9).unwrap());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().rejected, 1);
        // Second knock with a strictly hotter score: admitted.
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.contains(addr(128).raw()));
        assert_eq!(c.stats().evictions, 1);
        // An equal-score candidate never wins a tie under TinyLFU.
        assert!(!c.promote(addr(192), b"dddd", 9).unwrap());
        assert!(!c.promote(addr(192), b"dddd", 5).unwrap());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ghost_hit_bypasses_doorkeeper() {
        let mut c = adaptive_mgr(128, 64, false);
        assert!(c.promote(addr(0), b"aaaa", 2).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 2).unwrap());
        // Evict addr(0): knock twice with a hotter candidate.
        assert!(!c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(!c.contains(addr(0).raw()));
        // addr(0) returns: it is on the ghost list, so it re-enters without
        // a doorkeeper round-trip even at a modest score.
        assert!(c.promote(addr(0), b"aaaa", 1).unwrap());
        assert_eq!(c.stats().ghost_hits, 1);
    }

    #[test]
    fn protected_frames_outlive_probation_under_pressure() {
        // Four-slot cache: hit one frame so it is protected, then pressure.
        let mut c = adaptive_mgr(256, 64, false);
        assert!(c.promote(addr(0), b"aaaa", 3).unwrap());
        assert!(c.lookup(addr(0).raw()).is_some()); // upgrade to protected
        assert!(c.promote(addr(64), b"bbbb", 3).unwrap());
        assert!(c.promote(addr(128), b"cccc", 3).unwrap());
        assert!(c.promote(addr(192), b"dddd", 3).unwrap());
        // Admit a hotter candidate (two knocks): the victim must come from
        // probation even though addr(0) has an equal score.
        assert!(!c.promote(addr(256), b"eeee", 9).unwrap());
        assert!(c.promote(addr(256), b"eeee", 9).unwrap());
        assert!(c.contains(addr(0).raw()), "protected frame survived");
    }

    #[test]
    fn demotion_parks_warm_frames_and_repromotes_locally() {
        let mut c = adaptive_mgr(128, 64, true);
        assert!(c.promote(addr(0), b"warm", 3).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 3).unwrap());
        // Evict addr(0) via a hotter candidate (two knocks).
        assert!(!c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(!c.contains(addr(0).raw()));
        assert!(c.has_demoted(addr(0).raw()));
        assert_eq!(c.stats().demotions, 1);
        // Re-promotion is a local demote→DRAM copy: no payload needed.
        assert!(c.repromote(addr(0).raw(), 4).unwrap());
        assert!(!c.has_demoted(addr(0).raw()));
        assert_eq!(c.stats().repromotions, 1);
        let slot = GlobalAddr::from_raw(c.lookup(addr(0).raw()).unwrap()).unwrap();
        let mut payload = [0u8; 4];
        c.region
            .read(slot.offset() + SLOT_HEADER, &mut payload)
            .unwrap();
        assert_eq!(&payload, b"warm");
    }

    #[test]
    fn writes_drop_stale_demote_copies() {
        let mut c = adaptive_mgr(128, 64, true);
        assert!(c.promote(addr(0), b"warm", 3).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 3).unwrap());
        assert!(!c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.has_demoted(addr(0).raw()));
        // A drain write to the (now uncached) object invalidates the parked
        // copy — repromote must refuse rather than resurrect stale bytes.
        assert!(!c.update_range(addr(0).raw(), 0, b"new!").unwrap());
        assert!(!c.has_demoted(addr(0).raw()));
        assert!(!c.repromote(addr(0).raw(), 9).unwrap());
    }

    #[test]
    fn invalidate_also_drops_demote_copy() {
        let mut c = adaptive_mgr(128, 64, true);
        assert!(c.promote(addr(0), b"warm", 3).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 3).unwrap());
        assert!(!c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.has_demoted(addr(0).raw()));
        c.invalidate(addr(0).raw()).unwrap();
        assert!(!c.has_demoted(addr(0).raw()));
        assert!(!c.remembers(addr(0).raw()) || c.ghost.contains_key(&addr(0).raw()));
    }

    #[test]
    fn clear_wipes_warm_memory() {
        let mut c = adaptive_mgr(128, 64, true);
        assert!(c.promote(addr(0), b"warm", 3).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 3).unwrap());
        assert!(!c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.demoted_len(), 0);
        assert!(!c.remembers(addr(0).raw()));
    }
}
