//! Server-side DRAM cache of hot objects.
//!
//! Promoted objects get a *slot* in the server's DRAM cache region. A slot
//! holds a [`crate::layout::SlotHeader`] (tag = the object's global address,
//! a seqlock version, a diagnostic checksum, the length), the payload copy,
//! and a trailing tail version. Clients read slots with a single one-sided
//! READ and validate tag + even head version + head==tail (FaRM-style) — a
//! stale, torn or mid-update frame fails validation and the client falls
//! back to NVM, so remap staleness is always safe.

use std::collections::HashMap;

use gengar_hybridmem::MemRegion;
use gengar_telemetry::{CounterHandle, TelemetryConfig};

use crate::addr::{GlobalAddr, MemClass};
use crate::alloc::SlabAllocator;
use crate::error::GengarError;
use crate::layout::{checksum, decode_slot_header, encode_slot_header, SLOT_HEADER, SLOT_TAIL};

/// One cached object.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    slot_off: u64,
    payload_len: u64,
    score: u32,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Objects promoted into the cache.
    pub promotions: u64,
    /// Objects evicted for capacity.
    pub evictions: u64,
    /// Objects invalidated by writes/frees.
    pub invalidations: u64,
    /// In-place updates applied by the proxy drain path.
    pub updates: u64,
}

/// Global-registry handles under the `cache` component. Per-instance
/// [`CacheStats`] stays authoritative for tests; these feed the harness
/// telemetry export.
#[derive(Debug, Clone, Default)]
struct CacheMetrics {
    hits: CounterHandle,
    misses: CounterHandle,
    promotions: CounterHandle,
    evictions: CounterHandle,
    invalidations: CounterHandle,
    updates: CounterHandle,
}

impl CacheMetrics {
    fn new(config: TelemetryConfig) -> Self {
        let tel = config.handle();
        CacheMetrics {
            hits: tel.counter("cache", "hits"),
            misses: tel.counter("cache", "misses"),
            promotions: tel.counter("cache", "promotions"),
            evictions: tel.counter("cache", "evictions"),
            invalidations: tel.counter("cache", "invalidations"),
            updates: tel.counter("cache", "updates"),
        }
    }
}

/// Manages the DRAM cache region of one memory server.
///
/// All methods run server-locally (promotion/eviction on the epoch thread,
/// updates on the proxy thread, invalidation on RPC threads) under the
/// server's cache mutex; remote clients only ever *read* the region.
#[derive(Debug)]
pub struct CacheManager {
    server_id: u8,
    region: MemRegion,
    alloc: SlabAllocator,
    entries: HashMap<u64, CacheEntry>,
    stats: CacheStats,
    metrics: CacheMetrics,
}

impl CacheManager {
    /// Creates a manager over the server's cache region.
    pub fn new(server_id: u8, region: MemRegion) -> Self {
        Self::with_telemetry(server_id, region, TelemetryConfig::default())
    }

    /// Creates a manager whose global-registry metrics follow `telemetry`
    /// (the server threads this from [`crate::ServerConfig`]).
    pub fn with_telemetry(server_id: u8, region: MemRegion, telemetry: TelemetryConfig) -> Self {
        let capacity = region.len();
        CacheManager {
            server_id,
            region,
            alloc: SlabAllocator::new(0, capacity),
            entries: HashMap::new(),
            stats: CacheStats::default(),
            metrics: CacheMetrics::new(telemetry),
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up the cached copy of `addr` (raw payload-base address),
    /// returning the raw global address of its slot frame.
    pub fn lookup(&self, addr_raw: u64) -> Option<u64> {
        let hit = self
            .entries
            .get(&addr_raw)
            .map(|e| GlobalAddr::new(self.server_id, MemClass::DramCache, e.slot_off).raw());
        if hit.is_some() {
            self.metrics.hits.inc();
        } else {
            self.metrics.misses.inc();
        }
        hit
    }

    /// Returns whether `addr` is cached.
    pub fn contains(&self, addr_raw: u64) -> bool {
        self.entries.contains_key(&addr_raw)
    }

    /// Promotes an object: copies `payload` into a fresh slot and publishes
    /// it under `addr`. Evicts colder entries if needed. Returns `false`
    /// (without evicting) when the object can never fit.
    ///
    /// # Errors
    ///
    /// Propagates device errors from slot writes.
    pub fn promote(
        &mut self,
        addr: GlobalAddr,
        payload: &[u8],
        score: u32,
    ) -> Result<bool, GengarError> {
        let addr_raw = addr.raw();
        if self.entries.contains_key(&addr_raw) {
            return Ok(true);
        }
        let need = SLOT_HEADER + payload.len() as u64 + SLOT_TAIL;
        if SlabAllocator::block_size(need).is_none_or(|b| b > self.alloc.capacity()) {
            return Ok(false);
        }
        let slot_off = loop {
            match self.alloc.alloc(need) {
                Ok(off) => break off,
                Err(_) => {
                    if !self.evict_coldest(score)? {
                        return Ok(false);
                    }
                }
            }
        };
        let mut header = [0u8; SLOT_HEADER as usize];
        // Publish with an even version so readers accept it immediately.
        encode_slot_header(
            &mut header,
            addr_raw,
            2,
            checksum(payload),
            payload.len() as u64,
        );
        // Payload and tail version first, header (with the tag) last: a
        // concurrent reader of a recycled slot sees the old tag or the new
        // one, never a mix that passes tag + head/tail validation.
        self.region.write(slot_off + SLOT_HEADER, payload)?;
        self.region.write(
            slot_off + SLOT_HEADER + payload.len() as u64,
            &2u64.to_le_bytes(),
        )?;
        self.region.write(slot_off, &header)?;
        self.entries.insert(
            addr_raw,
            CacheEntry {
                slot_off,
                payload_len: payload.len() as u64,
                score,
            },
        );
        self.stats.promotions += 1;
        self.metrics.promotions.inc();
        Ok(true)
    }

    /// Evicts the lowest-score entry strictly colder than `than`. Returns
    /// whether anything was evicted.
    fn evict_coldest(&mut self, than: u32) -> Result<bool, GengarError> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.score)
            .map(|(&a, e)| (a, e.score));
        match victim {
            Some((addr, score)) if score <= than => {
                self.remove(addr, true)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn remove(&mut self, addr_raw: u64, eviction: bool) -> Result<bool, GengarError> {
        if let Some(e) = self.entries.remove(&addr_raw) {
            // Clear the tag so racing clients with stale remap entries fail
            // validation instead of reading a recycled slot.
            self.region.write(e.slot_off, &0u64.to_le_bytes())?;
            self.alloc.free(e.slot_off)?;
            if eviction {
                self.stats.evictions += 1;
                self.metrics.evictions.inc();
            } else {
                self.stats.invalidations += 1;
                self.metrics.invalidations.inc();
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Invalidates the cached copy of `addr`, if any. Returns whether a
    /// copy existed.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn invalidate(&mut self, addr_raw: u64) -> Result<bool, GengarError> {
        self.remove(addr_raw, false)
    }

    /// Applies a write of `data` at byte `rel_off` of the cached object
    /// `addr`, seqlock-style (odd version while mutating, checksum
    /// recomputed, even version after). Used by the proxy drain path to
    /// keep cached copies fresh. Returns whether the object was cached.
    ///
    /// # Errors
    ///
    /// Propagates device errors; out-of-object writes invalidate instead.
    pub fn update_range(
        &mut self,
        addr_raw: u64,
        rel_off: u64,
        data: &[u8],
    ) -> Result<bool, GengarError> {
        let entry = match self.entries.get(&addr_raw) {
            Some(e) => *e,
            None => return Ok(false),
        };
        if rel_off + data.len() as u64 > entry.payload_len {
            // A write larger than the cached frame: drop the copy.
            self.remove(addr_raw, false)?;
            return Ok(false);
        }
        let slot = entry.slot_off;
        let mut hdr_buf = [0u8; SLOT_HEADER as usize];
        self.region.read(slot, &mut hdr_buf)?;
        let hdr = decode_slot_header(&hdr_buf);
        // Seqlock update: head version odd, mutate, tail then head to the
        // new even version. The diagnostic checksum is cleared rather than
        // recomputed (readers validate via head/tail versions).
        self.region
            .write(slot + 8, &(hdr.version + 1).to_le_bytes())?;
        self.region.write(slot + SLOT_HEADER + rel_off, data)?;
        self.region.write(slot + 16, &0u64.to_le_bytes())?;
        self.region.write(
            slot + SLOT_HEADER + entry.payload_len,
            &(hdr.version + 2).to_le_bytes(),
        )?;
        self.region
            .write(slot + 8, &(hdr.version + 2).to_le_bytes())?;
        self.stats.updates += 1;
        self.metrics.updates.inc();
        Ok(true)
    }

    /// Refreshes entry scores from an epoch fold.
    pub fn refresh_scores(&mut self, folded: &[(u64, u32)]) {
        for &(addr, score) in folded {
            if let Some(e) = self.entries.get_mut(&addr) {
                e.score = score;
            }
        }
    }

    /// Ages every entry (halves scores) so stale entries become evictable.
    pub fn decay_scores(&mut self) {
        for e in self.entries.values_mut() {
            e.score >>= 1;
        }
    }

    /// Drops everything (used on recovery: DRAM contents are gone).
    pub fn clear(&mut self) {
        let addrs: Vec<u64> = self.entries.keys().copied().collect();
        for a in addrs {
            let _ = self.remove(a, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind};
    use std::sync::Arc;

    fn mgr(capacity: u64) -> CacheManager {
        let dev =
            Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), capacity).unwrap());
        CacheManager::new(1, MemRegion::whole(dev))
    }

    fn addr(off: u64) -> GlobalAddr {
        GlobalAddr::new(1, MemClass::Nvm, off)
    }

    #[test]
    fn promote_then_lookup() {
        let mut c = mgr(1 << 16);
        assert!(c.promote(addr(64), b"hot-data", 10).unwrap());
        let slot_raw = c.lookup(addr(64).raw()).unwrap();
        let slot = GlobalAddr::from_raw(slot_raw).unwrap();
        assert_eq!(slot.class(), MemClass::DramCache);
        // The slot frame validates: tag, even head version, matching tail.
        let mut frame = vec![0u8; (SLOT_HEADER + 8 + SLOT_TAIL) as usize];
        c.region.read(slot.offset(), &mut frame).unwrap();
        let h = decode_slot_header(&frame);
        assert_eq!(h.tag, addr(64).raw());
        assert_eq!(h.version % 2, 0);
        assert_eq!(h.len, 8);
        assert_eq!(h.checksum, checksum(b"hot-data"));
        assert_eq!(
            &frame[SLOT_HEADER as usize..(SLOT_HEADER + 8) as usize],
            b"hot-data"
        );
        let tail = u64::from_le_bytes(frame[(SLOT_HEADER + 8) as usize..].try_into().unwrap());
        assert_eq!(tail, h.version);
    }

    #[test]
    fn double_promote_is_idempotent() {
        let mut c = mgr(1 << 16);
        assert!(c.promote(addr(0), b"x", 1).unwrap());
        assert!(c.promote(addr(0), b"x", 1).unwrap());
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().promotions, 1);
    }

    #[test]
    fn invalidate_clears_tag() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"abc", 1).unwrap();
        let slot = GlobalAddr::from_raw(c.lookup(addr(0).raw()).unwrap()).unwrap();
        assert!(c.invalidate(addr(0).raw()).unwrap());
        assert!(c.lookup(addr(0).raw()).is_none());
        let mut tag = [0u8; 8];
        c.region.read(slot.offset(), &mut tag).unwrap();
        assert_eq!(u64::from_le_bytes(tag), 0);
        assert!(!c.invalidate(addr(0).raw()).unwrap());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn eviction_prefers_cold_entries() {
        // Capacity fits two 64-byte slots (32 hdr + payload).
        let mut c = mgr(128);
        assert!(c.promote(addr(0), b"aaaa", 1).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 5).unwrap());
        // A hotter third entry evicts the coldest.
        assert!(c.promote(addr(128), b"cccc", 9).unwrap());
        assert!(c.lookup(addr(0).raw()).is_none(), "cold entry evicted");
        assert!(c.lookup(addr(64).raw()).is_some());
        assert!(c.lookup(addr(128).raw()).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn colder_candidate_does_not_evict_hotter_entries() {
        let mut c = mgr(128);
        assert!(c.promote(addr(0), b"aaaa", 10).unwrap());
        assert!(c.promote(addr(64), b"bbbb", 10).unwrap());
        assert!(!c.promote(addr(128), b"cccc", 1).unwrap());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn oversized_object_rejected_without_eviction() {
        let mut c = mgr(256);
        c.promote(addr(0), b"keep", 1).unwrap();
        let big = vec![0u8; 1024];
        assert!(!c.promote(addr(64), &big, 100).unwrap());
        assert!(c.contains(addr(0).raw()));
    }

    #[test]
    fn update_range_bumps_head_and_tail_versions() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"hello world!", 1).unwrap();
        assert!(c.update_range(addr(0).raw(), 6, b"gengar").unwrap());
        let slot = GlobalAddr::from_raw(c.lookup(addr(0).raw()).unwrap()).unwrap();
        let mut frame = vec![0u8; (SLOT_HEADER + 12 + SLOT_TAIL) as usize];
        c.region.read(slot.offset(), &mut frame).unwrap();
        let h = decode_slot_header(&frame);
        assert_eq!(
            &frame[SLOT_HEADER as usize..(SLOT_HEADER + 12) as usize],
            b"hello gengar"
        );
        assert_eq!(h.version, 4);
        let tail = u64::from_le_bytes(frame[(SLOT_HEADER + 12) as usize..].try_into().unwrap());
        assert_eq!(tail, 4);
        assert_eq!(c.stats().updates, 1);
    }

    #[test]
    fn update_beyond_frame_invalidates() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"tiny", 1).unwrap();
        let long = vec![9u8; 100];
        assert!(!c.update_range(addr(0).raw(), 0, &long).unwrap());
        assert!(!c.contains(addr(0).raw()));
    }

    #[test]
    fn update_of_uncached_is_noop() {
        let mut c = mgr(1 << 16);
        assert!(!c.update_range(addr(0).raw(), 0, b"x").unwrap());
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"a", 1).unwrap();
        c.promote(addr(64), b"b", 1).unwrap();
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn scores_refresh_and_decay() {
        let mut c = mgr(1 << 16);
        c.promote(addr(0), b"a", 8).unwrap();
        c.refresh_scores(&[(addr(0).raw(), 20)]);
        c.decay_scores();
        assert_eq!(c.entries[&addr(0).raw()].score, 10);
    }
}
