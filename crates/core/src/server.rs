//! The Gengar memory server.
//!
//! Each server contributes NVM and DRAM to the pool. It exports four RDMA
//! regions (NVM data, DRAM cache, ADR staging rings, control words) and
//! runs three kinds of background work:
//!
//! * **RPC threads** (one per connection) serve the control plane: mount,
//!   allocation, hotness reports, flush/invalidate, staging setup.
//! * The **epoch thread** folds hotness reports and promotes hot objects
//!   into the DRAM cache.
//! * The **proxy thread** drains staged writes from the per-client rings to
//!   NVM, keeps cached copies fresh, and advances durable watermarks.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gengar_hybridmem::{MemDevice, MemRegion};
use gengar_rdma::{
    Access, CompletionQueue, Endpoint, Fabric, MemoryRegion, ProtectionDomain, QpOptions, Qpn,
    QueuePair, RdmaNode, Sge, WcOpcode,
};
use gengar_telemetry::{CounterHandle, GaugeHandle, HistogramHandle, TelemetryConfig};
use parking_lot::{Mutex, RwLock};

use crate::addr::{GlobalAddr, MemClass};
use crate::alloc::SlabAllocator;
use crate::cache::{CacheManager, CacheStats};
use crate::config::ServerConfig;
use crate::error::GengarError;
use crate::health::HealthPlane;
use crate::hotness::HotnessMonitor;
use crate::layout::{checksum, decode_record_header, lockword, OBJ_HEADER};
use crate::proto::{
    err_code, MountInfo, RemapUpdate, Request, Response, MAX_INSPECT_JSON, NO_BACKUP,
};
use crate::proxy::RingLayout;
use crate::qos::QosPlane;
use crate::rpc::{RpcServerConn, RPC_BUF_BYTES};

/// Everything a client needs after [`MemoryServer::accept`]: three
/// endpoints (control RPC, one-sided data, proxy ring) on the client side.
#[derive(Debug)]
pub struct ClientChannel {
    /// The client id the server assigned to this mount. Hand it back via
    /// [`MemoryServer::release_client`] if the handshake fails before any
    /// data is staged, so reconnect storms don't exhaust `max_clients`.
    pub cid: u32,
    /// Control-plane endpoint (drive with [`crate::rpc::RpcClient`]).
    pub rpc: Endpoint,
    /// Data-plane endpoint for one-sided READ/WRITE/CAS.
    pub data: Endpoint,
    /// Proxy endpoint for staged writes.
    pub proxy: Endpoint,
}

/// Everything a client needs after [`MemoryServer::accept_mirror`]: a
/// dedicated proxy endpoint whose ring on the *backup* server mirrors
/// staged writes destined for the primary it wards.
#[derive(Debug)]
pub struct MirrorChannel {
    /// The mirror ring's client id on the backup (indexes its ring, its
    /// ctl word and its shadow watermark word).
    pub cid: u32,
    /// Byte offset of the mirror ring within the backup's staging region.
    pub ring_offset: u64,
    /// Replica epoch of this mirror tenure. The client stamps it into
    /// every record header; the backup ignores records from other epochs,
    /// so a reused ring id cannot leak a stale tenure's writes into a
    /// promotion replay.
    pub epoch: u32,
    /// Proxy endpoint for the mirror WRITE_WITH_IMM fan-out.
    pub proxy: Endpoint,
}

/// Server-side telemetry handles (`proxy.*` drain-side and `server.*`),
/// resolved once at launch from [`ServerConfig::telemetry`].
#[derive(Debug, Clone, Default)]
struct ServerMetrics {
    /// Completions waiting in the proxy drain CQs (staged records the
    /// drain threads have not reached yet).
    drain_backlog: GaugeHandle,
    /// Staged records durably applied to NVM.
    drained_records: CounterHandle,
    /// Latency of draining one staged record.
    drain_ns: HistogramHandle,
    /// Control-plane requests served.
    rpc_requests: CounterHandle,
    /// Promotions this server performed (it replayed mirror rings and took
    /// over a dead primary's objects via its shadow image).
    promotions: CounterHandle,
    /// Milliseconds since this server's shadow image last advanced (mirror
    /// drain, promotion replay or image install). -1 = shadow never
    /// written; refreshed by the epoch thread.
    shadow_staleness_ms: GaugeHandle,
}

impl ServerMetrics {
    fn new(config: TelemetryConfig) -> Self {
        let tel = config.handle();
        ServerMetrics {
            drain_backlog: tel.gauge("proxy", "drain_backlog"),
            drained_records: tel.counter("proxy", "drained_records"),
            drain_ns: tel.histogram("proxy", "drain_ns"),
            rpc_requests: tel.counter("server", "rpc_requests"),
            promotions: tel.counter("replica", "promotions"),
            shadow_staleness_ms: tel.gauge("replica", "shadow_staleness_ms"),
        }
    }
}

/// One mirror ring's identity: which primary it wards and the replica
/// epoch records must be stamped with to count.
#[derive(Debug, Clone, Copy)]
struct MirrorRing {
    ward: u8,
    epoch: u32,
}

struct ClientTable {
    next_id: u32,
    /// Ids handed back by [`MemoryServer::release_client`] after a failed
    /// mount handshake, reused before `next_id` grows. Keeps reconnect
    /// storms (e.g. re-dialling through a partition) from exhausting
    /// `max_clients`.
    free_ids: Vec<u32>,
    /// Server-side proxy QPN -> client id (routes drain completions).
    proxy_clients: HashMap<Qpn, u32>,
    /// Server-side proxy QPs (for re-posting receives).
    proxy_qps: HashMap<u32, Arc<QueuePair>>,
    /// Client ids whose ring is a *mirror* lane: drained records apply to
    /// the shadow image of the warded primary, not local NVM.
    mirror_rings: HashMap<u32, MirrorRing>,
}

pub(crate) struct ServerInner {
    id: u8,
    config: ServerConfig,
    ring: RingLayout,
    node: Arc<RdmaNode>,
    pd: ProtectionDomain,
    nvm_dev: Arc<MemDevice>,
    staging_dev: Arc<MemDevice>,
    cache_dev: Arc<MemDevice>,
    ctl_dev: Arc<MemDevice>,
    msg_dev: Arc<MemDevice>,
    nvm_mr: Arc<MemoryRegion>,
    cache_mr: Arc<MemoryRegion>,
    staging_mr: Arc<MemoryRegion>,
    ctl_mr: Arc<MemoryRegion>,
    /// Shadow NVM (same geometry as `nvm_dev`): a standby image of the
    /// server this one backs up. `None` when replication is off — no
    /// memory is allocated and no path pays for it.
    shadow_dev: Option<Arc<MemDevice>>,
    shadow_mr: Option<Arc<MemoryRegion>>,
    /// Which server backs *this* one up ([`NO_BACKUP`] = unreplicated).
    /// Published to clients in [`MountInfo`] and via `QueryReplica`; the
    /// cluster's rebalance thread rewrites it when a backup dies.
    backup: Mutex<u8>,
    /// Primaries this server has promoted for: their addresses are served
    /// from the shadow image on the data/control planes.
    promoted: Mutex<HashSet<u8>>,
    /// The single primary the shadow is dedicated to (`None` until the
    /// first mirror lane, promotion or image install claims it). There is
    /// ONE shadow device and every server's NVM offsets overlap, so bytes
    /// from two different wards in the same shadow would alias: every path
    /// that touches the shadow (mirror drains, promotion replays, image
    /// installs) must hold this lock and match the claim. A claim is only
    /// retargeted by [`MemoryServer::install_shadow_image`], which refuses
    /// while the old ward is promoted.
    shadow_ward: RwLock<Option<u8>>,
    /// Held for read by the proxy drain while it applies a record to NVM
    /// (payload + watermark), for write by [`MemoryServer::nvm_image`]
    /// while it copies the region — so a rebalance snapshot can never
    /// capture a half-applied record.
    nvm_quiesce: RwLock<()>,
    /// Replica-epoch source for mirror tenures (starts at 1; epoch 0 in a
    /// record header means "unreplicated").
    mirror_epoch: AtomicU32,
    alloc: Mutex<SlabAllocator>,
    /// payload base offset -> payload length, ordered for containment
    /// lookups.
    objects: RwLock<BTreeMap<u64, u64>>,
    hotness: Mutex<HotnessMonitor>,
    cache: Mutex<CacheManager>,
    clients: Mutex<ClientTable>,
    /// One receive CQ per proxy drain thread; rings are pinned to threads
    /// by client id so each ring's records drain in order.
    proxy_recv_cqs: Vec<Arc<CompletionQueue>>,
    metrics: ServerMetrics,
    /// The cluster's QoS plane (shared across servers); `None` = QoS off.
    qos: Option<Arc<QosPlane>>,
    /// The health plane answering `Inspect` (cluster-shared or private);
    /// `None` = health off, `Inspect` returns the minimal "unknown" doc.
    health: Option<Arc<HealthPlane>>,
    /// When the shadow image last advanced (mirror drain, promotion replay
    /// or image install). Feeds `replica.shadow_staleness_ms`.
    last_shadow_update: Mutex<Option<Instant>>,
    shutdown: AtomicBool,
}

/// A running Gengar memory server.
pub struct MemoryServer {
    inner: Arc<ServerInner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for MemoryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryServer")
            .field("id", &self.inner.id)
            .field("nvm_capacity", &self.inner.config.nvm_capacity)
            .finish()
    }
}

fn round_up(x: u64, to: u64) -> u64 {
    x.div_ceil(to) * to
}

impl MemoryServer {
    /// Creates the server's devices and regions on a fresh fabric node and
    /// launches its background threads.
    ///
    /// # Errors
    ///
    /// Propagates device/region/registration failures.
    pub fn launch(
        fabric: &Arc<Fabric>,
        id: u8,
        config: ServerConfig,
    ) -> Result<Arc<MemoryServer>, GengarError> {
        // A standalone server owns a private plane; clusters pass a shared
        // one through `launch_with_qos` so tenants span servers.
        let qos = config
            .qos
            .enabled
            .then(|| QosPlane::new(config.qos.clone(), config.telemetry));
        Self::launch_with_qos(fabric, id, config, qos)
    }

    /// Like [`MemoryServer::launch`], but with an explicit (typically
    /// cluster-shared) QoS plane. `None` disables QoS for this server
    /// regardless of `config.qos.enabled`.
    ///
    /// # Errors
    ///
    /// Propagates device/region/registration failures.
    pub fn launch_with_qos(
        fabric: &Arc<Fabric>,
        id: u8,
        config: ServerConfig,
        qos: Option<Arc<QosPlane>>,
    ) -> Result<Arc<MemoryServer>, GengarError> {
        // A standalone server owns a private health plane (one sampler over
        // the process registry); clusters pass a shared one through
        // `launch_full` so one tick thread serves every server's `Inspect`.
        let health = config.health.enabled.then(|| {
            let plane = HealthPlane::new(config.health.clone(), config.telemetry);
            plane.start();
            plane
        });
        Self::launch_full(fabric, id, config, qos, health)
    }

    /// Like [`MemoryServer::launch_with_qos`], but with an explicit
    /// (typically cluster-shared) health plane. `None` disables the health
    /// plane for this server regardless of `config.health.enabled` —
    /// `Inspect` then answers with the minimal "unknown" document.
    ///
    /// # Errors
    ///
    /// Propagates device/region/registration failures.
    pub fn launch_full(
        fabric: &Arc<Fabric>,
        id: u8,
        config: ServerConfig,
        qos: Option<Arc<QosPlane>>,
        health: Option<Arc<HealthPlane>>,
    ) -> Result<Arc<MemoryServer>, GengarError> {
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        let ring = RingLayout::for_ring_bytes(config.staging_ring_capacity);

        let wm_area = round_up(config.max_clients as u64 * 8, 4096);
        let nvm_capacity = wm_area + config.nvm_capacity;
        let nvm_dev = Arc::new(MemDevice::with_telemetry(
            0,
            config.nvm_profile.clone(),
            nvm_capacity,
            "nvm",
            config.telemetry,
        )?);
        let cache_dev = Arc::new(MemDevice::with_telemetry(
            1,
            config.dram_profile.clone(),
            config.cache.capacity.max(4096),
            "dram_cache",
            config.telemetry,
        )?);
        let staging_dev = Arc::new(MemDevice::with_telemetry(
            2,
            config.staging_profile.clone(),
            ring.ring_bytes() * config.max_clients as u64,
            "staging",
            config.telemetry,
        )?);
        let ctl_dev = Arc::new(MemDevice::new(
            3,
            config.dram_profile.clone(),
            round_up(config.max_clients as u64 * 8, 4096),
        )?);
        let msg_dev = Arc::new(MemDevice::new(
            4,
            config.dram_profile.clone(),
            config.max_clients as u64 * RPC_BUF_BYTES,
        )?);
        // The shadow image of the server this one backs up: NVM-profile and
        // NVM-shaped (watermark area + pool), so a promoted backup can
        // serve the dead primary's addresses at unchanged offsets.
        let shadow_dev = if config.replication.enabled {
            Some(Arc::new(MemDevice::with_telemetry(
                5,
                config.nvm_profile.clone(),
                nvm_capacity,
                "shadow",
                config.telemetry,
            )?))
        } else {
            None
        };
        if config.crash_sim {
            nvm_dev.enable_crash_sim();
            staging_dev.enable_crash_sim();
            if let Some(shadow) = &shadow_dev {
                shadow.enable_crash_sim();
            }
        }

        let nvm_mr = pd.reg_mr(MemRegion::whole(Arc::clone(&nvm_dev)), Access::all())?;
        let cache_mr = pd.reg_mr(
            MemRegion::whole(Arc::clone(&cache_dev)),
            Access::LOCAL_WRITE | Access::REMOTE_READ,
        )?;
        let staging_mr = pd.reg_mr(
            MemRegion::whole(Arc::clone(&staging_dev)),
            Access::LOCAL_WRITE | Access::REMOTE_WRITE,
        )?;
        let ctl_mr = pd.reg_mr(
            MemRegion::whole(Arc::clone(&ctl_dev)),
            Access::LOCAL_WRITE | Access::REMOTE_READ,
        )?;
        let shadow_mr = match &shadow_dev {
            Some(dev) => Some(pd.reg_mr(MemRegion::whole(Arc::clone(dev)), Access::all())?),
            None => None,
        };

        // The NVM demote area is server-local (never registered as an MR):
        // evicted-but-warm frames park here so re-promotion is one local
        // NVM→DRAM copy. Written only by the epoch thread, so the foreground
        // proxy drain never contends with demotion traffic.
        let demote_region = if config.cache.enabled && config.cache.demotion {
            let demote_dev = Arc::new(MemDevice::with_telemetry(
                6,
                config.nvm_profile.clone(),
                config.cache.capacity.max(4096),
                "demote",
                config.telemetry,
            )?);
            Some(MemRegion::whole(demote_dev))
        } else {
            None
        };
        let cache = CacheManager::with_policy(
            id,
            MemRegion::whole(Arc::clone(&cache_dev)),
            demote_region,
            config.cache,
            config.telemetry,
        );
        let inner = Arc::new(ServerInner {
            id,
            ring,
            alloc: Mutex::new(SlabAllocator::new(wm_area, config.nvm_capacity)),
            objects: RwLock::new(BTreeMap::new()),
            hotness: Mutex::new(HotnessMonitor::with_policy(&config.cache, config.telemetry)),
            cache: Mutex::new(cache),
            clients: Mutex::new(ClientTable {
                next_id: 0,
                free_ids: Vec::new(),
                proxy_clients: HashMap::new(),
                proxy_qps: HashMap::new(),
                mirror_rings: HashMap::new(),
            }),
            proxy_recv_cqs: (0..config.proxy_threads.max(1))
                .map(|_| Arc::new(CompletionQueue::new(65_536)))
                .collect(),
            metrics: ServerMetrics::new(config.telemetry),
            qos,
            health,
            last_shadow_update: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            config,
            node,
            pd,
            nvm_dev,
            staging_dev,
            cache_dev,
            ctl_dev,
            msg_dev,
            nvm_mr,
            cache_mr,
            staging_mr,
            ctl_mr,
            shadow_dev,
            shadow_mr,
            backup: Mutex::new(NO_BACKUP),
            promoted: Mutex::new(HashSet::new()),
            shadow_ward: RwLock::new(None),
            nvm_quiesce: RwLock::new(()),
            mirror_epoch: AtomicU32::new(1),
        });

        let server = Arc::new(MemoryServer {
            inner: Arc::clone(&inner),
            threads: Mutex::new(Vec::new()),
        });

        // Epoch thread: hotness folding + promotion.
        {
            let inner = Arc::clone(&server.inner);
            server.threads.lock().push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(inner.config.epoch);
                    inner.run_epoch();
                }
            }));
        }
        // Proxy drain threads (rings pinned by client id).
        for t in 0..server.inner.proxy_recv_cqs.len() {
            let inner = Arc::clone(&server.inner);
            server
                .threads
                .lock()
                .push(std::thread::spawn(move || inner.drain_loop(t)));
        }
        Ok(server)
    }

    /// This server's pool identifier.
    pub fn id(&self) -> u8 {
        self.inner.id
    }

    /// The server's fabric node (for colocating tools or baselines).
    pub fn node(&self) -> &Arc<RdmaNode> {
        &self.inner.node
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Snapshot of cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().stats()
    }

    /// Number of objects currently cached in DRAM.
    pub fn cached_objects(&self) -> usize {
        self.inner.cache.lock().len()
    }

    /// Snapshot of allocator statistics.
    pub fn alloc_stats(&self) -> crate::alloc::AllocStats {
        self.inner.alloc.lock().stats()
    }

    /// Completed hotness epochs.
    pub fn epochs(&self) -> u64 {
        self.inner.hotness.lock().epoch()
    }

    /// The staging region (exposed for failure-injection tests and
    /// diagnostic tools that inspect or forge ring contents).
    pub fn staging_region(&self) -> MemRegion {
        self.inner.staging_mr.region().clone()
    }

    /// Accepts a new client: builds the three QP pairs, assigns a client
    /// id, spawns the connection's RPC thread and arms the proxy ring.
    ///
    /// # Errors
    ///
    /// [`GengarError::ServerUnavailable`] at client capacity; transport
    /// setup failures as [`GengarError::Rdma`].
    pub fn accept(
        &self,
        client_node: &Arc<RdmaNode>,
        client_pd: &ProtectionDomain,
    ) -> Result<ClientChannel, GengarError> {
        let inner = &self.inner;
        // A stopped server accepts nobody: its RPC threads would exit
        // immediately and the client would stall on a dead connection.
        // Refusing here lets clients back off and re-dial after restart().
        if !self.is_running() {
            return Err(GengarError::ServerUnavailable(inner.id));
        }
        let cid = {
            let mut clients = inner.clients.lock();
            match clients.free_ids.pop() {
                Some(cid) => cid,
                None => {
                    if clients.next_id >= inner.config.max_clients {
                        return Err(GengarError::ServerUnavailable(inner.id));
                    }
                    let cid = clients.next_id;
                    clients.next_id += 1;
                    cid
                }
            }
        };
        // Register the pending session with the QoS plane before anything
        // can fail: a handshake that dies pre-Mount still releases cleanly.
        if let Some(plane) = &inner.qos {
            plane.connect(inner.id, cid, client_node.id());
        }

        // Control-plane pair + its message buffer and serving thread.
        let (c_rpc, mut s_rpc) = Endpoint::pair(
            (client_node, client_pd),
            (&inner.node, &inner.pd),
            QpOptions::default(),
        )?;
        // Bound the serve loop's response-send patience: if a response is
        // lost to an injected fault the thread must not spin for the
        // default 10 s — it gives up, the connection dies, and the client
        // reconnects.
        s_rpc.set_op_timeout(std::time::Duration::from_millis(250));
        let msg_region = MemRegion::new(
            Arc::clone(&inner.msg_dev),
            cid as u64 * RPC_BUF_BYTES,
            RPC_BUF_BYTES,
        )?;
        let msg_mr = inner.pd.reg_mr(msg_region, Access::LOCAL_WRITE)?;
        let conn = RpcServerConn::new(s_rpc, Arc::clone(&msg_mr));
        {
            let handler_inner = Arc::clone(inner);
            let loop_inner = Arc::clone(inner);
            self.threads.lock().push(std::thread::spawn(move || {
                conn.serve(&loop_inner.shutdown, move |req| {
                    handler_inner.handle(cid, req)
                });
            }));
        }

        // Data-plane pair (client drives it; the server side just exists).
        let (c_data, _s_data) = Endpoint::pair(
            (client_node, client_pd),
            (&inner.node, &inner.pd),
            QpOptions::default(),
        )?;

        // Proxy pair: the server side uses the recv CQ of the drain
        // thread this ring is pinned to.
        let drain_cq = &inner.proxy_recv_cqs[cid as usize % inner.proxy_recv_cqs.len()];
        let s_proxy = inner.node.create_qp(
            &inner.pd,
            inner.node.create_cq(1024),
            Arc::clone(drain_cq),
            QpOptions::default(),
        );
        let c_proxy_qp = client_node.create_qp(
            client_pd,
            client_node.create_cq(1024),
            client_node.create_cq(1024),
            QpOptions::default(),
        );
        c_proxy_qp.connect(inner.node.id(), s_proxy.qpn())?;
        s_proxy.connect(client_node.id(), c_proxy_qp.qpn())?;
        // Arm one receive per ring slot.
        for _ in 0..inner.ring.slots {
            s_proxy.post_recv(gengar_rdma::RecvWr::new(0, Sge::new(msg_mr.lkey(), 0, 0)))?;
        }
        {
            let mut clients = inner.clients.lock();
            clients.proxy_clients.insert(s_proxy.qpn(), cid);
            clients.proxy_qps.insert(cid, Arc::clone(&s_proxy));
        }

        Ok(ClientChannel {
            cid,
            rpc: c_rpc,
            data: c_data,
            proxy: Endpoint::from_qp(Arc::clone(client_node), c_proxy_qp),
        })
    }

    /// Opens a *mirror* lane on this server: a dedicated proxy ring whose
    /// drained records apply to the shadow image of `ward` (the primary
    /// this server backs up) instead of local NVM. The client fans every
    /// staged write for `ward` out to this ring, so the backup holds a
    /// durable copy of each settled record before the client sees the ack.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] when replication is disabled;
    /// otherwise the same failures as [`MemoryServer::accept`].
    pub fn accept_mirror(
        &self,
        client_node: &Arc<RdmaNode>,
        client_pd: &ProtectionDomain,
        ward: u8,
    ) -> Result<MirrorChannel, GengarError> {
        let inner = &self.inner;
        if inner.shadow_mr.is_none() {
            return Err(GengarError::ProtocolViolation(
                "mirror lane on a server without replication",
            ));
        }
        if !self.is_running() {
            return Err(GengarError::ServerUnavailable(inner.id));
        }
        // One shadow, one ward: a lane for a second primary would
        // interleave two servers' overlapping NVM offsets in the same byte
        // range. Checked again under the write lock at ring insertion; this
        // early check just fails fast before QPs are built.
        if inner.shadow_ward.read().is_some_and(|w| w != ward) {
            return Err(GengarError::ProtocolViolation(
                "shadow already dedicated to another ward",
            ));
        }
        let cid = {
            let mut clients = inner.clients.lock();
            match clients.free_ids.pop() {
                Some(cid) => cid,
                None => {
                    if clients.next_id >= inner.config.max_clients {
                        return Err(GengarError::ServerUnavailable(inner.id));
                    }
                    let cid = clients.next_id;
                    clients.next_id += 1;
                    cid
                }
            }
        };
        // Mirror lanes carry only the proxy plane: no RPC thread, no data
        // QP — the client already holds a full connection to this server
        // for its *own* objects.
        let drain_cq = &inner.proxy_recv_cqs[cid as usize % inner.proxy_recv_cqs.len()];
        let s_proxy = inner.node.create_qp(
            &inner.pd,
            inner.node.create_cq(1024),
            Arc::clone(drain_cq),
            QpOptions::default(),
        );
        let c_proxy_qp = client_node.create_qp(
            client_pd,
            client_node.create_cq(1024),
            client_node.create_cq(1024),
            QpOptions::default(),
        );
        if let Err(e) = c_proxy_qp
            .connect(inner.node.id(), s_proxy.qpn())
            .and_then(|_| s_proxy.connect(client_node.id(), c_proxy_qp.qpn()))
        {
            self.release_client(cid);
            return Err(e.into());
        }
        for _ in 0..inner.ring.slots {
            s_proxy.post_recv(gengar_rdma::RecvWr::new(
                0,
                Sge::new(inner.ctl_mr.lkey(), 0, 0),
            ))?;
        }
        let epoch = inner.mirror_epoch.fetch_add(1, Ordering::Relaxed);
        {
            // Claim the shadow for `ward` atomically with registering the
            // ring (lock order: shadow_ward before clients). A concurrent
            // Promote or install for a different ward that won the race
            // makes this lane refuse rather than alias the shadow.
            let mut shadow_ward = inner.shadow_ward.write();
            match *shadow_ward {
                Some(w) if w != ward => {
                    drop(shadow_ward);
                    self.release_client(cid);
                    return Err(GengarError::ProtocolViolation(
                        "shadow already dedicated to another ward",
                    ));
                }
                _ => *shadow_ward = Some(ward),
            }
            let mut clients = inner.clients.lock();
            clients.proxy_clients.insert(s_proxy.qpn(), cid);
            clients.proxy_qps.insert(cid, Arc::clone(&s_proxy));
            clients.mirror_rings.insert(cid, MirrorRing { ward, epoch });
        }
        // A fresh tenure starts from a clean watermark: the ring id may be
        // reused, and the old tenure's progress must not mask new records.
        if let Some(shadow) = &inner.shadow_mr {
            let _ = shadow.region().store_u64(cid as u64 * 8, 0);
        }
        let _ = inner.ctl_mr.region().store_u64(cid as u64 * 8, 0);

        Ok(MirrorChannel {
            cid,
            ring_offset: cid as u64 * inner.ring.ring_bytes(),
            epoch,
            proxy: Endpoint::from_qp(Arc::clone(client_node), c_proxy_qp),
        })
    }

    /// Declares which server backs this one up. Set by the cluster at
    /// launch and rewritten by its rebalance thread after a backup dies;
    /// published to clients through [`MountInfo`] and `QueryReplica`.
    pub fn set_backup(&self, backup: u8) {
        *self.inner.backup.lock() = backup;
    }

    /// The server currently backing this one up ([`NO_BACKUP`] = none).
    pub fn backup_id(&self) -> u8 {
        *self.inner.backup.lock()
    }

    /// Whether this server was launched with a shadow device.
    pub fn replication_enabled(&self) -> bool {
        self.inner.shadow_mr.is_some()
    }

    /// Number of live mirror lanes warding other servers on this one.
    pub fn mirror_count(&self) -> usize {
        self.inner.clients.lock().mirror_rings.len()
    }

    /// Whether this server has promoted for `primary` (serves its
    /// addresses from the shadow image).
    pub fn has_promoted(&self, primary: u8) -> bool {
        self.inner.promoted.lock().contains(&primary)
    }

    /// Snapshot of this server's full NVM image (watermark area + pool).
    /// Management-plane helper for the rebalance path: the image seeds a
    /// new backup's shadow so later promotions serve settled data that
    /// predates the re-mirror.
    ///
    /// # Errors
    ///
    /// Propagates device read failures.
    pub fn nvm_image(&self) -> Result<Vec<u8>, GengarError> {
        // Pause the proxy drains' NVM applies for the copy: a half-applied
        // record (payload written, watermark not yet — or vice versa)
        // captured here would seed the new backup with a torn value that no
        // later replay repairs, because the record may already be settled
        // and retired on the primary.
        let _quiesce = self.inner.nvm_quiesce.write();
        let nvm = self.inner.nvm_mr.region();
        let mut image = vec![0u8; nvm.len() as usize];
        nvm.read(0, &mut image)?;
        Ok(image)
    }

    /// The primary the shadow is currently dedicated to (`None` = never
    /// claimed). Management-plane helper for the rebalance scanner's
    /// candidate filter.
    pub fn shadow_ward(&self) -> Option<u8> {
        *self.inner.shadow_ward.read()
    }

    /// Installs `image` as this server's shadow and dedicates the shadow to
    /// `ward` (the image's owner; must match the shadow geometry).
    /// Management-plane counterpart of [`MemoryServer::nvm_image`] used
    /// when this server becomes someone's new backup.
    ///
    /// Retargets a stale claim (a dead, never-promoted ward) but refuses
    /// while any promotion is live: a promoted ward's shadow bytes are
    /// being served to clients and must not be clobbered by another
    /// server's image.
    ///
    /// # Errors
    ///
    /// [`GengarError::ProtocolViolation`] when replication is disabled, the
    /// image size does not match, or the shadow serves a promoted ward;
    /// device failures otherwise.
    pub fn install_shadow_image(&self, ward: u8, image: &[u8]) -> Result<(), GengarError> {
        let Some(shadow_mr) = &self.inner.shadow_mr else {
            return Err(GengarError::ProtocolViolation(
                "shadow install on a server without replication",
            ));
        };
        let shadow = shadow_mr.region();
        if image.len() as u64 != shadow.len() {
            return Err(GengarError::ProtocolViolation(
                "shadow image geometry mismatch",
            ));
        }
        // Claim (or retarget) under the write lock so neither a mirror
        // drain nor a promotion replay interleaves with the bulk copy.
        let mut shadow_ward = self.inner.shadow_ward.write();
        if !self.inner.promoted.lock().is_empty() {
            return Err(GengarError::ProtocolViolation(
                "shadow serves a promoted ward",
            ));
        }
        *shadow_ward = Some(ward);
        shadow.write(0, image)?;
        shadow.flush(0, image.len() as u64)?;
        // The image's watermark area carries the *primary's* per-ring drain
        // words, meaningless under this server's ring ids (a stale high
        // watermark would mask mirror records from replay): reset it. Any
        // live mirror lane for `ward` re-zeroed its word at accept time and
        // retires slots off the ctl word, which is untouched here.
        let wm_area = round_up(self.inner.config.max_clients as u64 * 8, 4096).min(shadow.len());
        shadow.write(0, &vec![0u8; wm_area as usize])?;
        shadow.flush(0, wm_area)?;
        *self.inner.last_shadow_update.lock() = Some(Instant::now());
        Ok(())
    }

    /// Returns a client id for reuse after a mount handshake failed partway
    /// (e.g. the `Mount` RPC or staging setup was lost to a fault). Only
    /// call this for ids that never staged any data: a released id's ring
    /// and watermark slots are handed verbatim to the next client, which is
    /// safe exactly because nothing was ever written under the old tenure.
    pub fn release_client(&self, cid: u32) {
        // Drop the QoS session first: the tenant's limiter buckets are
        // refcounted by live sessions, so a reconnect storm of failed
        // handshakes frees exactly what it bound (no bucket leak).
        if let Some(plane) = &self.inner.qos {
            plane.release(self.inner.id, cid);
        }
        let mut clients = self.inner.clients.lock();
        clients.proxy_clients.retain(|_, c| *c != cid);
        clients.proxy_qps.remove(&cid);
        clients.mirror_rings.remove(&cid);
        if !clients.free_ids.contains(&cid) {
            clients.free_ids.push(cid);
        }
    }

    /// The QoS plane this server enforces, when QoS is enabled. Clients
    /// use it to pace at the issue gate and to learn their tenant tag.
    pub fn qos_plane(&self) -> Option<&Arc<QosPlane>> {
        self.inner.qos.as_ref()
    }

    /// The health plane answering this server's `Inspect` RPC, when the
    /// live health layer is enabled.
    pub fn health_plane(&self) -> Option<&Arc<HealthPlane>> {
        self.inner.health.as_ref()
    }

    /// Whether the server is serving (background threads alive, new
    /// clients accepted). False between [`MemoryServer::shutdown`] /
    /// [`MemoryServer::crash`] and [`MemoryServer::restart`].
    pub fn is_running(&self) -> bool {
        !self.inner.shutdown.load(Ordering::Relaxed)
    }

    /// Stops background threads and joins them.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }

    /// Restarts the epoch and proxy threads after a [`shutdown`] +
    /// [`recover`] cycle. Existing client connections stay dead (their RPC
    /// threads exited); new clients connect normally via
    /// [`MemoryServer::accept`].
    ///
    /// [`shutdown`]: MemoryServer::shutdown
    /// [`recover`]: MemoryServer::recover
    pub fn restart(&self) {
        self.inner.shutdown.store(false, Ordering::Relaxed);
        let mut threads = self.threads.lock();
        {
            let inner = Arc::clone(&self.inner);
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(inner.config.epoch);
                    inner.run_epoch();
                }
            }));
        }
        for t in 0..self.inner.proxy_recv_cqs.len() {
            let inner = Arc::clone(&self.inner);
            threads.push(std::thread::spawn(move || inner.drain_loop(t)));
        }
    }

    /// Simulates a power failure of this server's machine: NVM reverts to
    /// its last flushed state, staging survives (ADR), DRAM is lost.
    ///
    /// # Errors
    ///
    /// Requires `crash_sim` in the configuration.
    pub fn crash(&self) -> Result<(), GengarError> {
        self.inner.nvm_dev.crash()?;
        self.inner.staging_dev.crash()?;
        self.inner.cache_dev.crash()?;
        self.inner.ctl_dev.crash()?;
        if let Some(shadow) = &self.inner.shadow_dev {
            shadow.crash()?;
        }
        Ok(())
    }

    /// Post-crash recovery: drops volatile state and replays staged writes
    /// whose sequence exceeds the ring's durable watermark, in order.
    /// Returns the number of records replayed.
    ///
    /// # Errors
    ///
    /// Propagates device errors during the replay.
    pub fn recover(&self) -> Result<u64, GengarError> {
        let inner = &self.inner;
        inner.cache.lock().clear();
        inner.hotness.lock().reset();
        let nvm = inner.nvm_mr.region();
        let staging = inner.staging_mr.region();
        let (n_clients, mirrors) = {
            let clients = inner.clients.lock();
            (clients.next_id, clients.mirror_rings.clone())
        };
        let mut replayed = 0u64;
        for cid in 0..n_clients {
            // Mirror rings replay into the *shadow* image of their warded
            // primary (with the tenure's epoch as a filter); regular rings
            // replay into local NVM exactly as before.
            let mirror = mirrors.get(&cid).copied();
            let target = match mirror {
                // A stale lane whose ward lost the shadow (re-dedicated to
                // another primary) must not replay into it.
                Some(m) => match &inner.shadow_mr {
                    Some(mr) if *inner.shadow_ward.read() == Some(m.ward) => mr.region(),
                    _ => continue,
                },
                None => nvm,
            };
            let wm_off = cid as u64 * 8;
            let watermark = target.load_u64(wm_off)?;
            let ring_off = cid as u64 * inner.ring.ring_bytes();
            let mut records = Vec::new();
            for slot in 0..inner.ring.slots {
                let slot_off = ring_off + inner.ring.slot_offset(slot);
                let mut hdr = [0u8; crate::layout::RECORD_HEADER as usize];
                staging.read(slot_off, &mut hdr)?;
                let rec = decode_record_header(&hdr);
                if rec.seq == 0 || rec.seq <= watermark || rec.len > inner.ring.slot_payload {
                    continue;
                }
                if let Some(m) = mirror {
                    if rec.epoch != m.epoch {
                        continue; // stale tenure's leftover record
                    }
                }
                let mut payload = vec![0u8; rec.len as usize];
                staging.read(slot_off + crate::layout::RECORD_HEADER, &mut payload)?;
                if checksum(&payload) != rec.checksum {
                    continue; // torn record from mid-crash staging write
                }
                records.push((rec.seq, rec.addr, payload));
            }
            records.sort_by_key(|r| r.0);
            let mut max_seq = watermark;
            for (seq, addr_raw, payload) in records {
                if let Some(addr) = GlobalAddr::from_raw(addr_raw) {
                    let right_home = match mirror {
                        Some(m) => addr.server() == m.ward,
                        None => true,
                    };
                    if right_home && addr.class() == MemClass::Nvm {
                        let off = addr.offset();
                        if off + payload.len() as u64 <= target.len() {
                            target.write(off, &payload)?;
                            target.flush(off, payload.len() as u64)?;
                            max_seq = max_seq.max(seq);
                            replayed += 1;
                        }
                    }
                }
            }
            target.store_u64(wm_off, max_seq)?;
            target.flush(wm_off, 8)?;
            inner.ctl_mr.region().store_u64(cid as u64 * 8, max_seq)?;
        }
        Ok(replayed)
    }
}

impl Drop for MemoryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ServerInner {
    /// Body of one proxy drain thread: harvest WRITE_WITH_IMM completions
    /// from the thread's recv CQ and drain the named slots. The backlog
    /// gauge tracks how many staged records are waiting across harvest and
    /// drain, so a proxy that falls behind is visible in telemetry.
    fn drain_loop(&self, t: usize) {
        let cq = &self.proxy_recv_cqs[t];
        while !self.shutdown.load(Ordering::Relaxed) {
            let wcs = cq.wait(64, Duration::from_millis(20));
            self.metrics
                .drain_backlog
                .set((wcs.len() + cq.len()) as i64);
            for wc in wcs {
                if wc.opcode == WcOpcode::RecvRdmaWithImm && wc.status.is_ok() {
                    let _ = self.drain(wc.qpn, wc.imm.unwrap_or(0));
                }
            }
        }
    }

    /// Drains one staged record (proxy thread).
    fn drain(&self, qpn: Qpn, slot: u32) -> Result<(), GengarError> {
        let _t = self.metrics.drain_ns.span();
        let (cid, qp, mirror) = {
            let clients = self.clients.lock();
            let cid = match clients.proxy_clients.get(&qpn) {
                Some(&c) => c,
                None => return Ok(()),
            };
            // Unreplicated servers host no mirror rings at all; skip the
            // per-record hash on that (hot) path.
            let mirror = if clients.mirror_rings.is_empty() {
                None
            } else {
                clients.mirror_rings.get(&cid).copied()
            };
            (cid, Arc::clone(&clients.proxy_qps[&cid]), mirror)
        };
        let staging = self.staging_mr.region();
        let nvm = self.nvm_mr.region();
        let slot_off = cid as u64 * self.ring.ring_bytes() + self.ring.slot_offset(slot);

        let mut hdr = [0u8; crate::layout::RECORD_HEADER as usize];
        staging.read(slot_off, &mut hdr)?;
        let rec = decode_record_header(&hdr);
        // Join the originating client op's trace: the record header carries
        // its trace id, so the asynchronous NVM drain shows up in the same
        // causal trace even though it runs after the client saw completion.
        let mut drain_span = gengar_telemetry::Tracer::global()
            .root_span_in("server.drain", gengar_telemetry::TraceId(rec.trace));
        drain_span.set_detail(rec.seq);
        if let Some(m) = mirror {
            // Mirror lane: the record belongs to the warded primary; apply
            // it to that primary's shadow image. No cache to refresh, no
            // tenant to bill (the primary's drain did both); the epoch
            // filter drops any stale tenure's leftovers in a reused ring.
            if let Some(shadow_mr) = &self.shadow_mr {
                // The shadow holds exactly one ward's image: a stale lane
                // that outlived a retarget (its ward died unpromoted and
                // the shadow was re-dedicated) must not scribble over the
                // new ward's bytes. The read guard keeps an image install
                // or promotion replay from interleaving with this apply.
                let ward_guard = self.shadow_ward.read();
                let shadow = shadow_mr.region();
                if *ward_guard == Some(m.ward)
                    && rec.len <= self.ring.slot_payload
                    && rec.epoch == m.epoch
                {
                    let mut payload = vec![0u8; rec.len as usize];
                    staging.read(slot_off + crate::layout::RECORD_HEADER, &mut payload)?;
                    if checksum(&payload) == rec.checksum {
                        if let Some(addr) = GlobalAddr::from_raw(rec.addr) {
                            if addr.server() == m.ward
                                && addr.class() == MemClass::Nvm
                                && addr.offset() + rec.len <= shadow.len()
                            {
                                let off = addr.offset();
                                shadow.write(off, &payload)?;
                                shadow.flush(off, rec.len)?;
                                // Shadow watermark first (crash consistency),
                                // then the client-visible ctl word: the
                                // client's mirror lane retires slots off it.
                                let wm_off = cid as u64 * 8;
                                shadow.store_u64(wm_off, rec.seq)?;
                                shadow.flush(wm_off, 8)?;
                                self.ctl_mr.region().store_u64(cid as u64 * 8, rec.seq)?;
                                self.metrics.drained_records.inc();
                                *self.last_shadow_update.lock() = Some(Instant::now());
                            }
                        }
                    }
                }
            }
            let _ = qp.post_recv(gengar_rdma::RecvWr::new(
                0,
                Sge::new(self.ctl_mr.lkey(), 0, 0),
            ));
            return Ok(());
        }
        if rec.len <= self.ring.slot_payload {
            let mut payload = vec![0u8; rec.len as usize];
            staging.read(slot_off + crate::layout::RECORD_HEADER, &mut payload)?;
            if checksum(&payload) == rec.checksum {
                if let Some(addr) = GlobalAddr::from_raw(rec.addr) {
                    if addr.class() == MemClass::Nvm && addr.offset() + rec.len <= nvm.len() {
                        // Payload and watermark land atomically w.r.t. a
                        // rebalance snapshot (nvm_image holds this for
                        // write), so the seeded shadow never carries a
                        // torn record.
                        let _quiesce = self.nvm_quiesce.read();
                        let off = addr.offset();
                        nvm.write(off, &payload)?;
                        nvm.flush(off, rec.len)?;
                        // Keep the cached copy fresh.
                        if self.config.cache.enabled {
                            if let Some((base, _len)) = self.containing_object(off) {
                                let base_raw = GlobalAddr::new(self.id, MemClass::Nvm, base).raw();
                                let rel = off - base;
                                let _ = self.cache.lock().update_range(base_raw, rel, &payload);
                            }
                        }
                        // Advance the durable watermark: NVM word first
                        // (crash consistency), then the client-visible one.
                        let wm_off = cid as u64 * 8;
                        nvm.store_u64(wm_off, rec.seq)?;
                        nvm.flush(wm_off, 8)?;
                        self.ctl_mr.region().store_u64(cid as u64 * 8, rec.seq)?;
                        self.metrics.drained_records.inc();
                        // Per-tenant durable-byte accounting: the record
                        // header carries the tenant tag across the
                        // client→drain handoff (0 = QoS off).
                        if rec.tenant != 0 {
                            if let Some(plane) = &self.qos {
                                if let Some(t) = plane.tenant_by_tag(rec.tenant) {
                                    t.note_drained(rec.len);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Re-arm the consumed receive (zero-length: WRITE_WITH_IMM never
        // scatters into it, any PD-local lkey satisfies the interface).
        let _ = qp.post_recv(gengar_rdma::RecvWr::new(
            0,
            Sge::new(self.ctl_mr.lkey(), 0, 0),
        ));
        Ok(())
    }

    /// Finds the live object containing NVM offset `off`.
    fn containing_object(&self, off: u64) -> Option<(u64, u64)> {
        let objects = self.objects.read();
        let (&base, &len) = objects.range(..=off).next_back()?;
        if off < base + len {
            Some((base, len))
        } else {
            None
        }
    }

    /// One hotness epoch: fold reports, refresh/decay cache scores,
    /// promote hot objects. Runs on the epoch thread, which also owns all
    /// demote-area traffic — the foreground drain never pays for tiering.
    fn run_epoch(&self) {
        // Refresh shadow staleness while we are on a periodic thread
        // anyway: replication health wants "how long since the standby
        // image advanced", which no event-driven path can age on its own.
        if self.shadow_mr.is_some() {
            let staleness = match *self.last_shadow_update.lock() {
                Some(at) => at.elapsed().as_millis().min(i64::MAX as u128) as i64,
                None => -1,
            };
            self.metrics.shadow_staleness_ms.set(staleness);
        }
        let folded = self.hotness.lock().fold_epoch();
        let policy = &self.config.cache;
        if !policy.enabled {
            return;
        }
        {
            let mut cache = self.cache.lock();
            cache.decay_scores();
            cache.refresh_scores(&folded);
        }
        for (addr_raw, score) in folded {
            if score == 0 {
                continue;
            }
            // Ghost/demote members bypass the hot threshold: a returning
            // working set re-promotes on its first epoch back instead of
            // re-proving its heat from scratch.
            if score < policy.hot_threshold && !self.cache.lock().remembers(addr_raw) {
                continue;
            }
            let addr = match GlobalAddr::from_raw(addr_raw) {
                Some(a) if a.class() == MemClass::Nvm && a.server() == self.id => a,
                _ => continue,
            };
            let len = match self.objects.read().get(&addr.offset()) {
                Some(&len) if len <= policy.cacheable_max => len,
                _ => continue,
            };
            {
                let mut cache = self.cache.lock();
                if cache.contains(addr_raw) {
                    continue;
                }
                // Demote-tier fast path: one local NVM→DRAM copy, skipping
                // the object read below entirely.
                if cache.repromote(addr_raw, score).unwrap_or(false) {
                    continue;
                }
            }
            let mut payload = vec![0u8; len as usize];
            if self
                .nvm_mr
                .region()
                .read(addr.offset(), &mut payload)
                .is_err()
            {
                continue;
            }
            let _ = self.cache.lock().promote(addr, &payload, score);
        }
    }

    /// Control-plane request dispatch (RPC threads).
    fn handle(&self, cid: u32, req: Request) -> Response {
        self.metrics.rpc_requests.inc();
        // QoS enforcement on the RPC path: every post-handshake request
        // charges the tenant's enforcement-margin ops bucket. Handshake
        // requests (Mount, OpenStaging) pass free so throttling never
        // starves reconnects. Over-budget tenants get THROTTLED, which the
        // client classifies as retryable and backs off.
        // Promote and QueryReplica also pass free: they run exactly when a
        // machine died, and throttling recovery would turn a budget blip
        // into unavailability. Inspect passes free too: it is the health
        // probe an operator reaches for exactly when a tenant is being
        // throttled, so it must never be throttled itself.
        if let Some(plane) = &self.qos {
            if !matches!(
                req,
                Request::Mount { .. }
                    | Request::OpenStaging
                    | Request::Promote { .. }
                    | Request::QueryReplica
                    | Request::Inspect
            ) {
                if let Some(tenant) = plane.tenant_of(self.id, cid) {
                    if !tenant.rpc_admit() {
                        return Response::Err {
                            code: err_code::THROTTLED,
                        };
                    }
                }
            }
        }
        match req {
            Request::Mount { tenant } => {
                if let Some(plane) = &self.qos {
                    plane.bind(self.id, cid, &tenant);
                }
                Response::Mount(MountInfo {
                    server_id: self.id,
                    nvm_rkey: self.nvm_mr.rkey().0,
                    cache_rkey: self.cache_mr.rkey().0,
                    staging_rkey: self.staging_mr.rkey().0,
                    ctl_rkey: self.ctl_mr.rkey().0,
                    nvm_capacity: self.config.nvm_capacity,
                    enable_cache: self.config.cache.enabled,
                    enable_proxy: self.config.enable_proxy,
                    slot_payload: self.ring.slot_payload,
                    slots_per_ring: self.ring.slots,
                    shadow_rkey: self.shadow_mr.as_ref().map_or(0, |m| m.rkey().0),
                    backup: *self.backup.lock(),
                })
            }
            Request::Alloc { size } => self.handle_alloc(size),
            Request::Free { addr } => self.handle_free(addr),
            Request::OpenStaging => Response::Staging {
                client_id: cid,
                ring_offset: cid as u64 * self.ring.ring_bytes(),
            },
            Request::Report { entries } => {
                self.hotness.lock().record(&entries);
                // Lookups mutate segment state: a remap hit refreshes the
                // frame's LRU stamp and upgrades it into protected.
                let mut cache = self.cache.lock();
                let remaps = entries
                    .iter()
                    .map(|e| RemapUpdate {
                        addr: e.addr,
                        cache_addr: cache.lookup(e.addr).unwrap_or(0),
                    })
                    .collect();
                Response::Report { remaps }
            }
            Request::FlushRange { addr, len } => self.handle_flush(addr, len, true),
            Request::Invalidate { addr } => self.handle_flush(addr, 0, false),
            Request::QueryDurable { client_id } => {
                match self.ctl_mr.region().load_u64(client_id as u64 * 8) {
                    Ok(seq) => Response::Durable { seq },
                    Err(_) => Response::Err {
                        code: err_code::BAD_REQUEST,
                    },
                }
            }
            Request::Promote { primary } => self.handle_promote(primary),
            Request::QueryReplica => Response::Replica {
                backup: *self.backup.lock(),
            },
            Request::Inspect => Response::Inspect {
                json: match &self.health {
                    Some(plane) => plane.inspect_json(self.id, MAX_INSPECT_JSON),
                    None => HealthPlane::disabled_json(self.id),
                },
            },
        }
    }

    /// Promotes this server for dead primary `primary`: replays every
    /// un-drained record in the mirror rings warding it into the shadow
    /// image, then marks the primary promoted so its addresses are served
    /// from the shadow on the data and control planes. Idempotent — the
    /// shadow watermark makes a second promotion replay nothing new.
    fn handle_promote(&self, primary: u8) -> Response {
        let Some(shadow_mr) = &self.shadow_mr else {
            return Response::Err {
                code: err_code::BAD_REQUEST,
            };
        };
        // The shadow serves exactly one ward; promoting a second one would
        // hand out another server's bytes at the same offsets. Claim it
        // (and hold the claim for the whole replay, so a concurrent image
        // install for a different primary cannot interleave) or refuse.
        let mut shadow_ward = self.shadow_ward.write();
        match *shadow_ward {
            Some(w) if w != primary => {
                return Response::Err {
                    code: err_code::BAD_REQUEST,
                };
            }
            _ => *shadow_ward = Some(primary),
        }
        let shadow = shadow_mr.region();
        let staging = self.staging_mr.region();
        let rings: Vec<(u32, u32)> = {
            let clients = self.clients.lock();
            clients
                .mirror_rings
                .iter()
                .filter(|(_, m)| m.ward == primary)
                .map(|(&cid, m)| (cid, m.epoch))
                .collect()
        };
        let mut replayed = 0u64;
        for (cid, epoch) in rings {
            let wm_off = cid as u64 * 8;
            let watermark = shadow.load_u64(wm_off).unwrap_or(0);
            let ring_off = cid as u64 * self.ring.ring_bytes();
            let mut records = Vec::new();
            for slot in 0..self.ring.slots {
                let slot_off = ring_off + self.ring.slot_offset(slot);
                let mut hdr = [0u8; crate::layout::RECORD_HEADER as usize];
                if staging.read(slot_off, &mut hdr).is_err() {
                    continue;
                }
                let rec = decode_record_header(&hdr);
                if rec.seq == 0
                    || rec.seq <= watermark
                    || rec.len > self.ring.slot_payload
                    || rec.epoch != epoch
                {
                    continue;
                }
                let mut payload = vec![0u8; rec.len as usize];
                if staging
                    .read(slot_off + crate::layout::RECORD_HEADER, &mut payload)
                    .is_err()
                    || checksum(&payload) != rec.checksum
                {
                    continue;
                }
                records.push((rec.seq, rec.addr, payload));
            }
            records.sort_by_key(|r| r.0);
            let mut max_seq = watermark;
            for (seq, addr_raw, payload) in records {
                let Some(addr) = GlobalAddr::from_raw(addr_raw) else {
                    continue;
                };
                if addr.server() != primary || addr.class() != MemClass::Nvm {
                    continue;
                }
                let off = addr.offset();
                if off + payload.len() as u64 <= shadow.len()
                    && shadow.write(off, &payload).is_ok()
                    && shadow.flush(off, payload.len() as u64).is_ok()
                {
                    max_seq = max_seq.max(seq);
                    replayed += 1;
                }
            }
            let _ = shadow.store_u64(wm_off, max_seq);
            let _ = shadow.flush(wm_off, 8);
            let _ = self.ctl_mr.region().store_u64(wm_off, max_seq);
        }
        if replayed > 0 {
            *self.last_shadow_update.lock() = Some(Instant::now());
        }
        let newly = self.promoted.lock().insert(primary);
        if newly {
            self.metrics.promotions.inc();
            gengar_telemetry::Tracer::global().event("replica.promote", primary as u64);
        }
        Response::Promoted { replayed }
    }

    fn handle_alloc(&self, size: u64) -> Response {
        if size == 0 || size > self.config.max_object {
            return Response::Err {
                code: err_code::TOO_LARGE,
            };
        }
        let block = match self.alloc.lock().alloc(size + OBJ_HEADER) {
            Ok(off) => off,
            Err(GengarError::ObjectTooLarge { .. }) => {
                return Response::Err {
                    code: err_code::TOO_LARGE,
                }
            }
            Err(_) => {
                return Response::Err {
                    code: err_code::OOM,
                }
            }
        };
        let payload_off = block + OBJ_HEADER;
        let nvm = self.nvm_mr.region();
        // Initialise the header: unlocked version-0 word + length.
        if nvm.store_u64(block, lockword::INIT).is_err()
            || nvm.store_u64(block + 8, size).is_err()
            || nvm.flush(block, OBJ_HEADER).is_err()
        {
            let _ = self.alloc.lock().free(block);
            return Response::Err {
                code: err_code::BAD_REQUEST,
            };
        }
        self.objects.write().insert(payload_off, size);
        let addr = GlobalAddr::new(self.id, MemClass::Nvm, payload_off);
        Response::Alloc { addr: addr.raw() }
    }

    fn handle_free(&self, addr_raw: u64) -> Response {
        let addr = match GlobalAddr::from_raw(addr_raw) {
            Some(a) if a.class() == MemClass::Nvm && a.server() == self.id => a,
            _ => {
                return Response::Err {
                    code: err_code::INVALID_ADDR,
                }
            }
        };
        let payload_off = addr.offset();
        if self.objects.write().remove(&payload_off).is_none() {
            return Response::Err {
                code: err_code::DOUBLE_FREE,
            };
        }
        let _ = self.cache.lock().invalidate(addr_raw);
        match self.alloc.lock().free(payload_off - OBJ_HEADER) {
            Ok(_) => Response::Ok,
            Err(_) => Response::Err {
                code: err_code::DOUBLE_FREE,
            },
        }
    }

    /// Flush (and/or invalidate the cached copy of) a written range. After
    /// a promotion this server also accepts addresses of the primaries it
    /// promoted for, flushing their ranges in the shadow image instead.
    fn handle_flush(&self, addr_raw: u64, len: u64, flush: bool) -> Response {
        let addr = match GlobalAddr::from_raw(addr_raw) {
            Some(a)
                if a.class() == MemClass::Nvm
                    && (a.server() == self.id || self.promoted.lock().contains(&a.server())) =>
            {
                a
            }
            _ => {
                return Response::Err {
                    code: err_code::INVALID_ADDR,
                }
            }
        };
        let region = if addr.server() == self.id {
            self.nvm_mr.region()
        } else {
            match &self.shadow_mr {
                Some(mr) => mr.region(),
                None => {
                    return Response::Err {
                        code: err_code::INVALID_ADDR,
                    }
                }
            }
        };
        let off = addr.offset();
        if flush {
            if off + len > region.len() {
                return Response::Err {
                    code: err_code::INVALID_ADDR,
                };
            }
            if region.flush(off, len.max(1)).is_err() {
                return Response::Err {
                    code: err_code::INVALID_ADDR,
                };
            }
        }
        // The shadow image is never DRAM-cached, so only local addresses
        // have a cached copy to invalidate.
        if addr.server() == self.id {
            if let Some((base, _)) = self.containing_object(off) {
                let base_raw = GlobalAddr::new(self.id, MemClass::Nvm, base).raw();
                let _ = self.cache.lock().invalidate(base_raw);
            }
        }
        Response::Ok
    }
}
