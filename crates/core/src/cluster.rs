//! One-call deployment of a simulated Gengar cluster.

use std::sync::Arc;

use gengar_rdma::{Fabric, FabricConfig, QosPolicy};

use crate::client::GengarClient;
use crate::config::{ClientConfig, ServerConfig};
use crate::error::GengarError;
use crate::qos::QosPlane;
use crate::server::MemoryServer;

/// A fabric plus a set of memory servers, wired up and running.
///
/// ```
/// use gengar_core::cluster::Cluster;
/// use gengar_core::config::{ClientConfig, ServerConfig};
/// use gengar_core::pool::DshmPool;
/// use gengar_rdma::FabricConfig;
///
/// # fn main() -> Result<(), gengar_core::GengarError> {
/// let cluster = Cluster::launch(2, ServerConfig::small(), FabricConfig::instant())?;
/// let mut client = cluster.client(ClientConfig::default())?;
/// let ptr = client.alloc(0, 64)?;
/// client.write(ptr, 0, b"hello pool")?;
/// let mut buf = [0u8; 10];
/// client.read(ptr, 0, &mut buf)?;
/// assert_eq!(&buf, b"hello pool");
/// # Ok(())
/// # }
/// ```
pub struct Cluster {
    fabric: Arc<Fabric>,
    servers: Vec<Arc<MemoryServer>>,
    client_config: ClientConfig,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl Cluster {
    /// Launches `n` memory servers (ids `0..n`) on a fresh fabric.
    ///
    /// # Errors
    ///
    /// Propagates server launch failures.
    pub fn launch(
        n: usize,
        server_config: ServerConfig,
        mut fabric_config: FabricConfig,
    ) -> Result<Cluster, GengarError> {
        // One QoS plane spans the whole cluster: every server binds
        // sessions into it and the fabric consults it as the admission
        // backstop, so a tenant's budget is global, not per server.
        let qos = server_config
            .qos
            .enabled
            .then(|| QosPlane::new(server_config.qos.clone(), server_config.telemetry));
        if let Some(plane) = &qos {
            fabric_config.qos = Some(Arc::clone(plane) as Arc<dyn QosPolicy>);
        }
        let fabric = Fabric::new(fabric_config);
        let mut servers = Vec::with_capacity(n);
        for id in 0..n {
            servers.push(MemoryServer::launch_with_qos(
                &fabric,
                id as u8,
                server_config.clone(),
                qos.clone(),
            )?);
        }
        Ok(Cluster {
            fabric,
            servers,
            client_config: ClientConfig::default(),
        })
    }

    /// The cluster's shared QoS plane, when QoS is enabled.
    pub fn qos_plane(&self) -> Option<&Arc<QosPlane>> {
        self.servers.first().and_then(|s| s.qos_plane())
    }

    /// Changes the default configuration handed to new clients.
    pub fn set_client_config(&mut self, config: ClientConfig) {
        self.client_config = config;
    }

    /// The fabric (for fault injection or extra nodes).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The running servers.
    pub fn servers(&self) -> &[Arc<MemoryServer>] {
        &self.servers
    }

    /// One server by pool id.
    pub fn server(&self, id: u8) -> Option<&Arc<MemoryServer>> {
        self.servers.get(id as usize)
    }

    /// Connects a new client (one per thread) with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client(&self, config: ClientConfig) -> Result<GengarClient, GengarError> {
        GengarClient::connect(&self.fabric, &self.servers, config)
    }

    /// Connects a client with the cluster's default client configuration.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn default_client(&self) -> Result<GengarClient, GengarError> {
        self.client(self.client_config.clone())
    }

    /// Shuts every server down (also happens on drop).
    pub fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
