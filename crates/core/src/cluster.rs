//! One-call deployment of a simulated Gengar cluster.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gengar_rdma::{Fabric, FabricConfig, QosPolicy};

use crate::client::GengarClient;
use crate::config::{ClientConfig, ServerConfig};
use crate::error::GengarError;
use crate::health::HealthPlane;
use crate::proto::NO_BACKUP;
use crate::qos::QosPlane;
use crate::server::MemoryServer;

/// A fabric plus a set of memory servers, wired up and running.
///
/// ```
/// use gengar_core::cluster::Cluster;
/// use gengar_core::config::{ClientConfig, ServerConfig};
/// use gengar_core::pool::DshmPool;
/// use gengar_rdma::FabricConfig;
///
/// # fn main() -> Result<(), gengar_core::GengarError> {
/// let cluster = Cluster::launch(2, ServerConfig::small(), FabricConfig::instant())?;
/// let mut client = cluster.client(ClientConfig::default())?;
/// let ptr = client.alloc(0, 64)?;
/// client.write(ptr, 0, b"hello pool")?;
/// let mut buf = [0u8; 10];
/// client.read(ptr, 0, &mut buf)?;
/// assert_eq!(&buf, b"hello pool");
/// # Ok(())
/// # }
/// ```
pub struct Cluster {
    fabric: Arc<Fabric>,
    servers: Vec<Arc<MemoryServer>>,
    client_config: ClientConfig,
    /// The cluster-shared health plane (one sampler + tick thread serves
    /// every server's `Inspect`); `None` = health layer off.
    health: Option<Arc<HealthPlane>>,
    /// Stops the background rebalance scanner (replicated clusters only).
    rebalance_stop: Arc<AtomicBool>,
    rebalance: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl Cluster {
    /// Launches `n` memory servers (ids `0..n`) on a fresh fabric.
    ///
    /// # Errors
    ///
    /// Propagates server launch failures.
    pub fn launch(
        n: usize,
        server_config: ServerConfig,
        mut fabric_config: FabricConfig,
    ) -> Result<Cluster, GengarError> {
        // One QoS plane spans the whole cluster: every server binds
        // sessions into it and the fabric consults it as the admission
        // backstop, so a tenant's budget is global, not per server.
        let qos = server_config
            .qos
            .enabled
            .then(|| QosPlane::new(server_config.qos.clone(), server_config.telemetry));
        if let Some(plane) = &qos {
            fabric_config.qos = Some(Arc::clone(plane) as Arc<dyn QosPolicy>);
        }
        let fabric = Fabric::new(fabric_config);
        // One health plane spans the cluster for the same reason the QoS
        // plane does: the process shares one telemetry registry, so one
        // sampler/tick thread sees everything and every server's `Inspect`
        // answers from the same windows.
        let health = server_config.health.enabled.then(|| {
            let plane = HealthPlane::new(server_config.health.clone(), server_config.telemetry);
            plane.start();
            plane
        });
        let mut servers = Vec::with_capacity(n);
        for id in 0..n {
            servers.push(MemoryServer::launch_full(
                &fabric,
                id as u8,
                server_config.clone(),
                qos.clone(),
                health.clone(),
            )?);
        }
        // Replication ring: each server's staged writes are mirrored to
        // its successor. The rebalance scanner keeps the ring healthy: a
        // dead backup is replaced by the next live survivor, whose shadow
        // is seeded with the primary's current settled image so later
        // promotions also cover data that predates the re-mirror.
        let rebalance_stop = Arc::new(AtomicBool::new(false));
        let mut rebalance = None;
        if server_config.replication.enabled && n >= 2 {
            for (i, server) in servers.iter().enumerate() {
                server.set_backup(((i + 1) % n) as u8);
            }
            let fabric_bg = Arc::clone(&fabric);
            let servers_bg: Vec<Arc<MemoryServer>> = servers.clone();
            let stop = Arc::clone(&rebalance_stop);
            let interval = server_config.replication.rebalance_interval;
            // Resolve the handle here, not on the scanner thread: handles
            // are cheap clones of registry entries, and the scanner should
            // never block on registry registration mid-scan.
            let attempts = server_config
                .telemetry
                .handle()
                .counter("replica", "rebalance_attempts");
            rebalance = Some(
                thread::Builder::new()
                    .name("gengar-rebalance".into())
                    .spawn(move || {
                        Self::rebalance_loop(&fabric_bg, &servers_bg, &stop, interval, &attempts);
                    })
                    .expect("spawn rebalance thread"),
            );
        }
        Ok(Cluster {
            fabric,
            servers,
            client_config: ClientConfig::default(),
            health,
            rebalance_stop,
            rebalance,
        })
    }

    /// Whether pool id `id` is reachable: its server threads run and its
    /// machine is still attached to the fabric.
    fn is_alive(fabric: &Fabric, servers: &[Arc<MemoryServer>], id: usize) -> bool {
        servers
            .get(id)
            .is_some_and(|s| s.is_running() && fabric.node(s.node().id()).is_some())
    }

    /// The background backup-liveness scanner: every `interval`, each live
    /// primary whose backup died is re-pointed at the next live survivor
    /// (seeded with the primary's NVM image first, so the new shadow's
    /// promotion coverage starts from the settled state, not empty).
    fn rebalance_loop(
        fabric: &Arc<Fabric>,
        servers: &[Arc<MemoryServer>],
        stop: &AtomicBool,
        interval: Duration,
        attempts: &gengar_telemetry::CounterHandle,
    ) {
        let slice = Duration::from_millis(2).min(interval);
        let mut slept = Duration::ZERO;
        while !stop.load(Ordering::Relaxed) {
            // Sleep in slices so shutdown never waits a whole interval.
            if slept < interval {
                thread::sleep(slice);
                slept += slice;
                continue;
            }
            slept = Duration::ZERO;
            let n = servers.len();
            for (i, srv) in servers.iter().enumerate() {
                if !Self::is_alive(fabric, servers, i) {
                    continue; // dead primaries have nothing to protect
                }
                let b = srv.backup_id();
                if b != NO_BACKUP && Self::is_alive(fabric, servers, b as usize) {
                    continue;
                }
                // Next live survivor after the primary, skipping the dead
                // backup (deterministic: mirrors the launch-time ring).
                // One shadow, one ward: a survivor whose shadow is still
                // dedicated to a *relevant* other primary — alive, or dead
                // but promoted (its bytes are being served) — is not a
                // candidate. A claim by a dead, never-promoted ward is
                // stale and safe to retarget.
                let chosen = (1..n).map(|step| (i + step) % n).find(|&c| {
                    if c == b as usize
                        || !servers[c].replication_enabled()
                        || !Self::is_alive(fabric, servers, c)
                    {
                        return false;
                    }
                    match servers[c].shadow_ward() {
                        None => true,
                        Some(w) if w == i as u8 => true,
                        Some(w) => {
                            !Self::is_alive(fabric, servers, w as usize)
                                && !servers[c].has_promoted(w)
                        }
                    }
                });
                let Some(c) = chosen else { continue };
                attempts.inc();
                let Ok(image) = srv.nvm_image() else { continue };
                if servers[c].install_shadow_image(i as u8, &image).is_err() {
                    continue;
                }
                srv.set_backup(c as u8);
                gengar_telemetry::Tracer::global()
                    .event("replica.rebalance", (i as u64) << 8 | c as u64);
            }
        }
    }

    /// The cluster's shared QoS plane, when QoS is enabled.
    pub fn qos_plane(&self) -> Option<&Arc<QosPlane>> {
        self.servers.first().and_then(|s| s.qos_plane())
    }

    /// The cluster's shared health plane, when the live health layer is
    /// enabled.
    pub fn health_plane(&self) -> Option<&Arc<HealthPlane>> {
        self.health.as_ref()
    }

    /// Changes the default configuration handed to new clients.
    pub fn set_client_config(&mut self, config: ClientConfig) {
        self.client_config = config;
    }

    /// The fabric (for fault injection or extra nodes).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The running servers.
    pub fn servers(&self) -> &[Arc<MemoryServer>] {
        &self.servers
    }

    /// One server by pool id.
    pub fn server(&self, id: u8) -> Option<&Arc<MemoryServer>> {
        self.servers.get(id as usize)
    }

    /// Connects a new client (one per thread) with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client(&self, config: ClientConfig) -> Result<GengarClient, GengarError> {
        GengarClient::connect(&self.fabric, &self.servers, config)
    }

    /// Connects a client with the cluster's default client configuration.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn default_client(&self) -> Result<GengarClient, GengarError> {
        self.client(self.client_config.clone())
    }

    /// Shuts every server down (also happens on drop).
    pub fn shutdown(&self) {
        self.rebalance_stop.store(true, Ordering::Relaxed);
        if let Some(plane) = &self.health {
            plane.stop();
        }
        for s in &self.servers {
            s.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.rebalance.take() {
            let _ = handle.join();
        }
    }
}
