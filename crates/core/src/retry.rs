//! Client-side fault recovery policy: error classification, exponential
//! backoff with jitter, and per-operation deadlines.
//!
//! Every public `GengarClient` data operation runs as a loop of *attempts*.
//! When an attempt fails, [`classify`] decides what the failure means:
//!
//! * [`Disposition::Retry`] — transient; the connection is still usable.
//!   [`RdmaError::Timeout`]: a verb was posted, no completion arrived in
//!   time, and the queue pair is still in RTS (the request was lost in
//!   flight) — re-posting on the same QP is safe. And
//!   [`GengarError::Throttled`]: the tenant is over its QoS budget and the
//!   bucket refills with time.
//! * [`Disposition::Reconnect`] — the connection is broken. Error
//!   completions move the QP to the Error state, so every later verb on it
//!   is doomed; the client must re-run the mount handshake on fresh queue
//!   pairs before anything can succeed. A server that refuses new
//!   connections ([`GengarError::ServerUnavailable`]) lands here too so
//!   that the client keeps re-dialling until the server restarts or the
//!   deadline expires.
//! * [`Disposition::Failover`] — the *machine* is gone, not just the
//!   connection: [`RdmaError::NodeNotFound`] is the fabric's certificate
//!   that the node was detached ([`gengar_rdma::Fabric::remove_node`]) and
//!   no reconnect can ever reach it again. The client should re-mount the
//!   server's objects on its replica instead of re-dialling. Reconnect-class
//!   failures also *escalate* to failover once the reconnect budget is
//!   exhausted — a server that never comes back is indistinguishable from a
//!   dead one; the classification just gets there faster when the fabric
//!   already knows.
//! * [`Disposition::Fatal`] — retrying cannot help: bounds errors, protocol
//!   violations, allocation failures, contention limits. Surface
//!   immediately.
//!
//! Pacing is governed by [`RetryPolicy`] (built from [`ClientConfig`]) and
//! tracked per operation by [`RetryState`]: exponential backoff from
//! `retry_backoff` to `retry_backoff_max`, ±50% deterministic jitter to
//! decorrelate clients, a `max_retries` attempt cap, and an `op_deadline`
//! wall-clock budget that bounds the whole loop — an operation never hangs
//! past its deadline, it returns the last underlying error.

use std::time::{Duration, Instant};

use gengar_rdma::RdmaError;

use crate::config::ClientConfig;
use crate::error::GengarError;

/// What a failed attempt means for the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Transient loss; retry the attempt on the same connection.
    Retry,
    /// The connection is dead (or the server refused us); re-run the mount
    /// handshake before retrying.
    Reconnect,
    /// The server's machine is gone from the fabric; reconnecting is
    /// hopeless. Promote its backup and re-mount the objects there.
    Failover,
    /// Permanent; return the error to the caller unchanged.
    Fatal,
}

/// Classifies an operation failure for the recovery loop.
#[must_use]
pub fn classify(err: &GengarError) -> Disposition {
    match err {
        GengarError::Rdma(RdmaError::Timeout) => Disposition::Retry,
        // Over-budget tenants should back off and retry on the same
        // connection: the token bucket refills with time, nothing about
        // the connection is broken.
        GengarError::Throttled => Disposition::Retry,
        GengarError::Rdma(
            RdmaError::QpError(_)
            | RdmaError::CompletionError(_)
            | RdmaError::InvalidQpState { .. }
            | RdmaError::NotConnected,
        ) => Disposition::Reconnect,
        GengarError::ServerUnavailable(_) => Disposition::Reconnect,
        // The fabric's certificate that the node itself was detached:
        // `QueuePair::connect` checks the remote node before transitioning,
        // so this surfaces from the reconnect handshake when the machine is
        // dead. No amount of re-dialling will reach it.
        GengarError::Rdma(RdmaError::NodeNotFound(_)) => Disposition::Failover,
        _ => Disposition::Fatal,
    }
}

/// Immutable pacing knobs for the per-operation retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempt cap (number of *recoveries*, not counting the first try).
    pub max_retries: u32,
    /// First backoff sleep; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget for the whole operation.
    pub op_deadline: Duration,
}

impl RetryPolicy {
    /// Derives the policy from the client configuration.
    #[must_use]
    pub fn from_config(cfg: &ClientConfig) -> RetryPolicy {
        RetryPolicy {
            max_retries: cfg.max_retries,
            base_backoff: cfg.retry_backoff,
            max_backoff: cfg.retry_backoff_max.max(cfg.retry_backoff),
            op_deadline: cfg.op_deadline,
        }
    }

    /// Patience for a single posted verb or RPC receive wait. Much shorter
    /// than the operation deadline so several attempts (plus a reconnect)
    /// fit inside one operation budget, but never so short that healthy
    /// completions get misread as losses.
    #[must_use]
    pub fn attempt_timeout(&self) -> Duration {
        (self.op_deadline / 20).clamp(Duration::from_millis(5), Duration::from_millis(500))
    }

    /// Starts the per-operation retry state. `salt` seeds the jitter
    /// stream; pass something client-unique so concurrent clients
    /// desynchronise.
    #[must_use]
    pub fn start(&self, salt: u64) -> RetryState {
        RetryState {
            deadline: Instant::now() + self.op_deadline,
            attempt: 0,
            rng: salt | 1,
            escalated: false,
        }
    }
}

/// Mutable state of one operation's recovery loop.
#[derive(Debug)]
pub struct RetryState {
    deadline: Instant,
    attempt: u32,
    rng: u64,
    escalated: bool,
}

impl RetryState {
    /// Recoveries performed so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Time left in the operation budget (zero once expired).
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: cheap, deterministic, good enough for jitter.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The backoff that charging attempt `n` would sleep, before jitter.
    fn raw_backoff(policy: &RetryPolicy, attempt: u32) -> Duration {
        let doubled = policy
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        doubled.min(policy.max_backoff)
    }

    /// Charges one failed attempt: checks the attempt cap and deadline,
    /// then sleeps the jittered exponential backoff.
    ///
    /// # Errors
    ///
    /// Returns `err` unchanged when the budget is exhausted — the caller's
    /// loop simply propagates it.
    pub fn charge(&mut self, policy: &RetryPolicy, err: GengarError) -> Result<(), GengarError> {
        if self.attempt >= policy.max_retries {
            return Err(err);
        }
        let backoff = Self::raw_backoff(policy, self.attempt);
        // ±50% jitter, deterministic per (salt, attempt).
        let jittered =
            backoff / 2 + backoff.mul_f64((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64);
        let remaining = self.remaining();
        if remaining.is_zero() {
            return Err(err);
        }
        self.attempt += 1;
        gengar_telemetry::Tracer::global().event("retry.backoff", self.attempt as u64);
        std::thread::sleep(jittered.min(remaining));
        Ok(())
    }

    /// Like [`RetryState::charge`], but instead of sleeping returns the
    /// instant the backoff ends. The concurrent issue engine uses this so
    /// one group's backoff never stalls the groups that are healthy: the
    /// group parks until the returned instant while the event loop keeps
    /// driving everyone else.
    ///
    /// # Errors
    ///
    /// Returns `err` unchanged when the budget is exhausted, exactly like
    /// [`RetryState::charge`].
    pub fn charge_deferred(
        &mut self,
        policy: &RetryPolicy,
        err: GengarError,
    ) -> Result<Instant, GengarError> {
        if self.attempt >= policy.max_retries {
            return Err(err);
        }
        let backoff = Self::raw_backoff(policy, self.attempt);
        // ±50% jitter, deterministic per (salt, attempt).
        let jittered =
            backoff / 2 + backoff.mul_f64((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64);
        let remaining = self.remaining();
        if remaining.is_zero() {
            return Err(err);
        }
        self.attempt += 1;
        gengar_telemetry::Tracer::global().event("retry.backoff", self.attempt as u64);
        Ok(Instant::now() + jittered.min(remaining))
    }

    /// One-shot failover grant for this operation: the first call returns
    /// `true`, every later call `false`. The recovery loop escalates a
    /// dead server to its replica at most once per operation — a second
    /// machine loss inside one op surfaces the error instead of chasing
    /// replicas forever.
    pub fn escalate(&mut self) -> bool {
        !std::mem::replace(&mut self.escalated, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gengar_rdma::WcStatus;

    #[test]
    fn classification_matches_failure_model() {
        use Disposition::*;
        let cases: Vec<(GengarError, Disposition)> = vec![
            (GengarError::Rdma(RdmaError::Timeout), Retry),
            (GengarError::Throttled, Retry),
            (
                GengarError::Rdma(RdmaError::QpError(WcStatus::RnrRetryExceeded)),
                Reconnect,
            ),
            (
                GengarError::Rdma(RdmaError::CompletionError(WcStatus::TransportError)),
                Reconnect,
            ),
            (GengarError::Rdma(RdmaError::NotConnected), Reconnect),
            (GengarError::ServerUnavailable(3), Reconnect),
            (
                GengarError::Rdma(RdmaError::NodeNotFound(gengar_rdma::NodeId(4))),
                Failover,
            ),
            (
                GengarError::LockContended(crate::addr::GlobalAddr::new(
                    0,
                    crate::addr::MemClass::Nvm,
                    64,
                )),
                Fatal,
            ),
            (GengarError::ProtocolViolation("x"), Fatal),
        ];
        for (err, want) in cases {
            assert_eq!(classify(&err), want, "classify({err:?})");
        }
    }

    /// Every error either side of the RPC boundary maps to exactly one
    /// disposition — the match in [`classify`] is total, so the point of
    /// this test is to pin *which* bucket each variant lands in and force a
    /// conscious decision when a new variant is added. One constructed value
    /// per variant of [`GengarError`], including one per nested
    /// [`RdmaError`] variant.
    #[test]
    fn every_error_variant_has_exactly_one_disposition() {
        use gengar_hybridmem::HybridMemError;
        use gengar_rdma::{NodeId, Qpn, RKey};
        use Disposition::*;

        let addr = crate::addr::GlobalAddr::new(0, crate::addr::MemClass::Nvm, 64);
        let mem = HybridMemError::OutOfBounds {
            offset: 8,
            len: 16,
            capacity: 4,
        };
        let rdma_cases: Vec<(RdmaError, Disposition)> = vec![
            (
                RdmaError::InvalidQpState {
                    state: "Reset",
                    operation: "post_send",
                },
                Reconnect,
            ),
            (RdmaError::NotConnected, Reconnect),
            (RdmaError::NodeNotFound(NodeId(2)), Failover),
            (RdmaError::QpNotFound(NodeId(2), Qpn(7)), Fatal),
            (RdmaError::UnknownLKey(9), Fatal),
            (RdmaError::UnknownRKey(RKey(9)), Fatal),
            (
                RdmaError::LocalAccessOutOfBounds {
                    offset: 1,
                    len: 2,
                    mr_len: 1,
                },
                Fatal,
            ),
            (RdmaError::InlineTooLarge { len: 512, max: 64 }, Fatal),
            (RdmaError::SendQueueFull, Fatal),
            (RdmaError::RecvQueueFull, Fatal),
            (RdmaError::Memory(mem.clone()), Fatal),
            (RdmaError::ConnectionRefused("peer bound"), Fatal),
            (RdmaError::Timeout, Retry),
            (
                RdmaError::CompletionError(WcStatus::RemoteAccessError),
                Reconnect,
            ),
            (RdmaError::QpError(WcStatus::TransportError), Reconnect),
        ];
        let cases: Vec<(GengarError, Disposition)> = vec![
            (GengarError::UnknownServer(1), Fatal),
            (GengarError::OutOfMemory { requested: 1 << 30 }, Fatal),
            (
                GengarError::ObjectTooLarge {
                    requested: 2,
                    max: 1,
                },
                Fatal,
            ),
            (GengarError::InvalidAddress(addr), Fatal),
            (
                GengarError::AccessOutOfBounds {
                    addr,
                    offset: 0,
                    len: 9,
                    size: 8,
                },
                Fatal,
            ),
            (GengarError::DoubleFree(addr), Fatal),
            (GengarError::ProtocolViolation("bad tag"), Fatal),
            (GengarError::LockContended(addr), Fatal),
            (GengarError::ReadContended(addr), Fatal),
            (GengarError::AtomicInBatch("cas_u64"), Fatal),
            (GengarError::Memory(mem), Fatal),
            (GengarError::ServerUnavailable(0), Reconnect),
            (GengarError::Throttled, Retry),
        ];
        for (err, want) in rdma_cases
            .into_iter()
            .map(|(e, d)| (GengarError::Rdma(e), d))
            .chain(cases)
        {
            let got = classify(&err);
            assert_eq!(got, want, "classify({err:?})");
            // "exactly one": the dispositions are mutually exclusive by
            // construction (classify returns a single enum value); assert
            // it is one of the four known buckets so a future variant
            // cannot silently invent a fifth.
            assert!(matches!(got, Retry | Reconnect | Failover | Fatal));
        }
    }

    /// Failover on a *Reconnect*-class failure only happens after the
    /// reconnect budget is exhausted: while `charge` keeps granting
    /// attempts, the client re-dials; the escalation point is exactly the
    /// first `Err` return.
    #[test]
    fn failover_waits_for_reconnect_budget_exhaustion() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_nanos(1),
            max_backoff: Duration::from_nanos(2),
            op_deadline: Duration::from_secs(10),
        };
        let mut state = policy.start(11);
        let broken = || GengarError::Rdma(RdmaError::QpError(WcStatus::TransportError));
        assert_eq!(classify(&broken()), Disposition::Reconnect);
        let mut granted = 0;
        while state.charge(&policy, broken()).is_ok() {
            granted += 1;
        }
        assert_eq!(granted, policy.max_retries, "budget grants every retry");
        // Only now — with the budget gone — may the client escalate a
        // Reconnect disposition to failover. A NodeNotFound certificate
        // skips the wait entirely.
        assert_eq!(
            classify(&GengarError::Rdma(RdmaError::NodeNotFound(
                gengar_rdma::NodeId(0)
            ))),
            Disposition::Failover
        );
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let policy = RetryPolicy {
            max_retries: 100,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(160),
            op_deadline: Duration::from_secs(5),
        };
        let seq: Vec<Duration> = (0..8)
            .map(|n| RetryState::raw_backoff(&policy, n))
            .collect();
        assert_eq!(seq[0], Duration::from_micros(10));
        assert_eq!(seq[1], Duration::from_micros(20));
        assert_eq!(seq[4], Duration::from_micros(160));
        assert_eq!(seq[7], Duration::from_micros(160), "saturates at the cap");
    }

    #[test]
    fn attempt_cap_is_enforced() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_nanos(1),
            max_backoff: Duration::from_nanos(2),
            op_deadline: Duration::from_secs(10),
        };
        let mut state = policy.start(7);
        assert!(state
            .charge(&policy, GengarError::Rdma(RdmaError::Timeout))
            .is_ok());
        assert!(state
            .charge(&policy, GengarError::Rdma(RdmaError::Timeout))
            .is_ok());
        let err = state
            .charge(&policy, GengarError::Rdma(RdmaError::Timeout))
            .unwrap_err();
        assert!(matches!(err, GengarError::Rdma(RdmaError::Timeout)));
        assert_eq!(state.attempts(), 2);
    }

    #[test]
    fn deadline_bounds_the_loop() {
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            op_deadline: Duration::from_millis(20),
        };
        let mut state = policy.start(99);
        let start = Instant::now();
        let mut charges = 0u32;
        while state
            .charge(&policy, GengarError::Rdma(RdmaError::Timeout))
            .is_ok()
        {
            charges += 1;
            assert!(charges < 10_000, "deadline never tripped");
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "loop escaped its deadline"
        );
        assert!(charges > 0, "budget allowed no recovery at all");
    }

    #[test]
    fn jitter_is_deterministic_per_salt() {
        let policy = RetryPolicy::from_config(&ClientConfig::default());
        let mut a = policy.start(42);
        let mut b = policy.start(42);
        let (x, y) = (a.next_u64(), b.next_u64());
        assert_eq!(x, y);
        let mut c = policy.start(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn attempt_timeout_is_a_fraction_of_the_deadline() {
        let policy = RetryPolicy::from_config(&ClientConfig::default());
        assert!(policy.attempt_timeout() < policy.op_deadline);
        let tight = RetryPolicy {
            op_deadline: Duration::from_millis(10),
            ..policy
        };
        assert_eq!(tight.attempt_timeout(), Duration::from_millis(5));
    }
}
