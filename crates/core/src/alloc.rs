//! Size-class slab allocator over a server's exported NVM region.
//!
//! Objects are rounded up to power-of-two size classes (64 B .. 16 MiB)
//! including their [`crate::layout::OBJ_HEADER`]. Freed blocks return to a
//! per-class free list; fresh blocks come from a bump pointer. A map of
//! live allocations provides size lookup and double-free detection.

use std::collections::HashMap;

use crate::error::GengarError;

/// Smallest block handed out (one cache line).
pub const MIN_CLASS: u64 = 64;
/// Largest block handed out.
pub const MAX_CLASS: u64 = 16 << 20;
/// Number of size classes (64 B, 128 B, ..., 16 MiB).
pub const NUM_CLASSES: usize = 19;

fn class_of(size: u64) -> Option<usize> {
    if size == 0 || size > MAX_CLASS {
        return None;
    }
    let rounded = size.max(MIN_CLASS).next_power_of_two();
    Some((rounded.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize)
}

fn class_size(class: usize) -> u64 {
    MIN_CLASS << class
}

/// Point-in-time allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Live allocations.
    pub live: u64,
    /// Bytes handed to live allocations (block sizes, not payload sizes).
    pub live_bytes: u64,
    /// Bytes ever drawn from the bump pointer.
    pub bump_bytes: u64,
    /// Total allocation calls served.
    pub allocs: u64,
    /// Total frees served.
    pub frees: u64,
}

/// Size-class slab allocator over a `[base, base+capacity)` byte range.
#[derive(Debug)]
pub struct SlabAllocator {
    base: u64,
    capacity: u64,
    bump: u64,
    free_lists: Vec<Vec<u64>>,
    /// offset -> size class of the live block.
    live: HashMap<u64, usize>,
    stats: AllocStats,
}

impl SlabAllocator {
    /// Creates an allocator over `[base, base+capacity)`.
    pub fn new(base: u64, capacity: u64) -> Self {
        SlabAllocator {
            base,
            capacity,
            bump: base,
            free_lists: vec![Vec::new(); NUM_CLASSES],
            live: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Rounds `size` to its block size, or `None` if unallocatable.
    pub fn block_size(size: u64) -> Option<u64> {
        class_of(size).map(class_size)
    }

    /// Allocates a block of at least `size` bytes, returning its offset
    /// (64-byte aligned).
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] beyond the largest class;
    /// [`GengarError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, GengarError> {
        let class = class_of(size).ok_or(GengarError::ObjectTooLarge {
            requested: size,
            max: MAX_CLASS,
        })?;
        let offset = if let Some(off) = self.free_lists[class].pop() {
            off
        } else {
            let need = class_size(class);
            let end = self
                .bump
                .checked_add(need)
                .ok_or(GengarError::OutOfMemory { requested: size })?;
            if end > self.base + self.capacity {
                return Err(GengarError::OutOfMemory { requested: size });
            }
            let off = self.bump;
            self.bump = end;
            self.stats.bump_bytes += need;
            off
        };
        self.live.insert(offset, class);
        self.stats.live += 1;
        self.stats.live_bytes += class_size(class);
        self.stats.allocs += 1;
        Ok(offset)
    }

    /// Frees the block at `offset`, returning its block size.
    ///
    /// # Errors
    ///
    /// [`GengarError::InvalidAddress`]-shaped error (reported as a raw
    /// offset mismatch) when `offset` is not a live allocation — this also
    /// catches double frees.
    pub fn free(&mut self, offset: u64) -> Result<u64, GengarError> {
        let class = self.live.remove(&offset).ok_or_else(|| {
            GengarError::DoubleFree(crate::addr::GlobalAddr::new(
                0,
                crate::addr::MemClass::Nvm,
                offset & ((1 << 48) - 1),
            ))
        })?;
        self.free_lists[class].push(offset);
        self.stats.live -= 1;
        self.stats.live_bytes -= class_size(class);
        self.stats.frees += 1;
        Ok(class_size(class))
    }

    /// Block size of the live allocation at `offset`, if any.
    pub fn size_of(&self, offset: u64) -> Option<u64> {
        self.live.get(&offset).map(|&c| class_size(c))
    }

    /// Returns whether `offset` is a live allocation.
    pub fn is_live(&self, offset: u64) -> bool {
        self.live.contains_key(&offset)
    }

    /// Allocator statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }
}

/// Fine-grained frame allocator for the DRAM cache and demote tiers.
///
/// Cache frames are payload-sized (header + payload + tail), which lands
/// just past a power of two for the common power-of-two payloads — under
/// the slab's power-of-two classes almost half of every frame would be
/// internal fragmentation. This allocator rounds to two-level TLSF-style
/// classes instead: a power-of-two first level split into eight linear
/// subclasses (granule `2^(k-3)`, clamped to 64 B alignment), capping
/// waste at ~12.5% and fitting ~1.7x more 16 KiB frames into the same
/// DRAM budget. Freed frames return to an exact-block-size free list;
/// fresh frames come from a bump pointer.
#[derive(Debug)]
pub struct FrameAllocator {
    base: u64,
    capacity: u64,
    bump: u64,
    /// block size -> free offsets of exactly that block size.
    free_lists: HashMap<u64, Vec<u64>>,
    /// offset -> block size of the live frame.
    live: HashMap<u64, u64>,
    stats: AllocStats,
}

impl FrameAllocator {
    /// Creates an allocator over `[base, base+capacity)`.
    pub fn new(base: u64, capacity: u64) -> Self {
        FrameAllocator {
            base,
            capacity,
            bump: base,
            free_lists: HashMap::new(),
            live: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Rounds `size` to its block size, or `None` if unallocatable.
    pub fn block_size(size: u64) -> Option<u64> {
        if size == 0 || size > MAX_CLASS {
            return None;
        }
        let size = size.max(MIN_CLASS);
        // Granule: 1/8 of the enclosing power of two, but never below the
        // 64-byte alignment unit.
        let k = 63 - size.leading_zeros() as u64;
        let granule = (1u64 << k.saturating_sub(3)).max(MIN_CLASS);
        Some(size.div_ceil(granule) * granule)
    }

    /// Allocates a frame of at least `size` bytes, returning its offset
    /// (64-byte aligned).
    ///
    /// # Errors
    ///
    /// [`GengarError::ObjectTooLarge`] beyond the largest class;
    /// [`GengarError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, GengarError> {
        let block = Self::block_size(size).ok_or(GengarError::ObjectTooLarge {
            requested: size,
            max: MAX_CLASS,
        })?;
        let recycled = self.free_lists.get_mut(&block).and_then(Vec::pop);
        let offset = if let Some(off) = recycled {
            off
        } else {
            let end = self
                .bump
                .checked_add(block)
                .ok_or(GengarError::OutOfMemory { requested: size })?;
            if end > self.base + self.capacity {
                return Err(GengarError::OutOfMemory { requested: size });
            }
            let off = self.bump;
            self.bump = end;
            self.stats.bump_bytes += block;
            off
        };
        self.live.insert(offset, block);
        self.stats.live += 1;
        self.stats.live_bytes += block;
        self.stats.allocs += 1;
        Ok(offset)
    }

    /// Frees the frame at `offset`, returning its block size.
    ///
    /// # Errors
    ///
    /// [`GengarError::DoubleFree`]-shaped error when `offset` is not a
    /// live frame (this also catches double frees).
    pub fn free(&mut self, offset: u64) -> Result<u64, GengarError> {
        let block = self.live.remove(&offset).ok_or_else(|| {
            GengarError::DoubleFree(crate::addr::GlobalAddr::new(
                0,
                crate::addr::MemClass::DramCache,
                offset & ((1 << 48) - 1),
            ))
        })?;
        self.free_lists.entry(block).or_default().push(offset);
        self.stats.live -= 1;
        self.stats.live_bytes -= block;
        self.stats.frees += 1;
        Ok(block)
    }

    /// Block size of the live frame at `offset`, if any.
    pub fn size_of(&self, offset: u64) -> Option<u64> {
        self.live.get(&offset).copied()
    }

    /// Returns whether `offset` is a live frame.
    pub fn is_live(&self, offset: u64) -> bool {
        self.live.contains_key(&offset)
    }

    /// Allocator statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding() {
        assert_eq!(SlabAllocator::block_size(1), Some(64));
        assert_eq!(SlabAllocator::block_size(64), Some(64));
        assert_eq!(SlabAllocator::block_size(65), Some(128));
        assert_eq!(SlabAllocator::block_size(4096), Some(4096));
        assert_eq!(SlabAllocator::block_size(MAX_CLASS), Some(MAX_CLASS));
        assert_eq!(SlabAllocator::block_size(MAX_CLASS + 1), None);
        assert_eq!(SlabAllocator::block_size(0), None);
    }

    #[test]
    fn alloc_returns_aligned_disjoint_blocks() {
        let mut a = SlabAllocator::new(4096, 1 << 20);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        assert_ne!(x, y);
        assert_eq!(x % 64, 0);
        assert!(x >= 4096);
        assert!(y >= x + 128 || x >= y + 128);
    }

    #[test]
    fn free_recycles_blocks() {
        let mut a = SlabAllocator::new(0, 1 << 20);
        let x = a.alloc(200).unwrap();
        assert_eq!(a.free(x).unwrap(), 256);
        let y = a.alloc(200).unwrap();
        assert_eq!(x, y, "freed block should be reused");
    }

    #[test]
    fn double_free_detected() {
        let mut a = SlabAllocator::new(0, 1 << 20);
        let x = a.alloc(64).unwrap();
        a.free(x).unwrap();
        assert!(matches!(a.free(x), Err(GengarError::DoubleFree(_))));
        assert!(matches!(a.free(12345), Err(GengarError::DoubleFree(_))));
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = SlabAllocator::new(0, 256);
        a.alloc(128).unwrap();
        a.alloc(128).unwrap();
        assert!(matches!(a.alloc(128), Err(GengarError::OutOfMemory { .. })));
    }

    #[test]
    fn too_large_reported() {
        let mut a = SlabAllocator::new(0, 1 << 30);
        assert!(matches!(
            a.alloc(MAX_CLASS + 1),
            Err(GengarError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut a = SlabAllocator::new(0, 1 << 20);
        let x = a.alloc(64).unwrap();
        let _y = a.alloc(64).unwrap();
        a.free(x).unwrap();
        let s = a.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live, 1);
        assert_eq!(s.live_bytes, 64);
        assert_eq!(s.bump_bytes, 128);
    }

    #[test]
    fn size_lookup() {
        let mut a = SlabAllocator::new(0, 1 << 20);
        let x = a.alloc(500).unwrap();
        assert_eq!(a.size_of(x), Some(512));
        assert!(a.is_live(x));
        a.free(x).unwrap();
        assert_eq!(a.size_of(x), None);
        assert!(!a.is_live(x));
    }

    #[test]
    fn frame_rounding_is_subclass_granular() {
        // Exact powers of two stay exact.
        assert_eq!(FrameAllocator::block_size(64), Some(64));
        assert_eq!(FrameAllocator::block_size(16384), Some(16384));
        // Just past a power of two costs one granule, not a doubling: a
        // 16 KiB payload's 16424-byte frame fits in 18 KiB, not 32 KiB.
        assert_eq!(FrameAllocator::block_size(16424), Some(16384 + 2048));
        assert_eq!(FrameAllocator::block_size(104), Some(128));
        // Granule clamps to the 64-byte alignment unit for tiny frames.
        assert_eq!(FrameAllocator::block_size(65), Some(128));
        assert_eq!(FrameAllocator::block_size(1), Some(64));
        assert_eq!(FrameAllocator::block_size(0), None);
        assert_eq!(FrameAllocator::block_size(MAX_CLASS), Some(MAX_CLASS));
        assert_eq!(FrameAllocator::block_size(MAX_CLASS + 1), None);
    }

    #[test]
    fn frame_alloc_packs_denser_than_slab() {
        // 16 KiB payloads (16424-byte frames) in 1 MiB: the slab fits 32,
        // the frame allocator at least 50.
        let mut a = FrameAllocator::new(0, 1 << 20);
        let mut n = 0;
        while a.alloc(16424).is_ok() {
            n += 1;
        }
        assert!(n >= 50, "only {n} frames packed");
    }

    #[test]
    fn frame_free_recycles_and_detects_double_free() {
        let mut a = FrameAllocator::new(0, 1 << 20);
        let x = a.alloc(16424).unwrap();
        assert_eq!(a.size_of(x), Some(18432));
        assert_eq!(a.free(x).unwrap(), 18432);
        let y = a.alloc(16424).unwrap();
        assert_eq!(x, y, "freed frame should be reused");
        a.free(y).unwrap();
        assert!(matches!(a.free(y), Err(GengarError::DoubleFree(_))));
        let s = a.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.live, 0);
        assert_eq!(s.bump_bytes, 18432, "second alloc recycled, no new bump");
    }
}
