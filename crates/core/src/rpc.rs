//! Control-plane RPC over two-sided SEND/RECV verbs.
//!
//! Each client-server connection dedicates one RC queue pair to RPC. Each
//! side owns a small registered message buffer with an outgoing slot and an
//! incoming slot of [`MAX_MSG`] bytes. Calls are synchronous (one
//! outstanding request per connection), which matches how Gengar uses the
//! control plane: the data plane is entirely one-sided.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gengar_rdma::{Endpoint, MemoryRegion, Payload, RdmaError, Sge};

use crate::error::GengarError;
use crate::proto::{Request, Response, MAX_MSG};

/// Offset of the outgoing slot within an RPC message buffer.
const OUT_SLOT: u64 = 0;
/// Offset of the incoming slot within an RPC message buffer.
const IN_SLOT: u64 = MAX_MSG as u64;

/// Bytes an RPC message buffer MR must cover.
pub const RPC_BUF_BYTES: u64 = 2 * MAX_MSG as u64;

/// Default overall deadline for one RPC call, retries included.
/// [`crate::GengarClient::connect`] overrides it with
/// [`crate::ClientConfig::op_deadline`].
pub const DEFAULT_RPC_DEADLINE: Duration = Duration::from_secs(2);

/// Client half of an RPC connection.
#[derive(Debug)]
pub struct RpcClient {
    ep: Endpoint,
    buf: Arc<MemoryRegion>,
    timeout: Duration,
}

impl RpcClient {
    /// Wraps a connected endpoint and a message buffer of at least
    /// [`RPC_BUF_BYTES`], with the [`DEFAULT_RPC_DEADLINE`].
    ///
    /// # Panics
    ///
    /// Panics if `buf` is smaller than [`RPC_BUF_BYTES`].
    pub fn new(ep: Endpoint, buf: Arc<MemoryRegion>) -> Self {
        Self::with_deadline(ep, buf, DEFAULT_RPC_DEADLINE)
    }

    /// Like [`RpcClient::new`] with an explicit per-call deadline.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is smaller than [`RPC_BUF_BYTES`].
    pub fn with_deadline(ep: Endpoint, buf: Arc<MemoryRegion>, deadline: Duration) -> Self {
        assert!(
            buf.len() >= RPC_BUF_BYTES,
            "rpc buffer needs {RPC_BUF_BYTES} bytes, got {}",
            buf.len()
        );
        RpcClient {
            ep,
            buf,
            timeout: deadline,
        }
    }

    /// Adjusts the per-call deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The underlying endpoint (for timeout tuning at connect time).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.ep
    }

    /// Issues one request and waits for the response.
    ///
    /// A request lost to a transport fault is re-sent: the wait for the
    /// response uses an attempt-scale patience (a twentieth of the
    /// deadline — a response not back by then is lost, not slow), and
    /// timeouts are retried until the call deadline expires. The queue pair stays
    /// healthy across such losses, so re-posting is safe; requests that
    /// reached the server are answered exactly once (a retried request that
    /// *was* processed is re-processed, which is idempotent for every
    /// request in the protocol except `Alloc`, where it can at worst leak
    /// one allocation per fault).
    ///
    /// # Errors
    ///
    /// Transport failures surface as [`GengarError::Rdma`] — a dead queue
    /// pair as `Rdma(QpError)`/`Rdma(CompletionError)`, deadline exhaustion
    /// as `Rdma(Timeout)`; malformed responses as
    /// [`GengarError::ProtocolViolation`].
    pub fn call(&self, req: &Request) -> Result<Response, GengarError> {
        // Open the span before encode so the request wire bytes carry this
        // span as the server-side parent.
        let _call_span = gengar_telemetry::Tracer::global().span("rpc.call");
        let mut out = Vec::with_capacity(256);
        req.encode(&mut out);
        debug_assert!(out.len() <= MAX_MSG);

        let deadline = Instant::now() + self.timeout;
        // Attempt-scale patience, mirroring RetryPolicy::attempt_timeout:
        // several lost responses (each costing one patience) plus the
        // re-sends must fit inside one deadline, and a connection that died
        // mid-call should be discovered in a fraction of the budget.
        let patience =
            (self.timeout / 20).clamp(Duration::from_millis(5), Duration::from_millis(500));
        loop {
            // Drop completions of responses that arrived after an earlier
            // attempt gave up on them — they belong to a stale request.
            while !self.ep.qp().recv_cq().poll(16).is_empty() {}

            // Arm the response buffer before sending the request.
            self.ep
                .post_recv(Sge::new(self.buf.lkey(), IN_SLOT, MAX_MSG as u64))?;

            // Stage the request bytes in the outgoing slot and send.
            self.buf.region().write(OUT_SLOT, &out)?;
            let outcome = self
                .ep
                .send(
                    Payload::Sge(Sge::new(self.buf.lkey(), OUT_SLOT, out.len() as u64)),
                    None,
                )
                .and_then(|_| {
                    let left = deadline.saturating_duration_since(Instant::now());
                    self.ep
                        .recv(patience.min(left.max(Duration::from_millis(1))))
                });
            match outcome {
                Ok(wc) => {
                    let mut resp_bytes = vec![0u8; wc.byte_len as usize];
                    self.buf.region().read(IN_SLOT, &mut resp_bytes)?;
                    return Response::decode(&resp_bytes);
                }
                Err(RdmaError::Timeout) if Instant::now() < deadline => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Server half of an RPC connection: a loop that decodes requests, invokes
/// the handler and sends responses until shutdown or transport failure.
#[derive(Debug)]
pub struct RpcServerConn {
    ep: Endpoint,
    buf: Arc<MemoryRegion>,
}

impl RpcServerConn {
    /// Wraps the server-side endpoint and message buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is smaller than [`RPC_BUF_BYTES`].
    pub fn new(ep: Endpoint, buf: Arc<MemoryRegion>) -> Self {
        assert!(
            buf.len() >= RPC_BUF_BYTES,
            "rpc buffer needs {RPC_BUF_BYTES} bytes, got {}",
            buf.len()
        );
        RpcServerConn { ep, buf }
    }

    /// Serves requests until `shutdown` is set or the connection dies.
    ///
    /// Malformed requests are answered with
    /// [`Response::Err`]`{ code: BAD_REQUEST }` rather than killing the
    /// connection.
    pub fn serve<H>(&self, shutdown: &AtomicBool, mut handler: H)
    where
        H: FnMut(Request) -> Response,
    {
        while !shutdown.load(Ordering::Relaxed) {
            if self
                .ep
                .post_recv(Sge::new(self.buf.lkey(), IN_SLOT, MAX_MSG as u64))
                .is_err()
            {
                return;
            }
            // Poll with a short patience so shutdown is honoured promptly.
            let wc = loop {
                match classify_recv(&self.ep, Duration::from_millis(50)) {
                    Ok(wc) => break wc,
                    Err(RecvFailure::WouldBlock) => {
                        if shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(RecvFailure::Dead) => return,
                }
            };
            let mut req_bytes = vec![0u8; wc.byte_len as usize];
            if self.buf.region().read(IN_SLOT, &mut req_bytes).is_err() {
                return;
            }
            let resp = match Request::decode_traced(&req_bytes) {
                Ok((req, ctx)) => {
                    // Serve under the issuing client op's trace context so
                    // server-side spans land in the same causal trace.
                    let _ctx = ctx.adopt();
                    let mut serve_span = gengar_telemetry::Tracer::global().span("rpc.serve");
                    serve_span.set_detail(req_bytes.first().copied().unwrap_or(0) as u64);
                    handler(req)
                }
                Err(_) => Response::Err {
                    code: crate::proto::err_code::BAD_REQUEST,
                },
            };
            let mut out = Vec::with_capacity(256);
            resp.encode(&mut out);
            if self.buf.region().write(OUT_SLOT, &out).is_err() {
                return;
            }
            if self
                .ep
                .send(
                    Payload::Sge(Sge::new(self.buf.lkey(), OUT_SLOT, out.len() as u64)),
                    None,
                )
                .is_err()
            {
                return;
            }
        }
    }
}

/// Internal distinction between "no request yet" and "connection dead".
enum RecvFailure {
    WouldBlock,
    Dead,
}

fn classify_recv(ep: &Endpoint, timeout: Duration) -> Result<gengar_rdma::Wc, RecvFailure> {
    match ep.recv(timeout) {
        Ok(wc) => Ok(wc),
        Err(RdmaError::Timeout) => Err(RecvFailure::WouldBlock),
        Err(_) => Err(RecvFailure::Dead),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind, MemRegion};
    use gengar_rdma::{Access, Fabric, FabricConfig, QpOptions};

    fn rpc_pair() -> (Arc<Fabric>, RpcClient, RpcServerConn) {
        let fabric = Fabric::new(FabricConfig::instant());
        let c_node = fabric.add_node();
        let s_node = fabric.add_node();
        let c_pd = c_node.alloc_pd();
        let s_pd = s_node.alloc_pd();
        let c_dev = Arc::new(
            MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), RPC_BUF_BYTES).unwrap(),
        );
        let s_dev = Arc::new(
            MemDevice::new(1, DeviceProfile::instant(MemKind::Dram), RPC_BUF_BYTES).unwrap(),
        );
        let c_buf = c_pd.reg_mr(MemRegion::whole(c_dev), Access::all()).unwrap();
        let s_buf = s_pd.reg_mr(MemRegion::whole(s_dev), Access::all()).unwrap();
        let (ce, se) =
            Endpoint::pair((&c_node, &c_pd), (&s_node, &s_pd), QpOptions::default()).unwrap();
        let client = RpcClient::new(ce, c_buf);
        let server = RpcServerConn::new(se, s_buf);
        (fabric, client, server)
    }

    #[test]
    fn call_roundtrips_through_handler() {
        let (_fabric, client, server) = rpc_pair();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            server.serve(&shutdown2, |req| match req {
                Request::Alloc { size } => Response::Alloc { addr: size * 2 },
                _ => Response::Ok,
            });
        });
        let resp = client.call(&Request::Alloc { size: 21 }).unwrap();
        assert_eq!(resp, Response::Alloc { addr: 42 });
        let resp = client.call(&Request::OpenStaging).unwrap();
        assert_eq!(resp, Response::Ok);
        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }

    #[test]
    fn many_sequential_calls() {
        let (_fabric, client, server) = rpc_pair();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            let mut count = 0u64;
            server.serve(&shutdown2, |_req| {
                count += 1;
                Response::Durable { seq: count }
            });
        });
        for i in 1..=100u64 {
            let resp = client.call(&Request::OpenStaging).unwrap();
            assert_eq!(resp, Response::Durable { seq: i });
        }
        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }

    #[test]
    fn server_shutdown_stops_loop() {
        let (_fabric, _client, server) = rpc_pair();
        let shutdown = Arc::new(AtomicBool::new(true));
        // Already-set shutdown returns promptly.
        server.serve(&shutdown, |_req| Response::Ok);
    }

    #[test]
    fn call_retries_through_a_dropped_request() {
        use gengar_rdma::{FaultPlane, TelemetryConfig};
        // Drop the very first SEND on the fabric: the first request
        // vanishes in flight and the call must transparently re-send.
        let plane = Arc::new(
            FaultPlane::from_spec("drop:verb=send,at=1", 7, TelemetryConfig::disabled()).unwrap(),
        );
        let mut cfg = FabricConfig::instant();
        cfg.faults = Some(Arc::clone(&plane));
        let fabric = Fabric::new(cfg);
        let c_node = fabric.add_node();
        let s_node = fabric.add_node();
        let c_pd = c_node.alloc_pd();
        let s_pd = s_node.alloc_pd();
        let c_dev = Arc::new(
            MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), RPC_BUF_BYTES).unwrap(),
        );
        let s_dev = Arc::new(
            MemDevice::new(1, DeviceProfile::instant(MemKind::Dram), RPC_BUF_BYTES).unwrap(),
        );
        let c_buf = c_pd.reg_mr(MemRegion::whole(c_dev), Access::all()).unwrap();
        let s_buf = s_pd.reg_mr(MemRegion::whole(s_dev), Access::all()).unwrap();
        let (mut ce, se) =
            Endpoint::pair((&c_node, &c_pd), (&s_node, &s_pd), QpOptions::default()).unwrap();
        // Keep the dropped SEND's own spin-wait short so the retry happens
        // well inside the call deadline.
        ce.set_op_timeout(Duration::from_millis(25));
        let client = RpcClient::with_deadline(ce, c_buf, Duration::from_millis(500));
        let server = RpcServerConn::new(se, s_buf);

        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let t = std::thread::spawn(move || {
            server.serve(&shutdown2, |req| match req {
                Request::Alloc { size } => Response::Alloc { addr: size + 1 },
                _ => Response::Ok,
            });
        });
        let resp = client.call(&Request::Alloc { size: 9 }).unwrap();
        assert_eq!(resp, Response::Alloc { addr: 10 });
        shutdown.store(true, Ordering::Relaxed);
        t.join().unwrap();
    }
}
