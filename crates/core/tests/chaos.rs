//! Seeded chaos suite: randomized fault schedules over micro and YCSB-ish
//! workloads, with a shadow model asserting that every acknowledged write
//! is readable once the dust settles.
//!
//! Each test runs once per seed; seeds come from the `CHAOS_SEEDS`
//! environment variable (comma-separated) or a small built-in list.
//! `scripts/chaos.sh` sweeps a fixed set of ten. Every assertion message
//! carries the seed so a failure reproduces with
//! `CHAOS_SEEDS=<seed> cargo test -p gengar-core --test chaos`.

use std::collections::HashSet;
use std::sync::Arc;

use gengar_core::client::GengarClient;
use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, ServerConfig};
use gengar_core::GengarError;
use gengar_rdma::{FabricConfig, FaultPlane};
use gengar_telemetry::{FlightRecorder, TelemetryConfig, TraceMode, Tracer};

/// Arms the flight recorder for this chaos run (sampled tracing feeds it)
/// and installs a panic hook — once per process — that dumps the recorder
/// and prints the last-N trace summary to stderr on any chaos failure, so
/// a red seed ships its own causal evidence.
fn arm_flight_recorder() {
    let tracer = Tracer::global();
    if !tracer.enabled() {
        tracer.set_mode(TraceMode::Sampled);
    }
    let recorder = FlightRecorder::global();
    recorder.set_out_dir(std::env::temp_dir());
    recorder.arm();
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let recorder = FlightRecorder::global();
            match recorder
                .trigger("chaos-assert")
                .or_else(|| recorder.last_dump())
            {
                Some(path) => eprintln!(
                    "chaos failure: flight-recorder trace dumped to {}",
                    path.display()
                ),
                None => eprintln!("chaos failure: no flight-recorder dump available"),
            }
            eprintln!("chaos failure: recent traces:\n{}", recorder.summary(16));
            prev(info);
        }));
    });
}

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("CHAOS_SEEDS: seeds are u64s"))
            .collect(),
        Err(_) => vec![1, 7, 42],
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Crash-simulating server with headroom for reconnect storms.
fn chaos_server_config() -> ServerConfig {
    let mut config = ServerConfig::small();
    config.crash_sim = true;
    config.max_clients = 64;
    config
}

/// Hotness reports are disabled so the only RPCs in flight are the ones
/// the workload issues — keeps the shadow model's view of "what could have
/// landed" exact.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        report_every: u32::MAX,
        ..Default::default()
    }
}

fn chaos_cluster(spec: &str, seed: u64) -> (Cluster, Arc<FaultPlane>) {
    let plane = Arc::new(
        FaultPlane::from_spec(spec, seed, TelemetryConfig::disabled())
            .expect("chaos suite fault spec must parse"),
    );
    let mut fabric = FabricConfig::instant();
    fabric.faults = Some(Arc::clone(&plane));
    let cluster = Cluster::launch(1, chaos_server_config(), fabric).unwrap();
    (cluster, plane)
}

/// Shadow model of one pool object under faults.
///
/// `settled` is the value the object must read back once faults stop and
/// the rings drain — known exactly whenever the *last* write was
/// acknowledged. A failed write leaves the object ambiguous (the attempt
/// provably either landed in full or not at all, never torn), so the
/// object may hold any value in `maybe` until the next acknowledged write.
struct Shadow {
    settled: Option<u8>,
    maybe: HashSet<u8>,
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            settled: Some(0),
            maybe: HashSet::from([0]),
        }
    }

    fn acked(&mut self, val: u8) {
        self.settled = Some(val);
        self.maybe = HashSet::from([val]);
    }

    fn failed(&mut self, val: u8) {
        self.settled = None;
        self.maybe.insert(val);
    }

    fn check_final(&self, got: u8, seed: u64, obj: usize) {
        if let Some(want) = self.settled {
            assert_eq!(
                got, want,
                "seed {seed}: object {obj} lost its acknowledged write"
            );
        } else {
            assert!(
                self.maybe.contains(&got),
                "seed {seed}: object {obj} holds {got}, never written ({:?})",
                self.maybe
            );
        }
    }
}

fn read_fill_byte(
    client: &mut GengarClient,
    ptr: gengar_core::addr::GlobalPtr,
) -> Result<u8, GengarError> {
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf)?;
    assert!(
        buf.iter().all(|&b| b == buf[0]),
        "torn 64-byte object: {buf:?}"
    );
    Ok(buf[0])
}

/// Random single-client workload under probabilistic drops, error
/// completions, RNR exhaustion and delays. Operations may fail (the fault
/// schedule can outlast any retry budget) but must never hang, and the
/// shadow model must hold both during the run and after the plane is
/// disarmed.
#[test]
fn chaos_micro_random_faults() {
    arm_flight_recorder();
    for seed in seeds() {
        let (cluster, plane) = chaos_cluster(
            "drop:p=0.02 + err:p=0.01,status=transport + rnr:p=0.005 + delay:ns=20000,p=0.05",
            seed,
        );
        let mut client = cluster.client(chaos_client_config()).unwrap();
        let ptrs: Vec<_> = (0..8).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut shadows: Vec<Shadow> = (0..8).map(|_| Shadow::new()).collect();

        let mut rng = seed ^ 0xC0FFEE;
        for op in 0..400u32 {
            let i = (splitmix64(&mut rng) % 8) as usize;
            if splitmix64(&mut rng).is_multiple_of(4) {
                // Read: failures are acceptable mid-chaos, wrong data is not.
                if let Ok(got) = read_fill_byte(&mut client, ptrs[i]) {
                    assert!(
                        shadows[i].maybe.contains(&got),
                        "seed {seed} op {op}: object {i} read {got}, \
                         which was never written ({:?})",
                        shadows[i].maybe
                    );
                }
            } else {
                let val = (splitmix64(&mut rng) % 251) as u8;
                match client.write(ptrs[i], 0, &[val; 64]) {
                    Ok(()) => shadows[i].acked(val),
                    Err(e) => {
                        assert!(
                            !matches!(
                                e,
                                GengarError::ProtocolViolation(_) | GengarError::InvalidAddress(_)
                            ),
                            "seed {seed} op {op}: fault surfaced as a protocol bug: {e:?}"
                        );
                        shadows[i].failed(val);
                    }
                }
            }
        }

        // Quiesce: no more faults, drain the rings, then every object must
        // satisfy its shadow — acknowledged writes exactly, failed writes
        // as one of the values that could have landed.
        plane.disarm();
        client.drain_all().unwrap();
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr)
                .unwrap_or_else(|e| panic!("seed {seed}: final read of object {i} failed: {e:?}"));
            shadow.check_final(got, seed, i);
        }
        assert!(plane.ops_seen() > 0, "seed {seed}: plane saw no traffic");
    }
}

/// A deterministic flap schedule (every link partitioned for the first 15
/// of every 120 fabric ops) under a YCSB-like read-mostly mix. The client
/// rides through each outage with retries/reconnects; the run must finish
/// with the shadow model intact and visible recovery work in the stats.
#[test]
fn chaos_ycsb_under_flap_schedule() {
    arm_flight_recorder();
    for seed in seeds() {
        let (cluster, plane) = chaos_cluster("flap:period=120,blocked=15", seed);
        let mut client = cluster.client(chaos_client_config()).unwrap();
        let ptrs: Vec<_> = (0..16).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut shadows: Vec<Shadow> = (0..16).map(|_| Shadow::new()).collect();

        let mut rng = seed ^ 0xD15EA5E;
        for _ in 0..300u32 {
            let i = (splitmix64(&mut rng) % 16) as usize;
            // YCSB-B-ish: 80% reads (the interesting traffic for flaps is
            // still plentiful: every read is at least one fabric op).
            if splitmix64(&mut rng) % 10 < 8 {
                if let Ok(got) = read_fill_byte(&mut client, ptrs[i]) {
                    assert!(
                        shadows[i].maybe.contains(&got),
                        "seed {seed}: object {i} read {got} ({:?})",
                        shadows[i].maybe
                    );
                }
            } else {
                let val = (splitmix64(&mut rng) % 251) as u8;
                match client.write(ptrs[i], 0, &[val; 64]) {
                    Ok(()) => shadows[i].acked(val),
                    Err(_) => shadows[i].failed(val),
                }
            }
        }

        plane.disarm();
        client.drain_all().unwrap();
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr)
                .unwrap_or_else(|e| panic!("seed {seed}: final read of object {i} failed: {e:?}"));
            shadow.check_final(got, seed, i);
        }
        let stats = client.stats();
        assert!(
            stats.retries > 0,
            "seed {seed}: flap schedule exercised no retries"
        );
    }
}

/// Server crash + recovery in the middle of a write-heavy run: the client
/// reconnects by itself, replays what the old ring had not drained, and
/// no acknowledged write is lost.
#[test]
fn chaos_server_crash_mid_run_reconnects() {
    arm_flight_recorder();
    for seed in seeds() {
        let cluster = Cluster::launch(1, chaos_server_config(), FabricConfig::instant()).unwrap();
        let mut client = cluster.client(chaos_client_config()).unwrap();
        let ptrs: Vec<_> = (0..8).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut shadows: Vec<Shadow> = (0..8).map(|_| Shadow::new()).collect();
        let counter = client.alloc(0, 8).unwrap();
        let mut acked_adds = 0u64;
        let mut tried_adds = 0u64;

        let mut rng = seed ^ 0xBADD1E;
        for op in 0..200u32 {
            if op == 100 {
                // Power-fail the server and bring it back. The client is
                // not told: its next operations discover the dead control
                // plane and re-dial on their own.
                let server = cluster.server(0).unwrap();
                server.shutdown();
                server.crash().unwrap();
                server.recover().unwrap();
                server.restart();
            }
            if op % 10 == 9 {
                // Atomics anchor durability over RPC — the path that
                // actually dies with the old serve threads, forcing the
                // reconnect (staged writes and reads are one-sided).
                tried_adds += 1;
                if client.faa_u64(counter, 0, 1).is_ok() {
                    acked_adds += 1;
                }
                continue;
            }
            let i = (splitmix64(&mut rng) % 8) as usize;
            let val = (splitmix64(&mut rng) % 251) as u8;
            match client.write(ptrs[i], 0, &[val; 64]) {
                Ok(()) => shadows[i].acked(val),
                Err(_) => shadows[i].failed(val),
            }
        }

        client.drain_all().unwrap();
        // Each acknowledged FAA landed exactly once; a failed one either
        // executed or provably never did.
        let mut count_buf = [0u8; 8];
        client.read(counter, 0, &mut count_buf).unwrap();
        let count = u64::from_le_bytes(count_buf);
        assert!(
            count >= acked_adds && count <= tried_adds,
            "seed {seed}: counter {count} outside [{acked_adds}, {tried_adds}]"
        );
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr)
                .unwrap_or_else(|e| panic!("seed {seed}: final read of object {i} failed: {e:?}"));
            shadow.check_final(got, seed, i);
        }
        let stats = client.stats();
        assert!(
            stats.reconnects > 0,
            "seed {seed}: client never reconnected across the crash"
        );
    }
}

/// Windowed batches (`window_depth > 1`) under the same fault soup as the
/// scalar micro test: per-op batch results feed the shadow model, and once
/// the plane disarms every object must settle. A slot that completed is
/// never replayed (acknowledged writes stay exactly-once) and interleaved
/// FAAs land at most once per acknowledgement.
#[test]
fn chaos_windowed_batches_settle() {
    arm_flight_recorder();
    for seed in seeds() {
        let (cluster, plane) = chaos_cluster(
            "drop:p=0.02 + err:p=0.01,status=transport + rnr:p=0.005 + delay:ns=20000,p=0.05",
            seed,
        );
        let config = ClientConfig {
            window_depth: 8,
            ..chaos_client_config()
        };
        let mut client = cluster.client(config).unwrap();
        let ptrs: Vec<_> = (0..8).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut shadows: Vec<Shadow> = (0..8).map(|_| Shadow::new()).collect();
        let counter = client.alloc(0, 8).unwrap();
        let mut acked_adds = 0u64;
        let mut tried_adds = 0u64;

        let mut rng = seed ^ 0x11AB5EED;
        for round in 0..60u32 {
            if round % 10 == 9 {
                // Atomics bypass batching; the exactly-once discipline must
                // survive living between windowed submissions.
                tried_adds += 1;
                if client.faa_u64(counter, 0, 1).is_ok() {
                    acked_adds += 1;
                }
                continue;
            }
            // A batch of 2..=6 ops over distinct objects, mixed read/write.
            let size = 2 + (splitmix64(&mut rng) % 5) as usize;
            let mut objs: Vec<usize> = Vec::new();
            for _ in 0..size {
                let i = (splitmix64(&mut rng) % 8) as usize;
                if !objs.contains(&i) {
                    objs.push(i);
                }
            }
            let writes: Vec<(usize, u8)> = objs
                .iter()
                .map(|&i| (i, (splitmix64(&mut rng) % 251) as u8))
                .collect();
            if splitmix64(&mut rng).is_multiple_of(3) {
                // Read batch: failures are acceptable mid-chaos, wrong or
                // torn data is not.
                let mut bufs = vec![[0u8; 64]; objs.len()];
                let items: Vec<_> = objs
                    .iter()
                    .zip(bufs.iter_mut())
                    .map(|(&i, b)| (ptrs[i], 0u64, &mut b[..]))
                    .collect();
                let result = client.read_batch(items).unwrap();
                for ((&i, buf), r) in objs.iter().zip(&bufs).zip(result.results()) {
                    if r.is_ok() {
                        assert!(
                            buf.iter().all(|&b| b == buf[0]),
                            "seed {seed} round {round}: torn batched read: {buf:?}"
                        );
                        assert!(
                            shadows[i].maybe.contains(&buf[0]),
                            "seed {seed} round {round}: object {i} read {}, \
                             never written ({:?})",
                            buf[0],
                            shadows[i].maybe
                        );
                    }
                }
            } else {
                let payloads: Vec<[u8; 64]> = writes.iter().map(|&(_, v)| [v; 64]).collect();
                let items: Vec<_> = writes
                    .iter()
                    .zip(&payloads)
                    .map(|(&(i, _), d)| (ptrs[i], 0u64, &d[..]))
                    .collect();
                let result = client.write_batch(items).unwrap();
                for (&(i, val), r) in writes.iter().zip(result.results()) {
                    match r {
                        Ok(()) => shadows[i].acked(val),
                        Err(e) => {
                            assert!(
                                !matches!(
                                    e,
                                    GengarError::ProtocolViolation(_)
                                        | GengarError::InvalidAddress(_)
                                ),
                                "seed {seed} round {round}: fault surfaced as a \
                                 protocol bug: {e:?}"
                            );
                            shadows[i].failed(val);
                        }
                    }
                }
            }
        }

        plane.disarm();
        client.drain_all().unwrap();
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr)
                .unwrap_or_else(|e| panic!("seed {seed}: final read of object {i} failed: {e:?}"));
            shadow.check_final(got, seed, i);
        }
        let mut count_buf = [0u8; 8];
        client.read(counter, 0, &mut count_buf).unwrap();
        let count = u64::from_le_bytes(count_buf);
        assert!(
            count >= acked_adds && count <= tried_adds,
            "seed {seed}: counter {count} outside [{acked_adds}, {tried_adds}]"
        );
        assert!(plane.ops_seen() > 0, "seed {seed}: plane saw no traffic");
    }
}

/// An aggressor tenant hammering through a flapping link, with the QoS
/// plane enabled, must not disturb a victim tenant on the same server:
/// every victim operation succeeds first time and on time, the victim's
/// shadow model settles exactly, and the aggressor's staged writes — the
/// ones that were acknowledged between flaps — are never lost either.
#[test]
fn chaos_qos_aggressor_on_flapping_link_spares_victim() {
    use gengar_core::qos::TenantSpec;
    use gengar_rdma::PartitionFlap;

    arm_flight_recorder();
    for seed in seeds() {
        let plane = Arc::new(FaultPlane::new(seed));
        let mut fabric = FabricConfig::instant();
        fabric.faults = Some(Arc::clone(&plane));
        let mut server_config = chaos_server_config();
        server_config.qos.enabled = true;
        server_config.qos.burst_ratio = 0.5;
        server_config.qos.tenants = vec![TenantSpec {
            name: "aggressor".to_owned(),
            ops_per_sec: 200,
            bytes_per_sec: 0,
            staged_bytes_cap: 4096,
            weight: 1,
        }];
        let cluster = Cluster::launch(1, server_config, fabric).unwrap();

        let mut victim = cluster
            .client(ClientConfig {
                tenant: "victim".to_owned(),
                ..chaos_client_config()
            })
            .unwrap();
        let mut aggressor = cluster
            .client(ClientConfig {
                tenant: "aggressor".to_owned(),
                op_deadline: std::time::Duration::from_millis(300),
                max_retries: 8,
                ..chaos_client_config()
            })
            .unwrap();
        let victim_ptrs: Vec<_> = (0..8).map(|_| victim.alloc(0, 64).unwrap()).collect();
        let aggr_ptrs: Vec<_> = (0..4).map(|_| aggressor.alloc(0, 64).unwrap()).collect();

        // Flap only the aggressor's link; the victim's stays clean.
        let server_node = cluster.server(0).unwrap().node().id();
        plane.add_flap(PartitionFlap::on_link(
            aggressor.node().id(),
            server_node,
            120,
            15,
        ));

        let aggr_thread = std::thread::spawn(move || {
            let mut shadows: Vec<Shadow> = (0..4).map(|_| Shadow::new()).collect();
            let mut rng = seed ^ 0xA99E550;
            for _ in 0..150u32 {
                let i = (splitmix64(&mut rng) % 4) as usize;
                let val = (splitmix64(&mut rng) % 251) as u8;
                match aggressor.write(aggr_ptrs[i], 0, &[val; 64]) {
                    Ok(()) => shadows[i].acked(val),
                    Err(_) => shadows[i].failed(val),
                }
            }
            (aggressor, aggr_ptrs, shadows)
        });

        // The victim settles every op on time while the aggressor churns:
        // its link never faults and its budget is unlimited, so a failure
        // or a stall here is the aggressor's recovery (or throttling)
        // leaking across tenants.
        let mut shadows: Vec<Shadow> = (0..8).map(|_| Shadow::new()).collect();
        let mut rng = seed ^ 0x71C71;
        let t0 = std::time::Instant::now();
        for op in 0..200u32 {
            let i = (splitmix64(&mut rng) % 8) as usize;
            if splitmix64(&mut rng).is_multiple_of(4) {
                let got = read_fill_byte(&mut victim, victim_ptrs[i]).unwrap_or_else(|e| {
                    panic!("seed {seed} op {op}: victim read failed behind the aggressor: {e:?}")
                });
                assert!(
                    shadows[i].maybe.contains(&got),
                    "seed {seed} op {op}: victim object {i} read {got} ({:?})",
                    shadows[i].maybe
                );
            } else {
                let val = (splitmix64(&mut rng) % 251) as u8;
                victim
                    .write(victim_ptrs[i], 0, &[val; 64])
                    .unwrap_or_else(|e| {
                        panic!(
                            "seed {seed} op {op}: victim write failed behind the aggressor: {e:?}"
                        )
                    });
                shadows[i].acked(val);
            }
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "seed {seed}: victim run did not settle on time"
        );

        let (mut aggressor, aggr_ptrs, aggr_shadows) = aggr_thread.join().unwrap();
        plane.disarm();
        victim.drain_all().unwrap();
        aggressor.drain_all().unwrap();
        for (i, (ptr, shadow)) in victim_ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut victim, *ptr).unwrap_or_else(|e| {
                panic!("seed {seed}: final victim read of object {i} failed: {e:?}")
            });
            shadow.check_final(got, seed, i);
        }
        // The aggressor's acknowledged staged writes survived the flaps.
        for (i, (ptr, shadow)) in aggr_ptrs.iter().zip(&aggr_shadows).enumerate() {
            let got = read_fill_byte(&mut aggressor, *ptr).unwrap_or_else(|e| {
                panic!("seed {seed}: final aggressor read of object {i} failed: {e:?}")
            });
            shadow.check_final(got, seed, i);
        }
        assert!(plane.ops_seen() > 0, "seed {seed}: plane saw no traffic");
    }
}

/// Chaos server config with primary–backup replication switched on and a
/// rebalance scanner fast enough for test-scale timelines.
fn replicated_server_config() -> ServerConfig {
    let mut config = chaos_server_config();
    config.replication.enabled = true;
    config.replication.rebalance_interval = std::time::Duration::from_millis(20);
    config
}

/// Machine death: stop the server's threads and detach its node from the
/// fabric, so peers observe transport errors and re-dials see
/// `NodeNotFound`. Nothing on the dead machine survives.
fn kill_server(cluster: &Cluster, id: u8) {
    let server = cluster.server(id).unwrap();
    server.shutdown();
    cluster.fabric().remove_node(server.node().id());
}

/// Kill the primary mid write-storm: every write acknowledged before the
/// kill (staged to both the primary ring and the mirror) must read back
/// after the client fails over to the replica — zero settled-write loss.
/// The kill is detected by the client itself: transport errors escalate
/// through the reconnect budget into a failover, the replica promotes
/// (replaying un-drained mirror records into its shadow), and the write
/// stream continues against the promoted ward.
#[test]
fn chaos_kill_primary_under_load_loses_no_settled_write() {
    arm_flight_recorder();
    for seed in seeds() {
        let cluster =
            Cluster::launch(2, replicated_server_config(), FabricConfig::instant()).unwrap();
        let config = ClientConfig {
            // A short budget keeps the reconnect→failover escalation well
            // inside one op deadline; the test's clock is virtual-free.
            max_retries: 6,
            op_deadline: std::time::Duration::from_secs(1),
            ..chaos_client_config()
        };
        let mut client = cluster.client(config).unwrap();
        let ptrs: Vec<_> = (0..8).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut shadows: Vec<Shadow> = (0..8).map(|_| Shadow::new()).collect();
        let mut post_kill_acks = 0u32;

        let mut rng = seed ^ 0x5EC0_17D0;
        for op in 0..200u32 {
            if op == 100 {
                kill_server(&cluster, 0);
            }
            let i = (splitmix64(&mut rng) % 8) as usize;
            let val = (splitmix64(&mut rng) % 251) as u8;
            match client.write(ptrs[i], 0, &[val; 64]) {
                Ok(()) => {
                    shadows[i].acked(val);
                    if op >= 100 {
                        post_kill_acks += 1;
                    }
                }
                Err(e) => {
                    assert!(
                        !matches!(
                            e,
                            GengarError::ProtocolViolation(_) | GengarError::InvalidAddress(_)
                        ),
                        "seed {seed} op {op}: machine loss surfaced as a protocol bug: {e:?}"
                    );
                    shadows[i].failed(val);
                }
            }
        }

        client.drain_all().unwrap();
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr).unwrap_or_else(|e| {
                panic!("seed {seed}: final read of object {i} after failover failed: {e:?}")
            });
            shadow.check_final(got, seed, i);
        }
        let stats = client.stats();
        assert!(
            stats.failovers >= 1,
            "seed {seed}: primary death never escalated to a failover"
        );
        assert!(
            cluster.server(1).unwrap().has_promoted(0),
            "seed {seed}: replica never promoted the dead primary's ward"
        );
        assert!(
            post_kill_acks > 0,
            "seed {seed}: no write ever succeeded against the promoted replica"
        );
    }
}

/// Kill the *backup* mid-run: the primary write path must not so much as
/// hiccup (every write keeps succeeding first time), the rebalance plane
/// must re-point the primary at the next live survivor — seeding its
/// shadow with the primary's settled image — and the client must re-mirror
/// onto it in the background. The new replica is then proven real: the
/// primary is killed too, and every settled write (including one staged
/// *before* the backup died, which only the seeded image can supply) reads
/// back through the second-generation replica.
#[test]
fn chaos_kill_backup_primary_undisturbed_and_rebalanced() {
    arm_flight_recorder();
    for seed in seeds() {
        // Ring on 3 servers: 0 → 1 → 2 → 0. Killing server 1 orphans
        // server 0's mirror; server 2 is the only live replacement.
        let cluster =
            Cluster::launch(3, replicated_server_config(), FabricConfig::instant()).unwrap();
        let config = ClientConfig {
            max_retries: 6,
            op_deadline: std::time::Duration::from_secs(1),
            ..chaos_client_config()
        };
        let mut client = cluster.client(config).unwrap();
        let ptrs: Vec<_> = (0..8).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut shadows: Vec<Shadow> = (0..8).map(|_| Shadow::new()).collect();

        // Warmup: one settled write per object, fully drained into the
        // primary's NVM. Object 7 is never written again — after the
        // backup dies, its bytes can only reach the new replica through
        // the rebalance plane's image seeding.
        let mut rng = seed ^ 0xBAC0_FF5E;
        for (i, ptr) in ptrs.iter().enumerate() {
            let val = 1 + (splitmix64(&mut rng) % 250) as u8;
            client.write(*ptr, 0, &[val; 64]).unwrap();
            shadows[i].acked(val);
        }
        client.drain_all().unwrap();

        kill_server(&cluster, 1);

        // The primary path must be undisturbed by its replica's death:
        // the mirror lane is shed on the first failed WR and writes keep
        // acknowledging on the primary alone, first time, every time.
        for op in 0..60u32 {
            let i = (splitmix64(&mut rng) % 7) as usize;
            let val = 1 + (splitmix64(&mut rng) % 250) as u8;
            client.write(ptrs[i], 0, &[val; 64]).unwrap_or_else(|e| {
                panic!("seed {seed} op {op}: backup death disturbed the primary path: {e:?}")
            });
            shadows[i].acked(val);
        }

        // Rebalance re-points server 0 at server 2 (the ring already had
        // one mirror there for server 1's ward, hence >= 2), and the
        // client's background re-mirror dials the new lane. Writes keep
        // flowing so the re-mirror probe actually runs.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let val = 1 + (splitmix64(&mut rng) % 250) as u8;
            client.write(ptrs[0], 0, &[val; 64]).unwrap();
            shadows[0].acked(val);
            if cluster.server(0).unwrap().backup_id() == 2
                && cluster.server(2).unwrap().mirror_count() >= 2
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "seed {seed}: new backup never re-established (backup_id={}, mirrors={})",
                cluster.server(0).unwrap().backup_id(),
                cluster.server(2).unwrap().mirror_count()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let stats = client.stats();
        assert_eq!(
            stats.failovers, 0,
            "seed {seed}: a backup death must never trigger a failover"
        );

        // Overwrite objects 0..=6 on the re-established mirror, then kill
        // the primary: the promotion on server 2 must serve the fresh
        // values from its mirror ring and object 7's warmup value from
        // the seeded shadow image.
        for (i, ptr) in ptrs.iter().enumerate().take(7) {
            let val = 1 + (splitmix64(&mut rng) % 250) as u8;
            client.write(*ptr, 0, &[val; 64]).unwrap();
            shadows[i].acked(val);
        }
        kill_server(&cluster, 0);
        for _ in 0..40u32 {
            let i = (splitmix64(&mut rng) % 7) as usize;
            let val = 1 + (splitmix64(&mut rng) % 250) as u8;
            match client.write(ptrs[i], 0, &[val; 64]) {
                Ok(()) => shadows[i].acked(val),
                Err(_) => shadows[i].failed(val),
            }
        }

        client.drain_all().unwrap();
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: final read of object {i} via the second-generation \
                     replica failed: {e:?}"
                )
            });
            shadow.check_final(got, seed, i);
        }
        assert!(
            client.stats().failovers >= 1,
            "seed {seed}: primary death never escalated to a failover"
        );
        assert!(
            cluster.server(2).unwrap().has_promoted(0),
            "seed {seed}: the rebalanced replica never promoted the dead primary's ward"
        );
    }
}

/// Cached reads across a failover: a client that has learned remap
/// entries (hot objects served from the primary's DRAM cache) must ride
/// the primary's death with zero wrong reads. The first post-kill read
/// discovers the dead machine through the cached path, escalates into the
/// failover, and from then on every object — the cached one included —
/// serves its settled bytes from the promoted shadow. The failover must
/// also drop every remap entry pointing at the dead primary's DRAM: the
/// replica holds no cache slots for the ward, so a surviving entry would
/// be a read of unmapped memory on the next promotion of that address.
#[test]
fn chaos_kill_primary_cached_reads_stay_coherent() {
    arm_flight_recorder();
    for seed in seeds() {
        let cluster =
            Cluster::launch(2, replicated_server_config(), FabricConfig::instant()).unwrap();
        let config = ClientConfig {
            // Reports ON (unlike the rest of the suite): the cache plane
            // is the subject, and remaps only arrive on report responses.
            report_every: 8,
            max_retries: 6,
            op_deadline: std::time::Duration::from_secs(1),
            ..Default::default()
        };
        let mut client = cluster.client(config).unwrap();
        let ptrs: Vec<_> = (0..4).map(|_| client.alloc(0, 64).unwrap()).collect();
        let mut rng = seed ^ 0x0CAC_4ED0;
        let vals: Vec<u8> = ptrs
            .iter()
            .map(|_| 1 + (splitmix64(&mut rng) % 250) as u8)
            .collect();
        for (ptr, &val) in ptrs.iter().zip(&vals) {
            client.write(*ptr, 0, &[val; 64]).unwrap();
        }
        client.drain_all().unwrap();

        // Heat object 0 until the client holds its remap entry and reads
        // actually hit the primary's DRAM cache.
        let mut buf = [0u8; 64];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while client.stats().cache_hits == 0 || client.remap_entries() == 0 {
            client.read(ptrs[0], 0, &mut buf).unwrap();
            assert!(
                std::time::Instant::now() < deadline,
                "seed {seed}: object 0 never promoted into the cache: {:?}",
                client.stats()
            );
        }
        assert!(
            buf.iter().all(|&b| b == vals[0]),
            "seed {seed}: cached read served wrong bytes before the kill: {buf:?}"
        );

        kill_server(&cluster, 0);

        // Every read after the kill returns the settled bytes. The first
        // one walks the stale remap into the dead machine and must come
        // back through the failover, not as an error or stale data.
        for (i, (ptr, &val)) in ptrs.iter().zip(&vals).enumerate() {
            let got = read_fill_byte(&mut client, *ptr).unwrap_or_else(|e| {
                panic!("seed {seed}: read of object {i} after the kill failed: {e:?}")
            });
            assert_eq!(
                got, val,
                "seed {seed}: object {i} lost its settled bytes across the cached failover"
            );
        }
        assert!(
            client.stats().failovers >= 1,
            "seed {seed}: the cached read path never escalated to a failover"
        );
        assert!(
            cluster.server(1).unwrap().has_promoted(0),
            "seed {seed}: replica never promoted the dead primary's ward"
        );
        assert_eq!(
            client.remap_entries(),
            0,
            "seed {seed}: failover left remap entries pointing at the dead primary's DRAM"
        );

        // The promoted ward keeps serving coherent bytes under continued
        // hammering — and the report plane must not re-engage against the
        // replica (its cache would alias the ward's addresses onto its own
        // NVM), so the remap table stays empty for the redirected server.
        for round in 0..100u32 {
            let got = read_fill_byte(&mut client, ptrs[0]).unwrap_or_else(|e| {
                panic!("seed {seed} round {round}: post-failover read failed: {e:?}")
            });
            assert_eq!(
                got, vals[0],
                "seed {seed} round {round}: post-failover read went stale"
            );
        }
        assert_eq!(
            client.remap_entries(),
            0,
            "seed {seed}: the promoted ward handed out remaps for addresses it cannot cache"
        );
    }
}

/// A staging ring that eats every record (drops on the WRITE_WITH_IMM
/// path) degrades the connection: writes fall back to the direct NVM path,
/// still land, and the degradation is visible in the stats.
#[test]
fn degraded_mode_survives_a_dead_staging_ring() {
    arm_flight_recorder();
    let (cluster, plane) = chaos_cluster("drop:imm=1", 9);
    let config = ClientConfig {
        report_every: u32::MAX,
        // Keep the threshold's worth of staged-write timeouts quick.
        op_deadline: std::time::Duration::from_millis(500),
        staging_fault_threshold: 2,
        ..Default::default()
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 64).unwrap();

    // Every staged attempt is dropped; after the threshold the connection
    // degrades and the write completes via the direct path.
    client.write(ptr, 0, &[0x5Au8; 64]).unwrap();
    assert!(client.is_degraded(0).unwrap());
    let stats = client.stats();
    assert!(stats.degraded_ops > 0 || stats.direct_writes > 0);
    assert!(stats.retries > 0, "drops should surface as retries");

    // Degraded mode persists (and keeps working) until a reconnect heals
    // the ring — reads see the directly-written data immediately.
    client.write(ptr, 0, &[0x5Bu8; 64]).unwrap();
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x5B));
    plane.disarm();
}

/// Un-drained staged writes at crash time are replayed by recovery — and
/// the count is reported, never silently dropped. The server is stopped
/// *before* the writes so none of them can drain: recovery must replay
/// exactly that many records.
#[test]
fn crash_mid_drain_replays_every_undrained_record() {
    arm_flight_recorder();
    let cluster = Cluster::launch(1, chaos_server_config(), FabricConfig::instant()).unwrap();
    let mut client = cluster.client(chaos_client_config()).unwrap();
    let ptrs: Vec<_> = (0..8).map(|_| client.alloc(0, 64).unwrap()).collect();

    // Stop the drain threads, then stage one write per object. Staging is
    // one-sided so the writes are acknowledged (durably parked in the ADR
    // ring) even though nothing serves them.
    let server = cluster.server(0).unwrap();
    server.shutdown();
    for (i, ptr) in ptrs.iter().enumerate() {
        client.write(*ptr, 0, &[i as u8 + 1; 64]).unwrap();
    }

    server.crash().unwrap();
    let replayed = server.recover().unwrap();
    assert_eq!(
        replayed,
        ptrs.len() as u64,
        "every staged-but-undrained record must be replayed"
    );
    server.restart();

    let mut reader = cluster.client(chaos_client_config()).unwrap();
    for (i, ptr) in ptrs.iter().enumerate() {
        let mut buf = [0u8; 64];
        reader.read(*ptr, 0, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == i as u8 + 1),
            "object {i} lost its acked write after replay: {buf:?}"
        );
    }
}

/// Failed reconnect handshakes hand their client ids back: a client
/// re-dialling through a partition for longer than `max_clients` attempts
/// must still get a working connection once the link heals.
#[test]
fn reconnect_storm_does_not_exhaust_client_ids() {
    arm_flight_recorder();
    let mut server_config = ServerConfig::small();
    server_config.max_clients = 4;
    let cluster = Cluster::launch(1, server_config, FabricConfig::instant()).unwrap();
    let config = ClientConfig {
        report_every: u32::MAX,
        op_deadline: std::time::Duration::from_millis(200),
        max_retries: 8,
        ..Default::default()
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[1u8; 64]).unwrap();

    let link = (client.node().id(), cluster.server(0).unwrap().node().id());
    cluster.fabric().partition(link.0, link.1, true);
    // Each failed operation burns several reconnect attempts; far more in
    // total than max_clients. Without id recycling the server would be
    // permanently full before the partition heals.
    for _ in 0..6 {
        assert!(client.write(ptr, 0, &[2u8; 64]).is_err());
    }
    cluster.fabric().partition(link.0, link.1, false);

    client.write(ptr, 0, &[3u8; 64]).unwrap();
    assert!(client.stats().reconnects > 0);
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 3));
    // And the pool still has room for a genuinely new client.
    let mut fresh = cluster.client(chaos_client_config()).unwrap();
    fresh.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 3));
}

/// The flight recorder fires by itself when the fault plane injects a
/// fault: no assertion has to fail first. The armed latch is process-wide
/// and one-shot (a concurrently running chaos test can legitimately
/// consume it with its own injected fault), so the loop re-arms and
/// asserts on the monotonic dump counter rather than a single latch win.
#[test]
fn flight_recorder_dumps_on_injected_fault() {
    arm_flight_recorder();
    let recorder = FlightRecorder::global();
    let dumps_before = recorder.dumps();
    // Drop every staged record: each write injects at least one fault.
    let (cluster, plane) = chaos_cluster("drop:imm=1", 5);
    let config = ClientConfig {
        op_deadline: std::time::Duration::from_millis(200),
        staging_fault_threshold: 2,
        ..chaos_client_config()
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    for round in 0..20u8 {
        recorder.arm();
        let _ = client.write(ptr, 0, &[round; 64]);
        if recorder.dumps() > dumps_before {
            break;
        }
    }
    plane.disarm();
    assert!(
        recorder.dumps() > dumps_before,
        "injected drops never auto-dumped the flight recorder"
    );
    let dump = recorder.last_dump().expect("dump path recorded");
    let text = std::fs::read_to_string(&dump).expect("dump file readable");
    assert!(
        text.contains("traceEvents"),
        "flight dump is not Chrome trace JSON"
    );
}

/// One faulty server in a four-server pool: drops, transport errors, RNR
/// exhaustion and a partition flap are pinned to the client ↔ server-0
/// link while every batch fans out across all four servers concurrently.
/// The reactor must keep group 0's recovery from leaking into the healthy
/// groups — every op on servers 1–3 settles first time, even while group
/// 0 is mid-retry or mid-reconnect — and once the plane disarms the
/// shadow model must hold on every server.
#[test]
fn chaos_one_faulty_server_stalls_only_its_group() {
    use gengar_rdma::{FaultRule, PartitionFlap, WcStatus};

    arm_flight_recorder();
    for seed in seeds() {
        let plane = Arc::new(FaultPlane::new(seed));
        let mut fabric = FabricConfig::instant();
        fabric.faults = Some(Arc::clone(&plane));
        let cluster = Cluster::launch(4, chaos_server_config(), fabric).unwrap();
        let mut client = cluster.client(chaos_client_config()).unwrap();
        // Four objects per server; object i lives on server i % 4.
        let ptrs: Vec<_> = (0..16)
            .map(|i| client.alloc((i % 4) as u8, 64).unwrap())
            .collect();
        let mut shadows: Vec<Shadow> = (0..16).map(|_| Shadow::new()).collect();

        // Arm the faults only now (dial and allocs run clean) and only on
        // the one link.
        let me = client.node().id();
        let faulty = cluster.server(0).unwrap().node().id();
        plane.add_rule(FaultRule::drop_op().probability(0.15).link(me, faulty));
        plane.add_rule(
            FaultRule::error(WcStatus::TransportError)
                .probability(0.05)
                .link(me, faulty),
        );
        plane.add_rule(FaultRule::rnr().probability(0.02).link(me, faulty));
        plane.add_flap(PartitionFlap::on_link(me, faulty, 150, 20));

        let mut rng = seed ^ 0x0FA017;
        for round in 0..50u32 {
            // Every batch covers one object per server, so all four
            // groups are in flight together every round.
            let objs: Vec<usize> = (0..4)
                .map(|s| s + 4 * (splitmix64(&mut rng) % 4) as usize)
                .collect();
            if splitmix64(&mut rng).is_multiple_of(3) {
                let mut bufs = vec![[0u8; 64]; objs.len()];
                let items: Vec<_> = objs
                    .iter()
                    .zip(bufs.iter_mut())
                    .map(|(&i, b)| (ptrs[i], 0u64, &mut b[..]))
                    .collect();
                let result = client.read_batch(items).unwrap();
                for ((&i, buf), r) in objs.iter().zip(&bufs).zip(result.results()) {
                    if i % 4 != 0 {
                        assert!(
                            r.is_ok(),
                            "seed {seed} round {round}: healthy-server read of \
                             object {i} stalled behind the faulty group: {r:?}"
                        );
                    }
                    if r.is_ok() {
                        assert!(
                            shadows[i].maybe.contains(&buf[0]),
                            "seed {seed} round {round}: object {i} read {}, \
                             never written ({:?})",
                            buf[0],
                            shadows[i].maybe
                        );
                    }
                }
            } else {
                let vals: Vec<u8> = objs
                    .iter()
                    .map(|_| (splitmix64(&mut rng) % 251) as u8)
                    .collect();
                let payloads: Vec<[u8; 64]> = vals.iter().map(|&v| [v; 64]).collect();
                let items: Vec<_> = objs
                    .iter()
                    .zip(&payloads)
                    .map(|(&i, d)| (ptrs[i], 0u64, &d[..]))
                    .collect();
                let result = client.write_batch(items).unwrap();
                for ((&i, &val), r) in objs.iter().zip(&vals).zip(result.results()) {
                    match r {
                        Ok(()) => shadows[i].acked(val),
                        Err(e) => {
                            assert!(
                                i % 4 == 0,
                                "seed {seed} round {round}: healthy-server write of \
                                 object {i} failed behind the faulty group: {e:?}"
                            );
                            shadows[i].failed(val);
                        }
                    }
                }
            }
        }

        plane.disarm();
        client.drain_all().unwrap();
        for (i, (ptr, shadow)) in ptrs.iter().zip(&shadows).enumerate() {
            let got = read_fill_byte(&mut client, *ptr)
                .unwrap_or_else(|e| panic!("seed {seed}: final read of object {i} failed: {e:?}"));
            shadow.check_final(got, seed, i);
        }
        assert!(plane.ops_seen() > 0, "seed {seed}: plane saw no traffic");
    }
}
