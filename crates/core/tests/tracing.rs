//! End-to-end causal-tracing tests: trace ids must survive retries and
//! reconnects, the async NVM drain must link back to the client op that
//! staged the record, the flight recorder must dump on injected faults,
//! and the scalar and batch issue paths must report identical telemetry.
//!
//! The tracer and the metrics registry are process-global, so every test
//! here serialises on [`TRACER_LOCK`] and resets tracer state up front
//! (other test binaries are separate processes and cannot interfere).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, ServerConfig};
use gengar_rdma::{FabricConfig, FaultPlane};
use gengar_telemetry::{
    FlightRecorder, Registry, SpanRecord, TelemetryConfig, TraceId, TraceMode, Tracer,
};

static TRACER_LOCK: Mutex<()> = Mutex::new(());

/// Takes the global-tracer lock (riding through poisoning: a failed test
/// must not cascade) and puts the tracer into `mode` with a clean buffer.
fn tracer_guard(mode: TraceMode) -> MutexGuard<'static, ()> {
    let guard = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tracer = Tracer::global();
    tracer.set_mode(mode);
    tracer.clear();
    guard
}

/// Hotness reports off so the only traffic is what the test issues.
fn quiet_client_config() -> ClientConfig {
    ClientConfig {
        report_every: u32::MAX,
        ..Default::default()
    }
}

/// Spans grouped by trace id (untraced spans excluded).
fn by_trace(spans: &[SpanRecord]) -> HashMap<u64, Vec<&SpanRecord>> {
    let mut map: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in spans.iter().filter(|s| s.trace != 0) {
        map.entry(s.trace).or_default().push(s);
    }
    map
}

/// Every parent link in `spans` must resolve inside the same trace (or be
/// 0 for a root), and walking parents must terminate — no cycles.
fn assert_links_closed_and_acyclic(spans: &[SpanRecord]) {
    let live: HashSet<(u64, u64)> = spans.iter().map(|s| (s.trace, s.span)).collect();
    let parent_of: HashMap<(u64, u64), u64> = spans
        .iter()
        .map(|s| ((s.trace, s.span), s.parent))
        .collect();
    for s in spans {
        assert!(
            s.parent == 0 || live.contains(&(s.trace, s.parent)),
            "span {} ({}) has dangling parent {} in trace {}",
            s.span,
            s.name,
            s.parent,
            s.trace
        );
        let mut cur = s.parent;
        let mut hops = 0;
        while cur != 0 {
            cur = *parent_of.get(&(s.trace, cur)).unwrap_or(&0);
            hops += 1;
            assert!(hops <= spans.len(), "parent cycle through span {}", s.span);
        }
    }
}

/// Retried and reconnected operations keep their trace id: every attempt
/// of one batch lands under the one root span, the `BatchResult` exposes
/// that id, and the first injected fault auto-dumps the flight recorder.
#[test]
fn trace_id_survives_retry_and_reconnect() {
    let _guard = tracer_guard(TraceMode::Full);
    let recorder = FlightRecorder::global();
    recorder.set_out_dir(std::env::temp_dir());
    let dumps_before = recorder.dumps();
    recorder.arm();

    // Drops force timeout->retry; transport error completions force the
    // reconnect path. Probabilities are low enough that ops succeed within
    // their budget, high enough that both paths certainly fire.
    let plane = Arc::new(
        FaultPlane::from_spec(
            "drop:p=0.08 + err:p=0.03,status=transport",
            11,
            TelemetryConfig::disabled(),
        )
        .unwrap(),
    );
    let mut fabric = FabricConfig::instant();
    fabric.faults = Some(Arc::clone(&plane));
    let cluster = Cluster::launch(1, ServerConfig::small(), fabric).unwrap();
    let config = ClientConfig {
        op_deadline: Duration::from_millis(500),
        max_retries: 16,
        ..quiet_client_config()
    };
    let mut client = cluster.client(config).unwrap();
    let ptrs: Vec<_> = (0..4).map(|_| client.alloc(0, 64).unwrap()).collect();

    let mut ok_traces: Vec<u64> = Vec::new();
    for round in 0..120u32 {
        let a = ptrs[(round % 4) as usize];
        let b = ptrs[((round + 1) % 4) as usize];
        let val = [round as u8; 64];
        let result = client
            .batch()
            .write(a, 0, &val)
            .write(b, 0, &val)
            .submit()
            .unwrap();
        if result.all_ok() {
            let trace = result.trace_id();
            assert_ne!(trace, TraceId::NONE, "tracing is on: ids must be minted");
            ok_traces.push(trace.0);
        }
    }
    plane.disarm();
    let stats = client.stats();
    assert!(stats.retries > 0, "fault soup exercised no retries");
    assert!(stats.reconnects > 0, "fault soup exercised no reconnects");
    assert!(!ok_traces.is_empty(), "no batch survived the fault soup");

    let spans = Tracer::global().snapshot();
    let traces = by_trace(&spans);
    let mut saw_retried_trace = false;
    for trace in &ok_traces {
        let spans = traces
            .get(trace)
            .unwrap_or_else(|| panic!("trace {trace} returned by BatchResult has no spans"));
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.parent == 0 && s.name.starts_with("client."))
            .collect();
        assert_eq!(
            roots.len(),
            1,
            "trace {trace}: one client root expected, got {roots:?}"
        );
        let attempts = spans.iter().filter(|s| s.name == "client.attempt").count();
        assert!(attempts >= 1, "trace {trace}: no attempt span");
        if attempts >= 2 {
            saw_retried_trace = true; // the retry kept the original id
        }
    }
    assert!(
        saw_retried_trace,
        "no successful batch was retried; spans cannot show id survival"
    );

    // The very first injected fault fired the armed flight recorder.
    assert!(recorder.dumps() > dumps_before, "no flight-recorder dump");
    let dump = recorder.last_dump().expect("dump path");
    let text = std::fs::read_to_string(&dump).expect("dump file readable");
    assert!(text.contains("traceEvents"), "dump is not a Chrome trace");
    std::fs::remove_file(&dump).ok();
}

/// One staged write produces a causally complete trace: the client root,
/// its fabric verbs and proxy staging underneath, and an async
/// `server.drain` span in the *same trace* that starts only after the
/// client-visible completion — exactly the latency the proxy hides.
#[test]
fn staged_write_trace_links_client_to_async_drain() {
    let _guard = tracer_guard(TraceMode::Full);
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.client(quiet_client_config()).unwrap();
    let ptrs: Vec<_> = (0..4).map(|_| client.alloc(0, 64).unwrap()).collect();
    for i in 0..200u32 {
        client
            .write(ptrs[(i % 4) as usize], 0, &[i as u8; 64])
            .unwrap();
    }
    client.drain_all().unwrap();
    assert!(
        client.stats().staged_writes > 0,
        "writes must take the proxy path"
    );

    let spans = Tracer::global().snapshot();
    assert_links_closed_and_acyclic(&spans);
    let traces = by_trace(&spans);

    // At least one write trace must show the full causal chain with the
    // drain strictly after the client-visible completion. (Exists- not
    // forall-quantified: the drain thread can race ahead of the ack for
    // records it picks up mid-stage.)
    let mut complete_chains = 0usize;
    for spans in traces.values() {
        let Some(root) = spans
            .iter()
            .find(|s| s.parent == 0 && s.name == "client.write")
        else {
            continue;
        };
        let staged = spans.iter().any(|s| s.name.starts_with("proxy.stage"));
        let posted = spans.iter().any(|s| s.name == "rdma.post");
        let doorbell = spans.iter().any(|s| s.name == "rdma.doorbell");
        let drained_after = spans
            .iter()
            .any(|s| s.name == "server.drain" && s.start_ns >= root.end_ns);
        if staged && posted && doorbell && drained_after {
            complete_chains += 1;
        }
    }
    assert!(
        complete_chains > 0,
        "no staged write produced the full client->fabric->proxy->drain chain"
    );
}

/// Satellite check for the unified issue path: a workload pushed through
/// the scalar API and the identical workload pushed through `OpBatch`
/// must report the *same* per-client counters and the same number of
/// whole-op latency samples — batch slots are not second-class citizens.
#[test]
fn scalar_and_batch_paths_report_identical_telemetry() {
    let _guard = tracer_guard(TraceMode::Off);
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();

    let registry = Registry::global();
    let hist_count = |key: &str| registry.snapshot().histogram(key).map_or(0, |h| h.count);

    // Scalar phase: 24 writes then 24 reads, one op per call.
    let mut scalar = cluster.client(quiet_client_config()).unwrap();
    let ptrs: Vec<_> = (0..4).map(|_| scalar.alloc(0, 64).unwrap()).collect();
    let (w0, r0) = (hist_count("client.write_ns"), hist_count("client.read_ns"));
    for i in 0..24u32 {
        scalar
            .write(ptrs[(i % 4) as usize], 0, &[i as u8; 64])
            .unwrap();
    }
    let mut buf = [0u8; 64];
    for i in 0..24u32 {
        scalar.read(ptrs[(i % 4) as usize], 0, &mut buf).unwrap();
    }
    let (w1, r1) = (hist_count("client.write_ns"), hist_count("client.read_ns"));

    // Batch phase: the same 48 ops in batches of 4 against fresh objects.
    let mut batched = cluster.client(quiet_client_config()).unwrap();
    let bptrs: Vec<_> = (0..4).map(|_| batched.alloc(0, 64).unwrap()).collect();
    for round in 0..6u32 {
        let vals: Vec<[u8; 64]> = (0..4).map(|i| [(round * 4 + i) as u8; 64]).collect();
        let items: Vec<_> = bptrs
            .iter()
            .zip(&vals)
            .map(|(&p, v)| (p, 0u64, &v[..]))
            .collect();
        assert!(batched.write_batch(items).unwrap().all_ok());
    }
    for _ in 0..6u32 {
        let mut bufs = vec![[0u8; 64]; 4];
        let items: Vec<_> = bptrs
            .iter()
            .zip(bufs.iter_mut())
            .map(|(&p, b)| (p, 0u64, &mut b[..]))
            .collect();
        assert!(batched.read_batch(items).unwrap().all_ok());
    }
    let (w2, r2) = (hist_count("client.write_ns"), hist_count("client.read_ns"));

    // Same per-client counter shape on both paths...
    let (s, b) = (scalar.stats(), batched.stats());
    assert_eq!(s.writes, 24);
    assert_eq!(b.writes, 24, "batch slots must count as writes");
    assert_eq!(s.reads, 24);
    assert_eq!(b.reads, 24, "batch slots must count as reads");
    assert_eq!(
        s.staged_writes + s.direct_writes,
        b.staged_writes + b.direct_writes,
        "every write lands via staging or direct on both paths"
    );
    assert_eq!(s.degraded_ops, 0);
    assert_eq!(b.degraded_ops, 0);
    assert_eq!(
        s.cache_hits + s.nvm_reads + s.writeback_hits + s.cache_rejects,
        24,
        "scalar reads must all be source-attributed"
    );
    assert_eq!(
        b.cache_hits + b.nvm_reads + b.writeback_hits + b.cache_rejects,
        24,
        "batched reads must all be source-attributed"
    );
    // ...and the same number of whole-op latency samples per op.
    assert_eq!(w1 - w0, 24, "scalar writes record 24 latency samples");
    assert_eq!(w2 - w1, 24, "batched writes record 24 latency samples");
    assert_eq!(r1 - r0, 24, "scalar reads record 24 latency samples");
    assert_eq!(r2 - r1, 24, "batched reads record 24 latency samples");
}
