//! End-to-end tests of the Gengar pool: cluster bring-up, data-path
//! correctness, hot-data caching, proxy writes, consistency and recovery.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, Consistency, ServerConfig};
use gengar_core::pool::DshmPool;
use gengar_core::{GengarError, GlobalPtr};
use gengar_rdma::FabricConfig;

fn small_cluster(n: usize) -> Cluster {
    Cluster::launch(n, ServerConfig::small(), FabricConfig::instant()).unwrap()
}

#[test]
fn alloc_write_read_roundtrip() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 256).unwrap();
    let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
    client.write(ptr, 0, &data).unwrap();
    let mut out = vec![0u8; 256];
    client.read(ptr, 0, &mut out).unwrap();
    assert_eq!(out, data);
}

#[test]
fn sub_range_reads_and_writes() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 128).unwrap();
    client.write(ptr, 0, &[0xAA; 128]).unwrap();
    client.write(ptr, 32, &[0xBB; 16]).unwrap();
    client.drain_all().unwrap();
    let mut out = vec![0u8; 128];
    client.read(ptr, 0, &mut out).unwrap();
    assert!(out[..32].iter().all(|&b| b == 0xAA));
    assert!(out[32..48].iter().all(|&b| b == 0xBB));
    assert!(out[48..].iter().all(|&b| b == 0xAA));
    let mut mid = vec![0u8; 8];
    client.read(ptr, 36, &mut mid).unwrap();
    assert_eq!(mid, [0xBB; 8]);
}

#[test]
fn bounds_are_enforced() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    let mut buf = [0u8; 16];
    assert!(matches!(
        client.read(ptr, 56, &mut buf),
        Err(GengarError::AccessOutOfBounds { .. })
    ));
    assert!(matches!(
        client.write(ptr, 60, &[0u8; 8]),
        Err(GengarError::AccessOutOfBounds { .. })
    ));
}

#[test]
fn alloc_too_large_rejected() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let err = client.alloc(0, 4 << 20).unwrap_err(); // max_object is 1 MiB in small()
    assert!(matches!(err, GengarError::ObjectTooLarge { .. }));
}

#[test]
fn free_then_double_free_fails() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.free(ptr).unwrap();
    assert!(client.free(ptr).is_err());
}

#[test]
fn unknown_server_rejected() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    assert!(matches!(
        client.alloc(9, 64),
        Err(GengarError::UnknownServer(9))
    ));
}

#[test]
fn multiple_servers_hold_disjoint_objects() {
    let cluster = small_cluster(3);
    let mut client = cluster.default_client().unwrap();
    let mut ptrs = Vec::new();
    for s in 0..3u8 {
        let ptr = client.alloc(s, 64).unwrap();
        assert_eq!(ptr.addr.server(), s);
        client.write(ptr, 0, &[s + 1; 64]).unwrap();
        ptrs.push(ptr);
    }
    client.drain_all().unwrap();
    for (s, ptr) in ptrs.iter().enumerate() {
        let mut buf = [0u8; 64];
        client.read(*ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == s as u8 + 1));
    }
}

#[test]
fn writes_are_visible_to_other_clients_after_drain() {
    let cluster = small_cluster(1);
    let mut writer = cluster.default_client().unwrap();
    let mut reader = cluster.default_client().unwrap();
    let ptr = writer.alloc(0, 64).unwrap();
    writer.write(ptr, 0, b"cross-client visibility!").unwrap();
    writer.drain_all().unwrap();
    let mut buf = vec![0u8; 24];
    reader.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"cross-client visibility!");
}

#[test]
fn proxied_writes_give_read_your_writes_immediately() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    // No drain_all: the local store buffer must serve the read.
    client.write(ptr, 0, b"immediately-visible").unwrap();
    let mut buf = vec![0u8; 19];
    client.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"immediately-visible");
    let stats = client.stats();
    assert!(stats.staged_writes >= 1, "expected the proxy path");
    assert!(stats.writeback_hits >= 1, "expected a store-buffer hit");
}

#[test]
fn many_staged_writes_wrap_the_ring() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    // Far more writes than ring slots (16): exercises flow control.
    for i in 0..200u32 {
        let body = [(i % 251) as u8; 64];
        client.write(ptr, 0, &body).unwrap();
    }
    client.drain_all().unwrap();
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 199u8));
    assert!(client.stats().staged_writes == 200);
}

#[test]
fn hot_objects_get_cached_and_served_from_dram() {
    let cluster = small_cluster(1);
    let config = ClientConfig {
        report_every: 8,
        ..ClientConfig::default()
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 512).unwrap();
    client.write(ptr, 0, &[7u8; 512]).unwrap();
    client.drain_all().unwrap();

    // Hammer the object until the epoch thread promotes it and the client
    // learns the remap through a report response.
    let mut buf = [0u8; 512];
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.stats().cache_hits == 0 {
        client.read(ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        assert!(
            Instant::now() < deadline,
            "object never served from cache; stats: {:?}, cached: {}",
            client.stats(),
            cluster.server(0).unwrap().cached_objects()
        );
    }
    assert!(cluster.server(0).unwrap().cached_objects() >= 1);
    assert!(cluster.server(0).unwrap().cache_stats().promotions >= 1);
}

#[test]
fn cached_copy_stays_fresh_across_proxied_writes() {
    let cluster = small_cluster(1);
    let config = ClientConfig {
        report_every: 8,
        ..ClientConfig::default()
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[1u8; 64]).unwrap();
    client.drain_all().unwrap();

    // Promote it.
    let mut buf = [0u8; 64];
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.stats().cache_hits == 0 && Instant::now() < deadline {
        client.read(ptr, 0, &mut buf).unwrap();
    }
    assert!(client.stats().cache_hits > 0, "promotion never happened");

    // Write through the proxy, drain, drop the local store buffer, then a
    // cached read must see the new bytes (drain updates the cache slot).
    client.write(ptr, 0, &[2u8; 64]).unwrap();
    client.drain_all().unwrap();
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 2), "stale cached read: {buf:?}");
}

#[test]
fn direct_writes_invalidate_the_cache() {
    let cluster = small_cluster(1);
    let config = ClientConfig {
        report_every: 8,
        consistency: Consistency::Seqlock, // forces the direct path
        ..ClientConfig::default()
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[1u8; 64]).unwrap();

    let mut buf = [0u8; 64];
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.stats().cache_hits == 0 && Instant::now() < deadline {
        client.read(ptr, 0, &mut buf).unwrap();
    }
    assert!(client.stats().cache_hits > 0);

    client.write(ptr, 0, &[9u8; 64]).unwrap();
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 9), "stale read after direct write");
}

#[test]
fn cas_and_faa_work_on_pool_objects() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &0u64.to_le_bytes()).unwrap();
    client.drain_all().unwrap();
    assert_eq!(client.cas_u64(ptr, 0, 0, 5).unwrap(), 0);
    assert_eq!(client.faa_u64(ptr, 0, 3).unwrap(), 5);
    let mut buf = [0u8; 8];
    client.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 8);
}

#[test]
fn locks_serialize_read_modify_write_across_clients() {
    let cluster = Arc::new(small_cluster(1));
    let mut setup = cluster
        .client(ClientConfig {
            consistency: Consistency::Seqlock,
            ..Default::default()
        })
        .unwrap();
    let ptr = setup.alloc(0, 64).unwrap();
    setup.write(ptr, 0, &0u64.to_le_bytes()).unwrap();

    const THREADS: usize = 4;
    const INCS: u64 = 50;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let mut c = cluster
                .client(ClientConfig {
                    consistency: Consistency::Seqlock,
                    ..Default::default()
                })
                .unwrap();
            for _ in 0..INCS {
                c.lock(ptr).unwrap();
                let mut buf = [0u8; 8];
                c.read(ptr, 0, &mut buf).unwrap();
                let v = u64::from_le_bytes(buf);
                c.write(ptr, 0, &(v + 1).to_le_bytes()).unwrap();
                c.unlock(ptr).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut buf = [0u8; 8];
    setup.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(
        u64::from_le_bytes(buf),
        THREADS as u64 * INCS,
        "lost updates under locking"
    );
}

#[test]
fn unlock_without_lock_is_rejected() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    assert!(matches!(
        client.unlock(ptr),
        Err(GengarError::ProtocolViolation(_))
    ));
}

#[test]
fn crash_recovery_replays_staged_writes() {
    let mut config = ServerConfig::small();
    config.crash_sim = true;
    // Freeze the drain path so staged records stay undrained: we stop the
    // server's threads right after the writes land.
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    // Connect the post-crash reader now: connections require live RPC
    // threads, which shutdown() stops.
    let mut reader = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[0x11; 64]).unwrap();
    client.drain_all().unwrap(); // first write fully durable in NVM

    // Stage a second write and crash before/after drain nondeterministically
    // — stop threads first so the record cannot drain.
    cluster.server(0).unwrap().shutdown();
    client.write(ptr, 0, &[0x22; 64]).unwrap(); // staged, durable in ADR

    let server = cluster.server(0).unwrap();
    server.crash().unwrap();
    let replayed = server.recover().unwrap();
    assert!(replayed >= 1, "staged record must replay");

    // A fresh read (remap/cache are gone; read goes to NVM) sees the
    // acknowledged write.
    let mut buf = [0u8; 64];
    reader.read(ptr, 0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 0x22),
        "acknowledged staged write lost: {buf:?}"
    );
}

#[test]
fn recovery_is_idempotent() {
    let mut config = ServerConfig::small();
    config.crash_sim = true;
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    let mut reader = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[0x33; 64]).unwrap();
    cluster.server(0).unwrap().shutdown();
    let server = cluster.server(0).unwrap();
    server.crash().unwrap();
    server.recover().unwrap();
    // Second recovery replays nothing (watermark advanced).
    assert_eq!(server.recover().unwrap(), 0);
    let mut buf = [0u8; 64];
    reader.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x33));
}

#[test]
fn ablation_configs_disable_mechanisms() {
    let mut config = ServerConfig::small();
    config.cache = gengar_core::CachePolicy::disabled();
    config.enable_proxy = false;
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    for _ in 0..50 {
        client.write(ptr, 0, &[5u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        client.read(ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 5));
    }
    let stats = client.stats();
    assert_eq!(stats.staged_writes, 0, "proxy disabled");
    assert_eq!(stats.cache_hits, 0, "cache disabled");
    assert_eq!(stats.direct_writes, 50);
    assert_eq!(cluster.server(0).unwrap().cached_objects(), 0);
}

#[test]
fn seqlock_reads_do_not_tear_under_concurrent_writers() {
    let cluster = Arc::new(small_cluster(1));
    let mut setup = cluster
        .client(ClientConfig {
            consistency: Consistency::Seqlock,
            ..Default::default()
        })
        .unwrap();
    const LEN: usize = 1024;
    let ptr = setup.alloc(0, LEN as u64).unwrap();
    setup.write(ptr, 0, &[0u8; LEN]).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = cluster
                .client(ClientConfig {
                    consistency: Consistency::Seqlock,
                    ..Default::default()
                })
                .unwrap();
            let mut v = 0u8;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                v = v.wrapping_add(1);
                c.write(ptr, 0, &[v; LEN]).unwrap();
            }
        })
    };

    let mut reader = cluster
        .client(ClientConfig {
            consistency: Consistency::Seqlock,
            ..Default::default()
        })
        .unwrap();
    let mut buf = vec![0u8; LEN];
    for _ in 0..200 {
        match reader.read(ptr, 0, &mut buf) {
            Ok(()) => {
                let first = buf[0];
                assert!(
                    buf.iter().all(|&b| b == first),
                    "torn read observed: {} vs {}",
                    first,
                    buf.iter().find(|&&b| b != first).unwrap()
                );
            }
            Err(GengarError::ReadContended(_)) => {} // acceptable under load
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn pool_trait_object_compatible_usage() {
    let cluster = small_cluster(1);
    let mut client = cluster.default_client().unwrap();
    fn exercise(pool: &mut dyn DshmPool) -> GlobalPtr {
        let ptr = pool.alloc(0, 32).unwrap();
        pool.write(ptr, 0, b"via trait").unwrap();
        ptr
    }
    let ptr = exercise(&mut client);
    let mut buf = [0u8; 9];
    client.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"via trait");
    assert_eq!(client.servers(), vec![0]);
}
