//! Boundary and resource-limit tests: client capacity, scratch sizing,
//! configuration extremes, allocation exhaustion at the pool level.

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, ServerConfig};
use gengar_core::GengarError;
use gengar_rdma::FabricConfig;

#[test]
fn server_rejects_clients_beyond_capacity() {
    let mut config = ServerConfig::small();
    config.max_clients = 2;
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let _a = cluster.default_client().unwrap();
    let _b = cluster.default_client().unwrap();
    let err = cluster.default_client().unwrap_err();
    assert!(matches!(err, GengarError::ServerUnavailable(0)));
}

#[test]
fn undersized_scratch_rejected_at_connect() {
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let err = cluster
        .client(ClientConfig {
            scratch_capacity: 32 << 10, // far below rpc + staging + op area
            ..Default::default()
        })
        .unwrap_err();
    assert!(matches!(err, GengarError::ProtocolViolation(_)));
}

#[test]
fn pool_exhaustion_is_clean_and_recoverable() {
    let mut config = ServerConfig::small();
    config.nvm_capacity = 1 << 20; // 1 MiB
    config.max_object = 1 << 20;
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    // Fill the pool with 64 KiB objects (64 KiB + header rounds to 128 KiB
    // blocks), then exhaust it.
    let mut held = Vec::new();
    loop {
        match client.alloc(0, 64 << 10) {
            Ok(ptr) => held.push(ptr),
            Err(GengarError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected alloc failure: {e}"),
        }
        assert!(held.len() < 64, "pool never filled");
    }
    assert!(!held.is_empty());
    // Freeing makes room again.
    client.free(held.pop().unwrap()).unwrap();
    client.alloc(0, 64 << 10).unwrap();
}

#[test]
fn zero_sized_alloc_rejected() {
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    assert!(matches!(
        client.alloc(0, 0),
        Err(GengarError::ObjectTooLarge { .. })
    ));
}

#[test]
fn single_proxy_thread_config_works() {
    let mut config = ServerConfig::small();
    config.proxy_threads = 1;
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    for i in 0..40u8 {
        client.write(ptr, 0, &[i; 64]).unwrap();
    }
    client.drain_all().unwrap();
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 39));
}

#[test]
fn many_proxy_threads_preserve_per_ring_order() {
    let mut config = ServerConfig::small();
    config.proxy_threads = 4;
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    // Several clients writing interleaved to their own objects: each
    // ring's records must apply in order regardless of drain-thread count.
    let cluster = std::sync::Arc::new(cluster);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let cluster = std::sync::Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let mut c = cluster.default_client().unwrap();
            let ptr = c.alloc(0, 64).unwrap();
            for i in 0..60u8 {
                c.write(ptr, 0, &[i; 64]).unwrap();
            }
            c.drain_all().unwrap();
            let mut buf = [0u8; 64];
            c.read(ptr, 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 59), "order violated: {}", buf[0]);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn sub_word_and_unaligned_cas_rejected() {
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    // Offset 3 is not 8-aligned: the device rejects it, surfaced remotely.
    assert!(client.cas_u64(ptr, 3, 0, 1).is_err());
    // Offset 60 leaves only 4 bytes: bounds error client-side.
    assert!(matches!(
        client.cas_u64(ptr, 60, 0, 1),
        Err(GengarError::AccessOutOfBounds { .. })
    ));
}

#[test]
fn max_report_burst_is_chunked() {
    // More distinct addresses than one Report message can carry must be
    // split across messages without losing entries.
    let mut config = ServerConfig::small();
    config.cache = config.cache.hot_threshold(1);
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster
        .client(ClientConfig {
            report_every: 1024,
            ..Default::default()
        })
        .unwrap();
    let ptrs: Vec<_> = (0..300).map(|_| client.alloc(0, 64).unwrap()).collect();
    let mut buf = [0u8; 64];
    for p in &ptrs {
        client.write(*p, 0, &[1u8; 64]).unwrap();
        client.read(*p, 0, &mut buf).unwrap();
    }
    // 600 accesses of 300 distinct addrs -> several chunked reports.
    client.flush_reports().unwrap();
    assert!(client.stats().reports >= 3, "{:?}", client.stats());
}
