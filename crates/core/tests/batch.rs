//! End-to-end tests of the vectored `OpBatch` API: mixed batches,
//! per-op results and partial completion, scalar-atomic interleaving, the
//! cached-read window path, multi-server fan-out and seqlock batches.

use std::time::{Duration, Instant};

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, Consistency, ServerConfig};
use gengar_core::{GengarClient, GengarError, GlobalPtr};
use gengar_rdma::FabricConfig;

fn small_cluster() -> Cluster {
    Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap()
}

fn client(cluster: &Cluster) -> GengarClient {
    cluster.client(ClientConfig::default()).unwrap()
}

#[test]
fn mixed_batch_round_trips_and_sees_own_writes() {
    let cluster = small_cluster();
    let mut client = client(&cluster);
    let a = client.alloc(0, 64).unwrap();
    let b = client.alloc(0, 64).unwrap();
    let mut got_a = [0u8; 5];
    let mut got_b = [0u8; 5];
    // Reads queued in the same batch as the writes must observe them
    // (writes apply before reads are issued).
    let result = client
        .batch()
        .write(a, 0, b"hello")
        .write(b, 0, b"world")
        .read(a, 0, &mut got_a)
        .read(b, 0, &mut got_b)
        .submit()
        .unwrap();
    assert!(result.all_ok(), "{:?}", result.results());
    assert_eq!(result.len(), 4);
    assert_eq!(&got_a, b"hello");
    assert_eq!(&got_b, b"world");
}

#[test]
fn same_object_writes_apply_in_submission_order() {
    let cluster = small_cluster();
    let mut client = client(&cluster);
    let ptr = client.alloc(0, 64).unwrap();
    let result = client
        .batch()
        .write(ptr, 0, &[1u8; 64])
        .write(ptr, 0, &[2u8; 64])
        .write(ptr, 0, &[3u8; 64])
        .submit()
        .unwrap();
    assert!(result.all_ok());
    client.drain_all().unwrap();
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&x| x == 3), "last write must win: {buf:?}");
}

#[test]
fn large_batches_match_scalar_reads() {
    let cluster = small_cluster();
    let mut writer = client(&cluster);
    // Far more objects than the window depth, so the planner must flush
    // several chunks per attempt.
    let ptrs: Vec<GlobalPtr> = (0..100).map(|_| writer.alloc(0, 64).unwrap()).collect();
    let payloads: Vec<[u8; 64]> = (0..100u8).map(|i| [i; 64]).collect();
    let items: Vec<(GlobalPtr, u64, &[u8])> = ptrs
        .iter()
        .zip(&payloads)
        .map(|(p, d)| (*p, 0u64, &d[..]))
        .collect();
    let result = writer.write_batch(items).unwrap();
    assert!(result.all_ok());
    writer.drain_all().unwrap();

    let mut bufs = vec![[0u8; 64]; 100];
    let items: Vec<(GlobalPtr, u64, &mut [u8])> = ptrs
        .iter()
        .zip(bufs.iter_mut())
        .map(|(p, b)| (*p, 0u64, &mut b[..]))
        .collect();
    let result = writer.read_batch(items).unwrap();
    assert!(result.all_ok());
    for (i, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &payloads[i], "object {i} read back wrong");
    }
}

#[test]
fn partial_completion_reports_per_op_errors() {
    let cluster = small_cluster();
    let mut client = client(&cluster);
    let ptr = client.alloc(0, 64).unwrap();
    let mut good = [0u8; 8];
    let mut oob = [0u8; 8];
    let result = client
        .batch()
        .write(ptr, 0, &[7u8; 64])
        .read(ptr, 0, &mut good)
        // Out of bounds: offset + len exceeds the object.
        .read(ptr, 60, &mut oob)
        .submit()
        .unwrap();
    assert_eq!(result.completed(), 2);
    assert!(result.results()[0].is_ok() && result.results()[1].is_ok());
    assert!(matches!(
        result.results()[2],
        Err(GengarError::AccessOutOfBounds { .. })
    ));
    // The good ops stayed applied and the error is addressable.
    assert_eq!(&good, &[7u8; 8]);
    let err = result.into_result().unwrap_err();
    assert_eq!(err.failed_at, 2);
    assert_eq!(err.completed, 2);
    assert!(matches!(*err.cause, GengarError::AccessOutOfBounds { .. }));
    assert!(err.to_string().contains("op 2"));
}

// Atomics in a batch are unrepresentable: `OpBatch` has no
// `cas_u64`/`faa_u64`/`lock`/`unlock` methods, so the old runtime-rejection
// test is now a compile-time guarantee. Scalar atomics still interleave
// correctly with batches:
#[test]
fn scalar_atomics_interleave_with_batches() {
    let cluster = small_cluster();
    let mut client = client(&cluster);
    let ptr = client.alloc(0, 64).unwrap();
    let result = client.batch().write(ptr, 0, &[9u8; 64]).submit().unwrap();
    assert!(result.all_ok());
    client.drain_all().unwrap();
    // The ordering-sensitive atomic goes through the scalar path.
    let old = client
        .cas_u64(ptr, 0, u64::from_le_bytes([9; 8]), 1)
        .unwrap();
    assert_eq!(old, u64::from_le_bytes([9; 8]));
    let mut buf = [0u8; 8];
    client.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 1);
}

#[test]
fn empty_batch_is_ok() {
    let cluster = small_cluster();
    let mut client = client(&cluster);
    let result = client.batch().submit().unwrap();
    assert!(result.is_empty() && result.all_ok());
    assert!(client.read_batch(Vec::new()).unwrap().is_empty());
    assert!(client.write_batch(Vec::new()).unwrap().is_empty());
}

#[test]
fn batch_fans_out_across_servers() {
    let cluster = Cluster::launch(3, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.client(ClientConfig::default()).unwrap();
    let ptrs: Vec<GlobalPtr> = (0..3)
        .flat_map(|s| (0..4).map(move |_| s))
        .map(|s| client.alloc(s, 64).unwrap())
        .collect();
    let payloads: Vec<[u8; 64]> = (0..12u8).map(|i| [i + 1; 64]).collect();
    let items: Vec<(GlobalPtr, u64, &[u8])> = ptrs
        .iter()
        .zip(&payloads)
        .map(|(p, d)| (*p, 0u64, &d[..]))
        .collect();
    assert!(client.write_batch(items).unwrap().all_ok());
    client.drain_all().unwrap();
    let mut bufs = vec![[0u8; 64]; 12];
    let items: Vec<(GlobalPtr, u64, &mut [u8])> = ptrs
        .iter()
        .zip(bufs.iter_mut())
        .map(|(p, b)| (*p, 0u64, &mut b[..]))
        .collect();
    assert!(client.read_batch(items).unwrap().all_ok());
    for (i, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &payloads[i]);
    }
}

#[test]
fn window_depth_one_disables_pipelining_but_stays_correct() {
    let cluster = small_cluster();
    let mut client = cluster
        .client(ClientConfig {
            window_depth: 1,
            ..Default::default()
        })
        .unwrap();
    let ptrs: Vec<GlobalPtr> = (0..10).map(|_| client.alloc(0, 64).unwrap()).collect();
    let items: Vec<(GlobalPtr, u64, &[u8])> =
        ptrs.iter().map(|p| (*p, 0u64, &b"serial"[..])).collect();
    assert!(client.write_batch(items).unwrap().all_ok());
    client.drain_all().unwrap();
    let mut buf = [0u8; 6];
    for p in &ptrs {
        client.read(*p, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"serial");
    }
}

#[test]
fn batched_reads_use_the_cache_once_hot() {
    let mut config = ServerConfig::small();
    config.cache = config.cache.hot_threshold(2);
    config.epoch = Duration::from_millis(5);
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = cluster
        .client(ClientConfig {
            report_every: 8,
            ..Default::default()
        })
        .unwrap();
    let ptrs: Vec<GlobalPtr> = (0..4).map(|_| client.alloc(0, 64).unwrap()).collect();
    for (i, p) in ptrs.iter().enumerate() {
        client.write(*p, 0, &[i as u8 + 1; 64]).unwrap();
    }
    client.drain_all().unwrap();

    // Hammer via batches until promotion lands and batched reads hit.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut bufs = vec![[0u8; 64]; 4];
    loop {
        let items: Vec<(GlobalPtr, u64, &mut [u8])> = ptrs
            .iter()
            .zip(bufs.iter_mut())
            .map(|(p, b)| (*p, 0u64, &mut b[..]))
            .collect();
        assert!(client.read_batch(items).unwrap().all_ok());
        for (i, buf) in bufs.iter().enumerate() {
            assert!(
                buf.iter().all(|&x| x == i as u8 + 1),
                "object {i} torn or stale: {buf:?}"
            );
        }
        if client.stats().cache_hits > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "batched reads never hit the cache: {:?}",
            client.stats()
        );
    }
}

#[test]
fn seqlock_batches_take_the_locked_scalar_path() {
    let cluster = small_cluster();
    let mut client = cluster
        .client(ClientConfig {
            consistency: Consistency::Seqlock,
            ..Default::default()
        })
        .unwrap();
    let a = client.alloc(0, 64).unwrap();
    let b = client.alloc(0, 64).unwrap();
    let mut got = [0u8; 64];
    let result = client
        .batch()
        .write(a, 0, &[4u8; 64])
        .write(b, 0, &[5u8; 64])
        .read(a, 0, &mut got)
        .submit()
        .unwrap();
    assert!(result.all_ok(), "{:?}", result.results());
    assert!(got.iter().all(|&x| x == 4));
    // Seqlock writes go through the direct (write-through) path.
    assert_eq!(client.stats().direct_writes, 2);
    assert_eq!(client.stats().staged_writes, 0);
}

#[test]
fn out_of_order_cross_server_completions_match_their_ops() {
    // Two servers on a realistic (deferred-completion) fabric, with the
    // link to server 0 given a large extra delay: in one batch, server
    // 1's completions arrive long before server 0's, so the reactor
    // settles the groups in the opposite of their planning order. Every
    // op must still land in its own buffer/slot — distinct fill patterns
    // and an interleaved op order catch any cross-group mismatch.
    let cluster =
        Cluster::launch(2, ServerConfig::small(), FabricConfig::infiniband_100g()).unwrap();
    let mut client = cluster.client(ClientConfig::default()).unwrap();
    let slow: Vec<GlobalPtr> = (0..4).map(|_| client.alloc(0, 256).unwrap()).collect();
    let fast: Vec<GlobalPtr> = (0..4).map(|_| client.alloc(1, 256).unwrap()).collect();
    for (i, ptr) in slow.iter().enumerate() {
        client.write(*ptr, 0, &[0xA0 + i as u8; 256]).unwrap();
    }
    for (i, ptr) in fast.iter().enumerate() {
        client.write(*ptr, 0, &[0xB0 + i as u8; 256]).unwrap();
    }
    client.drain_all().unwrap();
    cluster.fabric().set_extra_delay_ns(
        client.node().id(),
        cluster.server(0).unwrap().node().id(),
        300_000,
    );

    // Interleave slow/fast ops so per-server groups pick non-contiguous
    // batch indices.
    let mut bufs = vec![[0u8; 256]; 8];
    let (head, tail) = bufs.split_at_mut(4);
    let items: Vec<(GlobalPtr, u64, &mut [u8])> = head
        .iter_mut()
        .zip(tail.iter_mut())
        .enumerate()
        .flat_map(|(i, (s, f))| [(slow[i], 0u64, &mut s[..]), (fast[i], 0u64, &mut f[..])])
        .collect();
    let result = client.read_batch(items).unwrap();
    assert!(result.all_ok(), "{:?}", result.results());
    for i in 0..4 {
        assert!(
            bufs[i].iter().all(|&b| b == 0xA0 + i as u8),
            "slow-server op {i} got mismatched data: {:#x}",
            bufs[i][0]
        );
        assert!(
            bufs[i + 4].iter().all(|&b| b == 0xB0 + i as u8),
            "fast-server op {i} got mismatched data: {:#x}",
            bufs[i + 4][0]
        );
    }
}
