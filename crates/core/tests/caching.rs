//! End-to-end tests of the hot-data caching machinery: promotion,
//! eviction under pressure, invalidation, stale-remap self-healing and
//! re-promotion.

use std::time::{Duration, Instant};

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, ServerConfig};
use gengar_rdma::FabricConfig;

fn cache_cluster() -> Cluster {
    let mut config = ServerConfig::small();
    // Two 64-byte-payload slots' worth of cache (each slot block is 128 B:
    // 32 B header + 64 B payload + 8 B tail rounds to 128).
    config.cache = config.cache.capacity(4096).hot_threshold(2);
    config.epoch = Duration::from_millis(5);
    Cluster::launch(1, config, FabricConfig::instant()).unwrap()
}

fn reporting_client(cluster: &Cluster) -> gengar_core::GengarClient {
    cluster
        .client(ClientConfig {
            report_every: 8,
            ..Default::default()
        })
        .unwrap()
}

/// Hammers `ptr` until the client observes a cache hit (with a deadline).
fn wait_for_hit(client: &mut gengar_core::GengarClient, ptr: gengar_core::GlobalPtr) {
    let mut buf = vec![0u8; ptr.size as usize];
    let before = client.stats().cache_hits;
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.stats().cache_hits == before {
        client.read(ptr, 0, &mut buf).unwrap();
        assert!(
            Instant::now() < deadline,
            "no promotion: {:?}",
            client.stats()
        );
    }
}

#[test]
fn eviction_under_pressure_keeps_hottest() {
    let cluster = cache_cluster();
    let mut client = reporting_client(&cluster);
    // Working set of 16 objects, cache holds ~2. Hammer two of them much
    // harder than the rest.
    let ptrs: Vec<_> = (0..16).map(|_| client.alloc(0, 64).unwrap()).collect();
    for p in &ptrs {
        client.write(*p, 0, &[9u8; 64]).unwrap();
    }
    client.drain_all().unwrap();
    let mut buf = [0u8; 64];
    for round in 0..400 {
        client.read(ptrs[0], 0, &mut buf).unwrap();
        client.read(ptrs[1], 0, &mut buf).unwrap();
        if round % 8 == 0 {
            client.read(ptrs[round % 16], 0, &mut buf).unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    // The server never caches more than capacity allows.
    let server = cluster.server(0).unwrap();
    assert!(server.cached_objects() <= 4096 / 128);
    // The two hot objects dominate; reads of them hit.
    wait_for_hit(&mut client, ptrs[0]);
    wait_for_hit(&mut client, ptrs[1]);
}

#[test]
fn stale_remap_self_heals_after_server_side_eviction() {
    let cluster = cache_cluster();
    let mut client = reporting_client(&cluster);
    let hot = client.alloc(0, 64).unwrap();
    client.write(hot, 0, &[1u8; 64]).unwrap();
    client.drain_all().unwrap();
    wait_for_hit(&mut client, hot);
    assert!(client.remap_entries() >= 1);

    // Evict server-side by making other objects hotter while this client
    // still holds its remap entry.
    let mut other = reporting_client(&cluster);
    let fillers: Vec<_> = (0..8).map(|_| other.alloc(0, 64).unwrap()).collect();
    let mut buf = [0u8; 64];
    for p in &fillers {
        other.write(*p, 0, &[2u8; 64]).unwrap();
    }
    other.drain_all().unwrap();
    for _ in 0..600 {
        for p in &fillers {
            other.read(*p, 0, &mut buf).unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(50));

    // The first client's reads stay correct regardless of remap staleness:
    // tag/version validation rejects recycled slots and falls back to NVM.
    for _ in 0..50 {
        client.read(hot, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1), "stale slot served: {buf:?}");
    }
}

#[test]
fn free_invalidates_cached_copy() {
    let cluster = cache_cluster();
    let mut client = reporting_client(&cluster);
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[5u8; 64]).unwrap();
    client.drain_all().unwrap();
    wait_for_hit(&mut client, ptr);
    client.free(ptr).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(
        cluster.server(0).unwrap().cached_objects(),
        0,
        "freed object still cached"
    );
}

#[test]
fn repromotion_after_invalidation() {
    let cluster = cache_cluster();
    let mut client = reporting_client(&cluster);
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[1u8; 64]).unwrap();
    client.drain_all().unwrap();
    wait_for_hit(&mut client, ptr);

    // A direct write invalidates the cached copy...
    let mut writer = cluster
        .client(ClientConfig {
            consistency: gengar_core::Consistency::Seqlock,
            ..Default::default()
        })
        .unwrap();
    writer.write(ptr, 0, &[2u8; 64]).unwrap();

    // ...and continued heat re-promotes it with the new contents.
    let mut buf = [0u8; 64];
    let before = client.stats().cache_hits;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.read(ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2), "stale data: {buf:?}");
        if client.stats().cache_hits > before + 5 {
            break;
        }
        assert!(Instant::now() < deadline, "never re-promoted");
    }
}

#[test]
fn oversized_objects_never_cached() {
    let mut config = ServerConfig::small();
    config.cache = config.cache.cacheable_max(128).hot_threshold(1);
    config.epoch = Duration::from_millis(5);
    let cluster = Cluster::launch(1, config, FabricConfig::instant()).unwrap();
    let mut client = reporting_client(&cluster);
    let big = client.alloc(0, 4096).unwrap();
    client.write(big, 0, &[3u8; 4096]).unwrap();
    client.drain_all().unwrap();
    let mut buf = vec![0u8; 4096];
    for _ in 0..200 {
        client.read(big, 0, &mut buf).unwrap();
    }
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(cluster.server(0).unwrap().cached_objects(), 0);
    assert_eq!(client.stats().cache_hits, 0);
}

#[test]
fn second_client_benefits_from_first_clients_heat() {
    // The key contrast with client-side caching: the server cache serves
    // every client, including ones that never touched the object before.
    let cluster = cache_cluster();
    let mut hotter = reporting_client(&cluster);
    let ptr = hotter.alloc(0, 64).unwrap();
    hotter.write(ptr, 0, &[7u8; 64]).unwrap();
    hotter.drain_all().unwrap();
    wait_for_hit(&mut hotter, ptr);

    // The second client learns the remap on its very first report round
    // and then hits the same server-side copy.
    let mut cold = reporting_client(&cluster);
    let mut buf = [0u8; 64];
    let deadline = Instant::now() + Duration::from_secs(10);
    while cold.stats().cache_hits == 0 {
        cold.read(ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        assert!(Instant::now() < deadline, "second client never hit");
    }
}
