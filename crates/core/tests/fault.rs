//! Failure-injection tests: partitions, delays, crashes mid-traffic,
//! corrupt staging records, and recovery edge cases.

use std::sync::Arc;
use std::time::Duration;

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, ServerConfig};
use gengar_core::layout::{encode_record_header, RECORD_HEADER};
use gengar_core::GengarError;
use gengar_rdma::FabricConfig;

fn crash_cluster() -> Cluster {
    let mut config = ServerConfig::small();
    config.crash_sim = true;
    Cluster::launch(1, config, FabricConfig::instant()).unwrap()
}

/// A client that gives up quickly: operations against a dead server retry
/// (and re-dial) until this deadline, so tests that assert *failure*
/// through a partition should not sit out the default 2 s budget.
fn fast_fail_config() -> ClientConfig {
    ClientConfig {
        op_deadline: Duration::from_millis(200),
        max_retries: 8,
        ..Default::default()
    }
}

#[test]
fn partition_mid_stream_fails_cleanly() {
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.client(fast_fail_config()).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    let untouched = client.alloc(0, 64).unwrap(); // never in the store buffer
    for _ in 0..10 {
        client.write(ptr, 0, &[1u8; 64]).unwrap();
    }
    cluster.fabric().partition(
        client.node().id(),
        cluster.server(0).unwrap().node().id(),
        true,
    );
    // Both data-plane paths surface transport errors once the retry budget
    // is spent — not hangs or panics. (The exact variant depends on which
    // recovery stage the deadline interrupts.)
    let err = client.write(ptr, 0, &[2u8; 64]).unwrap_err();
    assert!(matches!(err, GengarError::Rdma(_)), "got {err:?}");
    assert!(
        client.stats().retries > 0,
        "failure should have been retried"
    );
    let mut buf = [0u8; 64];
    assert!(client.read(untouched, 0, &mut buf).is_err());
    // Read-your-writes from the local store buffer still works while the
    // link is down — the last acked write remains readable.
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 1));
}

#[test]
fn delayed_link_still_correct() {
    gengar_hybridmem::set_time_scale(1.0);
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    cluster.fabric().set_extra_delay_ns(
        client.node().id(),
        cluster.server(0).unwrap().node().id(),
        200_000, // 200 us each way
    );
    client.write(ptr, 0, b"slow but correct writes!").unwrap();
    client.drain_all().unwrap();
    let mut buf = vec![0u8; 24];
    client.read(ptr, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"slow but correct writes!");
}

#[test]
fn crash_under_concurrent_writers_loses_no_acked_write() {
    let cluster = Arc::new(crash_cluster());
    let mut setup = cluster.default_client().unwrap();
    let reader_cfg = ClientConfig {
        report_every: u32::MAX,
        ..Default::default()
    };
    let mut reader = cluster.client(reader_cfg).unwrap();
    let ptrs: Vec<_> = (0..4).map(|_| setup.alloc(0, 64).unwrap()).collect();

    // Writers hammer their own object; each remembers its last acked value.
    let mut handles = Vec::new();
    for (w, ptr) in ptrs.iter().enumerate() {
        let cluster = Arc::clone(&cluster);
        let ptr = *ptr;
        handles.push(std::thread::spawn(move || {
            let mut c = cluster.default_client().unwrap();
            let mut last = 0u8;
            for i in 1..=50u8 {
                let val = (w as u8) << 6 | (i & 0x3F);
                if c.write(ptr, 0, &[val; 64]).is_ok() {
                    last = val;
                }
            }
            last
        }));
    }
    let acked: Vec<u8> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Power failure + recovery.
    let server = cluster.server(0).unwrap();
    server.shutdown();
    server.crash().unwrap();
    server.recover().unwrap();

    for (ptr, &expected) in ptrs.iter().zip(&acked) {
        let mut buf = [0u8; 64];
        reader.read(*ptr, 0, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&b| b == expected),
            "object lost acked write: got {} expected {expected}",
            buf[0]
        );
    }
}

#[test]
fn recovery_skips_corrupt_staging_records() {
    let cluster = crash_cluster();
    let mut client = cluster.default_client().unwrap();
    let mut reader = cluster
        .client(ClientConfig {
            report_every: u32::MAX,
            ..Default::default()
        })
        .unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[0x77u8; 64]).unwrap();
    client.drain_all().unwrap();

    let server = cluster.server(0).unwrap();
    server.shutdown();

    // Forge a torn record directly in a staging ring: plausible header,
    // payload that does not match its checksum (as if the client died
    // mid-WRITE). Recovery must ignore it.
    let staging = server.staging_region();
    let mut hdr = [0u8; RECORD_HEADER as usize];
    encode_record_header(&mut hdr, 999, ptr.addr.raw(), 64, 0xBAD_C0DE, 0, 0, 0);
    staging.write(0, &hdr).unwrap();
    staging.write(RECORD_HEADER, &[0xEE; 64]).unwrap();

    server.crash().unwrap();
    let replayed = server.recover().unwrap();
    assert_eq!(replayed, 0, "corrupt record must not replay");
    let mut buf = [0u8; 64];
    reader.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x77), "data regressed: {buf:?}");
}

#[test]
fn recovery_replays_ring_wrap_in_order() {
    let cluster = crash_cluster();
    let mut client = cluster.default_client().unwrap();
    let mut reader = cluster
        .client(ClientConfig {
            report_every: u32::MAX,
            ..Default::default()
        })
        .unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    // More writes than ring slots so the ring wraps several times, then
    // crash with whatever is still staged.
    for i in 1..=60u8 {
        client.write(ptr, 0, &[i; 64]).unwrap();
    }
    let server = cluster.server(0).unwrap();
    server.shutdown();
    server.crash().unwrap();
    server.recover().unwrap();
    let mut buf = [0u8; 64];
    reader.read(ptr, 0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 60),
        "latest acked write must win after wrap replay, got {}",
        buf[0]
    );
}

#[test]
fn restart_resumes_service_for_new_clients() {
    let cluster = crash_cluster();
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[0x42u8; 64]).unwrap();

    let server = cluster.server(0).unwrap();
    server.shutdown();
    server.crash().unwrap();
    server.recover().unwrap();
    server.restart();

    // A fresh client connects to the restarted server and works fully.
    let mut fresh = cluster.default_client().unwrap();
    let mut buf = [0u8; 64];
    fresh.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x42));
    let ptr2 = fresh.alloc(0, 128).unwrap();
    fresh.write(ptr2, 0, &[0x43u8; 128]).unwrap();
    fresh.drain_all().unwrap();
    let mut buf2 = [0u8; 128];
    fresh.read(ptr2, 0, &mut buf2).unwrap();
    assert!(buf2.iter().all(|&b| b == 0x43));
}

#[test]
fn one_server_down_leaves_others_usable() {
    let mut config = ServerConfig::small();
    config.crash_sim = true;
    let cluster = Cluster::launch(2, config, FabricConfig::instant()).unwrap();
    let mut client = cluster.client(fast_fail_config()).unwrap();
    let on_zero = client.alloc(0, 64).unwrap();
    let on_one = client.alloc(1, 64).unwrap();
    client.write(on_zero, 0, &[1u8; 64]).unwrap();
    client.write(on_one, 0, &[2u8; 64]).unwrap();
    client.drain_all().unwrap();

    // Partition server 0 away from the client.
    cluster.fabric().partition(
        client.node().id(),
        cluster.server(0).unwrap().node().id(),
        true,
    );
    let mut buf = [0u8; 64];
    assert!(client.read(on_zero, 0, &mut buf).is_err());
    // Server 1 is untouched.
    client.read(on_one, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 2));
    let ptr = client.alloc(1, 64).unwrap();
    client.write(ptr, 0, &[3u8; 64]).unwrap();
}

#[test]
fn rnr_on_stalled_proxy_is_survivable() {
    // A QP-level sanity check: an unserved proxy ring (no posted recvs
    // because the server never accepted) cannot happen through the public
    // API, but a stalled drain shows up as flow-control waits, not errors.
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.default_client().unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    // Saturate the ring far past its 16 slots while draining normally.
    for i in 0..100u32 {
        client.write(ptr, 0, &[(i % 251) as u8; 64]).unwrap();
    }
    client.drain_all().unwrap();
    let mut buf = [0u8; 64];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 99));
}

#[test]
fn errors_are_displayable_and_classified() {
    // Exercise the error surface produced by fault paths.
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let mut client = cluster.client(fast_fail_config()).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    cluster.fabric().partition(
        client.node().id(),
        cluster.server(0).unwrap().node().id(),
        true,
    );
    let err = client.write(ptr, 0, &[0u8; 64]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("rdma error"), "unhelpful message: {msg}");
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn shutdown_is_idempotent_and_fast() {
    let cluster = Cluster::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
    let _client = cluster.default_client().unwrap();
    let t0 = std::time::Instant::now();
    cluster.server(0).unwrap().shutdown();
    cluster.server(0).unwrap().shutdown();
    cluster.shutdown();
    assert!(t0.elapsed() < Duration::from_secs(2));
}
