//! Property-based tests for Gengar's core data structures and protocols.

use gengar_core::addr::{GlobalAddr, MemClass};
use gengar_core::alloc::{SlabAllocator, MAX_CLASS};
use gengar_core::hotness::{AccessEntry, CountMinSketch, HotnessMonitor};
use gengar_core::layout::{
    checksum, decode_record_header, decode_slot_header, encode_record_header, encode_slot_header,
    lockword,
};
use gengar_core::proto::{Request, Response};
use proptest::prelude::*;
use std::collections::HashMap;

fn class_strategy() -> impl Strategy<Value = MemClass> {
    prop_oneof![
        Just(MemClass::Nvm),
        Just(MemClass::DramCache),
        Just(MemClass::Staging),
        Just(MemClass::Control),
    ]
}

proptest! {
    /// GlobalAddr packing is lossless for every server/class/offset.
    #[test]
    fn addr_roundtrips(server in any::<u8>(), class in class_strategy(), offset in 0u64..(1 << 48)) {
        let a = GlobalAddr::new(server, class, offset);
        prop_assert_eq!(a.server(), server);
        prop_assert_eq!(a.class(), class);
        prop_assert_eq!(a.offset(), offset);
        prop_assert_eq!(GlobalAddr::from_raw(a.raw()), Some(a));
    }

    /// Live allocations never overlap and free/realloc preserves that.
    #[test]
    fn allocator_never_overlaps(ops in proptest::collection::vec((1u64..100_000, any::<bool>()), 1..120)) {
        let mut a = SlabAllocator::new(4096, 64 << 20);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (offset, block)
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (off, _) = live.swap_remove(0);
                a.free(off).unwrap();
            } else {
                let off = a.alloc(size).unwrap();
                let block = SlabAllocator::block_size(size).unwrap();
                prop_assert_eq!(off % 64, 0, "misaligned block");
                prop_assert!(off >= 4096, "escaped the managed base");
                for &(o, b) in &live {
                    prop_assert!(off + block <= o || o + b <= off,
                        "overlap: [{off},{}) vs [{o},{})", off + block, o + b);
                }
                live.push((off, block));
            }
        }
        // Stats agree with the model.
        prop_assert_eq!(a.stats().live, live.len() as u64);
        for (off, _) in live {
            a.free(off).unwrap();
        }
        prop_assert_eq!(a.stats().live, 0);
    }

    /// Block sizes are monotone and cover requests exactly up to MAX_CLASS.
    #[test]
    fn block_size_covers_request(size in 1u64..=MAX_CLASS) {
        let block = SlabAllocator::block_size(size).unwrap();
        prop_assert!(block >= size);
        prop_assert!(block < size * 2 || block == 64);
        prop_assert!(block.is_power_of_two());
    }

    /// The count-min sketch never under-estimates.
    #[test]
    fn sketch_never_underestimates(adds in proptest::collection::vec((0u64..64, 1u32..50), 1..200)) {
        let mut sketch = CountMinSketch::new(128, 4);
        let mut truth: HashMap<u64, u32> = HashMap::new();
        for (key, count) in adds {
            sketch.add(key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (key, count) in truth {
            prop_assert!(sketch.estimate(key) >= count);
        }
    }

    /// Monitor fold returns each seen address at least at its true count.
    #[test]
    fn monitor_scores_cover_counts(entries in proptest::collection::vec((0u64..32, 1u32..20), 1..64)) {
        let mut m = HotnessMonitor::with_policy(
            &gengar_core::CachePolicy::new(),
            gengar_telemetry::TelemetryConfig::disabled(),
        );
        let mut truth: HashMap<u64, u32> = HashMap::new();
        let batch: Vec<AccessEntry> = entries
            .iter()
            .map(|&(addr, count)| {
                *truth.entry(addr).or_insert(0) += count;
                AccessEntry { addr, count, wrote: false }
            })
            .collect();
        m.record(&batch);
        let folded: HashMap<u64, u32> = m.fold_epoch().into_iter().collect();
        for (addr, count) in truth {
            prop_assert!(folded[&addr] >= count);
        }
    }

    /// Protocol requests survive an encode/decode roundtrip.
    #[test]
    fn proto_request_roundtrips(
        size in any::<u64>(),
        addr in any::<u64>(),
        entries in proptest::collection::vec((any::<u64>(), any::<u32>(), any::<bool>()), 0..64),
    ) {
        let reqs = vec![
            Request::Mount { tenant: "prop-tenant".to_owned() },
            Request::Alloc { size },
            Request::Free { addr },
            Request::Report {
                entries: entries
                    .iter()
                    .map(|&(addr, count, wrote)| AccessEntry { addr, count, wrote })
                    .collect(),
            },
            Request::FlushRange { addr, len: size },
            Request::Invalidate { addr },
        ];
        for req in reqs {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            prop_assert_eq!(Request::decode(&buf).unwrap(), req);
        }
    }

    /// Arbitrary bytes never panic the decoders (they error or parse).
    #[test]
    fn proto_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Lock word: lock/release cycles preserve the version arithmetic.
    #[test]
    fn lockword_cycles(cycles in 1u64..1000) {
        let mut word = lockword::INIT;
        for i in 0..cycles {
            prop_assert!(!lockword::is_locked(word));
            prop_assert_eq!(lockword::version(word), i);
            word = lockword::locked(word);
            prop_assert!(lockword::is_locked(word));
            word = lockword::release(word);
        }
        prop_assert_eq!(lockword::version(word), cycles);
    }

    /// Slot and record headers roundtrip any field values.
    #[test]
    fn headers_roundtrip(
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        d in any::<u64>(),
        t in any::<u64>(),
        tenant in any::<u32>(),
        epoch in any::<u32>(),
    ) {
        let mut buf = [0u8; 32];
        encode_slot_header(&mut buf, a, b, c, d);
        let h = decode_slot_header(&buf);
        prop_assert_eq!((h.tag, h.version, h.checksum, h.len), (a, b, c, d));
        let mut buf = [0u8; 48];
        encode_record_header(&mut buf, a, b, c, d, t, tenant, epoch);
        let r = decode_record_header(&buf);
        prop_assert_eq!((r.seq, r.addr, r.len, r.checksum, r.trace, r.tenant, r.epoch), (a, b, c, d, t, tenant, epoch));
    }

    /// The checksum detects any single-byte corruption.
    #[test]
    fn checksum_detects_corruption(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let original = checksum(&data);
        let mut corrupted = data.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= flip;
        prop_assert_ne!(checksum(&corrupted), original);
    }
}
