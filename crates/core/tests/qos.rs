//! End-to-end tests of the multi-tenant QoS plane: tenant identity riding
//! the handshake, issue-gate pacing against a live cluster, and session
//! bookkeeping through failed-handshake storms.

use std::time::{Duration, Instant};

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, ServerConfig};
use gengar_core::qos::TenantSpec;
use gengar_rdma::FabricConfig;

fn qos_server_config(tenants: Vec<TenantSpec>, burst_ratio: f64) -> ServerConfig {
    let mut config = ServerConfig::small();
    config.qos.enabled = true;
    config.qos.burst_ratio = burst_ratio;
    config.qos.tenants = tenants;
    config
}

fn tenant_client_config(tenant: &str) -> ClientConfig {
    ClientConfig {
        tenant: tenant.to_owned(),
        report_every: u32::MAX,
        ..Default::default()
    }
}

/// A tenant with an ops/s budget is paced by the issue gate — the run
/// takes at least the token-bucket lower bound — while an unlimited
/// tenant on the same cluster is untouched and both complete correctly.
#[test]
fn capped_tenant_is_paced_unlimited_tenant_is_not() {
    gengar_hybridmem::set_time_scale(1.0);
    let spec = TenantSpec {
        name: "capped".to_owned(),
        ops_per_sec: 400,
        bytes_per_sec: 0,
        staged_bytes_cap: 0,
        weight: 1,
    };
    // burst 0.5 => 200 tokens of headroom on a 400/s budget.
    let cluster = Cluster::launch(
        1,
        qos_server_config(vec![spec], 0.5),
        FabricConfig::instant(),
    )
    .expect("launch");

    let mut free = cluster.client(tenant_client_config("roomy")).unwrap();
    let free_ptr = free.alloc(0, 64).unwrap();
    let mut capped = cluster.client(tenant_client_config("capped")).unwrap();
    let capped_ptr = capped.alloc(0, 64).unwrap();

    // The unlimited tenant is never parked.
    for i in 0..300u32 {
        free.write(free_ptr, 0, &[(i % 251) as u8; 64]).unwrap();
    }

    // 300 ops against burst 200 at 400/s: at least 100 ops must wait for
    // refill, so the loop cannot finish faster than 100/400 = 250 ms.
    let t0 = Instant::now();
    for i in 0..300u32 {
        capped.write(capped_ptr, 0, &[(i % 251) as u8; 64]).unwrap();
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(200),
        "capped tenant finished in {elapsed:?}: the issue gate never paced it"
    );

    // Both tenants' data is intact despite the pacing.
    capped.drain_all().unwrap();
    free.drain_all().unwrap();
    let mut buf = [0u8; 64];
    capped.read(capped_ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == (299 % 251) as u8));

    let plane = cluster.qos_plane().expect("qos enabled");
    let mut tenants = plane.tenants();
    tenants.sort();
    assert_eq!(tenants, vec!["capped".to_owned(), "roomy".to_owned()]);
}

/// A bandwidth budget paces by payload bytes: few large writes trip the
/// gate even when the op budget would never notice them.
#[test]
fn bandwidth_budget_paces_large_writes() {
    gengar_hybridmem::set_time_scale(1.0);
    let spec = TenantSpec {
        name: "bulk".to_owned(),
        ops_per_sec: 0,
        bytes_per_sec: 4 << 20, // 4 MiB per simulated second
        staged_bytes_cap: 0,
        weight: 1,
    };
    let cluster = Cluster::launch(
        1,
        qos_server_config(vec![spec], 0.25),
        FabricConfig::instant(),
    )
    .expect("launch");
    let mut client = cluster.client(tenant_client_config("bulk")).unwrap();
    let ptr = client.alloc(0, 256 << 10).unwrap();
    let payload = vec![0xABu8; 256 << 10];

    // 8 x 256 KiB = 2 MiB against burst 1 MiB at 4 MiB/s: at least 1 MiB
    // must wait for refill => >= 250 ms.
    let t0 = Instant::now();
    for _ in 0..8 {
        client.write(ptr, 0, &payload).unwrap();
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(200),
        "bulk tenant finished in {elapsed:?}: bytes budget never paced it"
    );
    client.drain_all().unwrap();
    let mut buf = vec![0u8; 256 << 10];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xAB));
}

/// A weight-4 tenant pays a quarter of the charge: at identical limits it
/// moves the same work in roughly a quarter of the paced time.
#[test]
fn weights_scale_the_fair_share() {
    gengar_hybridmem::set_time_scale(1.0);
    let mk = |name: &str, weight: u32| TenantSpec {
        name: name.to_owned(),
        ops_per_sec: 400,
        bytes_per_sec: 0,
        staged_bytes_cap: 0,
        weight,
    };
    let cluster = Cluster::launch(
        1,
        qos_server_config(vec![mk("light", 1), mk("heavy", 4)], 0.5),
        FabricConfig::instant(),
    )
    .expect("launch");

    let paced_run = |tenant: &str| {
        let mut client = cluster.client(tenant_client_config(tenant)).unwrap();
        let ptr = client.alloc(0, 64).unwrap();
        let t0 = Instant::now();
        for i in 0..400u32 {
            client.write(ptr, 0, &[(i % 251) as u8; 64]).unwrap();
        }
        t0.elapsed()
    };
    // light: 400 ops, burst 200, rate 400/s => >= 500 ms.
    // heavy (weight 4): effective charge 100 ops => fits the burst, fast.
    let light = paced_run("light");
    let heavy = paced_run("heavy");
    assert!(
        light >= Duration::from_millis(400),
        "weight-1 tenant finished in {light:?}: pacing lower bound violated"
    );
    assert!(
        heavy < light,
        "weight-4 tenant ({heavy:?}) was not faster than weight-1 ({light:?})"
    );
}

/// Failed-handshake storms (re-dials through a partition) release their
/// QoS sessions: after the link heals the tenant has a bounded session
/// count instead of one per burned handshake.
#[test]
fn failed_handshake_storm_releases_tenant_sessions() {
    gengar_hybridmem::set_time_scale(1.0);
    let mut server_config = qos_server_config(Vec::new(), 2.0);
    server_config.max_clients = 4;
    let cluster = Cluster::launch(1, server_config, FabricConfig::instant()).expect("launch");
    let config = ClientConfig {
        op_deadline: Duration::from_millis(200),
        max_retries: 8,
        ..tenant_client_config("storm")
    };
    let mut client = cluster.client(config).unwrap();
    let ptr = client.alloc(0, 64).unwrap();
    client.write(ptr, 0, &[1u8; 64]).unwrap();

    let plane = cluster.qos_plane().expect("qos enabled").clone();
    let storm = plane.handle("storm");
    assert_eq!(storm.sessions(), 1, "one live session after connect");

    let link = (client.node().id(), cluster.server(0).unwrap().node().id());
    cluster.fabric().partition(link.0, link.1, true);
    // Each failed op burns several reconnect handshakes — far more in
    // total than max_clients. Every one of them must hand its session
    // back along with its client id.
    for _ in 0..6 {
        assert!(client.write(ptr, 0, &[2u8; 64]).is_err());
    }
    cluster.fabric().partition(link.0, link.1, false);

    client.write(ptr, 0, &[3u8; 64]).unwrap();
    // The original session plus at most one successful re-mount: the
    // storm's dead handshakes all released theirs.
    assert!(
        storm.sessions() <= 2,
        "storm leaked sessions: {} live after one reconnect",
        storm.sessions()
    );
    assert!(plane.tenants().contains(&"storm".to_owned()));
}

/// A staged-bytes cap sheds oversized batches to the direct path instead
/// of wedging: writes larger than the cap still land and are readable.
#[test]
fn staged_cap_sheds_oversize_writes_to_direct_path() {
    gengar_hybridmem::set_time_scale(1.0);
    let spec = TenantSpec {
        name: "tiny-ring".to_owned(),
        ops_per_sec: 0,
        bytes_per_sec: 0,
        staged_bytes_cap: 128, // smaller than one 256-byte payload
        weight: 1,
    };
    let cluster = Cluster::launch(
        1,
        qos_server_config(vec![spec], 2.0),
        FabricConfig::instant(),
    )
    .expect("launch");
    let mut client = cluster.client(tenant_client_config("tiny-ring")).unwrap();
    let ptr = client.alloc(0, 256).unwrap();
    // 256 bytes can never fit a 128-byte staged budget: the write must
    // shed to the direct path, not park forever.
    client.write(ptr, 0, &[0x7Du8; 256]).unwrap();
    let mut buf = [0u8; 256];
    client.read(ptr, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x7D));
    assert!(
        client.stats().direct_writes > 0,
        "oversize staged write was not shed to the direct path"
    );
}
