//! Live health plane over a running cluster: the `Inspect` RPC serves a
//! versioned document with component states and windowed series, and the
//! component state machines ride a flapping link from `Healthy` through
//! `Degraded`/`Critical` and back to `Healthy` once the link recovers.
//!
//! These tests live in their own binary on purpose: the health plane
//! samples the process-wide telemetry registry, so retries produced by
//! unrelated tests in the same process would bleed into the windows.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, HealthConfig, ServerConfig};
use gengar_core::HealthState;
use gengar_rdma::{FabricConfig, FaultPlane, PartitionFlap};

/// A health configuration tuned for test timelines: fast ticks, short
/// hysteresis, and a retry threshold low enough that a flapping link's
/// recovery traffic registers. The remaining thresholds stay unreachable
/// so only the `clients` component moves.
fn test_health() -> HealthConfig {
    let mut health = HealthConfig {
        enabled: true,
        tick: Duration::from_millis(10),
        escalate_after: 2,
        recover_after: 2,
        ..Default::default()
    };
    // Windows are ~10ms, so rates carry a ~100x multiplier: a couple of
    // retries per window is already hundreds per second.
    health.thresholds.retry_degraded = 50.0;
    health.thresholds.retry_critical = f64::MAX;
    health
}

fn health_cluster() -> (Cluster, Arc<FaultPlane>) {
    let plane = Arc::new(FaultPlane::new(7));
    let mut fabric = FabricConfig::instant();
    fabric.faults = Some(Arc::clone(&plane));
    let mut config = ServerConfig::small();
    config.health = test_health();
    let cluster = Cluster::launch(1, config, fabric).expect("cluster launch");
    (cluster, plane)
}

fn client_config() -> ClientConfig {
    ClientConfig {
        report_every: u32::MAX,
        op_deadline: Duration::from_millis(500),
        max_retries: 8,
        ..Default::default()
    }
}

/// Pull one JSON string field out of a flat document (the inspect doc
/// nests only objects/arrays, and the probed keys are top-level).
fn json_str_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = doc.find(&needle)? + needle.len();
    let end = doc[start..].find('"')?;
    Some(doc[start..start + end].to_string())
}

#[test]
fn inspect_rpc_serves_live_health_and_windows() {
    let (cluster, _plane) = health_cluster();
    let mut client = cluster.client(client_config()).expect("client");
    let ptr = client.alloc(0, 128).expect("alloc");

    // Generate traffic across a few tick intervals so the ring holds
    // non-empty windows with real op series.
    let plane = cluster.health_plane().expect("health plane on").clone();
    let deadline = Instant::now() + Duration::from_secs(10);
    while plane.ticks() < 5 {
        for i in 0..64u8 {
            client.write(ptr, 0, &[i; 128]).expect("write");
            let mut buf = [0u8; 128];
            client.read(ptr, 0, &mut buf).expect("read");
        }
        assert!(Instant::now() < deadline, "health plane never ticked");
    }

    let doc = client.inspect(0).expect("inspect rpc");
    assert!(doc.len() <= gengar_core::proto::MAX_INSPECT_JSON);
    assert!(doc.contains("\"v\":1"), "unversioned doc: {doc}");
    assert!(doc.contains("\"server\":0"), "wrong server: {doc}");
    let overall = json_str_field(&doc, "overall").expect("overall field");
    assert!(
        ["healthy", "degraded", "critical"].contains(&overall.as_str()),
        "unknown overall state {overall:?}"
    );
    for component in ["proxy_ring", "drain", "replication", "qos", "clients"] {
        assert!(
            doc.contains(&format!("\"{component}\"")),
            "missing component {component}: {doc}"
        );
    }
    // Windowed series made it across the wire: at least one window digest
    // with an op count (the traffic above guarantees a non-idle window).
    assert!(doc.contains("\"windows\":["), "no window series: {doc}");
    assert!(
        doc.contains("\"ops\":"),
        "windows carry no op series: {doc}"
    );
    assert!(doc.contains("\"slo\":["), "no slo section: {doc}");

    // The JSON is at least structurally balanced.
    let opens = doc.matches('{').count();
    let closes = doc.matches('}').count();
    assert_eq!(opens, closes, "unbalanced inspect doc: {doc}");
}

#[test]
fn flapping_link_degrades_then_recovers() {
    let (cluster, plane) = health_cluster();
    let mut client = cluster.client(client_config()).expect("client");
    let ptr = client.alloc(0, 64).expect("alloc");
    let health = cluster.health_plane().expect("health plane on").clone();

    // Baseline: clean traffic, the clients component reports Healthy.
    for i in 0..32u8 {
        client.write(ptr, 0, &[i; 64]).expect("clean write");
    }
    assert_eq!(health.overall(), HealthState::Healthy);

    // Flap the client<->server link so every burst of ops eats retries.
    let link = (client.node().id(), cluster.server(0).unwrap().node().id());
    plane.add_flap(PartitionFlap::on_link(link.0, link.1, 40, 10));

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for i in 0..32u8 {
            let _ = client.write(ptr, 0, &[i; 64]);
        }
        let clients_state = health
            .components()
            .into_iter()
            .find(|(name, _)| *name == "clients")
            .map(|(_, s)| s)
            .expect("clients component");
        if clients_state >= HealthState::Degraded {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "flapping link never degraded the clients component: {:?}",
            health.components()
        );
    }
    assert!(health.overall() >= HealthState::Degraded);

    // Recovery: disarm the faults and keep clean traffic flowing; after
    // `recover_after` clean windows per level the component steps back to
    // Healthy (and stays there — hysteresis, not a blip).
    plane.disarm();
    let deadline = Instant::now() + Duration::from_secs(30);
    while health.overall() != HealthState::Healthy {
        for i in 0..16u8 {
            client.write(ptr, 0, &[i; 64]).expect("post-recovery write");
        }
        assert!(
            Instant::now() < deadline,
            "health never recovered after the flap stopped: {:?}",
            health.components()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(health.overall(), HealthState::Healthy);
}
