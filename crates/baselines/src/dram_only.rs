//! The DRAM-only upper bound.

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, Consistency, ServerConfig};
use gengar_core::error::GengarError;
use gengar_core::pool::DshmPool;
use gengar_core::{GengarClient, GlobalPtr};
use gengar_hybridmem::{DeviceProfile, MemKind, PersistenceMode};
use gengar_rdma::FabricConfig;

/// A pool whose "NVM" is DRAM-speed and durable-on-write: the performance
/// ceiling any hybrid design could reach if NVM were as fast as DRAM.
/// Writes take the proxy path (one round trip); there is nothing for a
/// DRAM cache to accelerate, so it stays off.
#[derive(Debug)]
pub struct DramOnly {
    client: GengarClient,
}

impl DramOnly {
    /// Forces the upper-bound configuration onto `config`.
    pub fn server_config(mut config: ServerConfig) -> ServerConfig {
        let mut profile = match config.dram_profile.read_latency_ns {
            0 => DeviceProfile::instant(MemKind::Nvm),
            _ => DeviceProfile {
                kind: MemKind::Nvm,
                ..DeviceProfile::dram()
            },
        };
        profile.name = "dram-as-nvm".to_owned();
        profile.persistence = PersistenceMode::Adr;
        config.nvm_profile = profile;
        config.cache = gengar_core::CachePolicy::disabled();
        config.enable_proxy = true;
        config
    }

    /// Launches a cluster configured as the upper bound.
    ///
    /// # Errors
    ///
    /// Propagates cluster launch failures.
    pub fn launch(
        n_servers: usize,
        config: ServerConfig,
        fabric: FabricConfig,
    ) -> Result<Cluster, GengarError> {
        Cluster::launch(n_servers, Self::server_config(config), fabric)
    }

    /// Connects a client.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client(cluster: &Cluster) -> Result<DramOnly, GengarError> {
        let client = cluster.client(ClientConfig {
            consistency: Consistency::None,
            ..Default::default()
        })?;
        Ok(DramOnly { client })
    }

    /// The wrapped Gengar client.
    pub fn inner(&self) -> &GengarClient {
        &self.client
    }
}

impl DshmPool for DramOnly {
    fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        self.client.alloc(server, size)
    }

    fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        self.client.free(ptr)
    }

    fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError> {
        self.client.read(ptr, offset, buf)
    }

    fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError> {
        self.client.write(ptr, offset, data)
    }

    fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        self.client.cas_u64(ptr, offset, expected, new)
    }

    fn servers(&self) -> Vec<u8> {
        self.client.server_ids()
    }

    fn barrier(&mut self) -> Result<(), GengarError> {
        self.client.drain_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_roundtrips() {
        let cluster = DramOnly::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
        let mut pool = DramOnly::client(&cluster).unwrap();
        let ptr = pool.alloc(0, 64).unwrap();
        pool.write(ptr, 0, &[8u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        pool.read(ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 8));
        assert!(
            pool.inner().stats().staged_writes >= 1,
            "proxy path expected"
        );
    }

    #[test]
    fn config_shape() {
        let c = DramOnly::server_config(ServerConfig::default());
        assert_eq!(c.nvm_profile.kind, MemKind::Nvm);
        assert_eq!(c.nvm_profile.persistence, PersistenceMode::Adr);
        assert!(!c.cache.enabled);
        assert!(c.enable_proxy);
        // DRAM-speed, not Optane-speed.
        assert!(c.nvm_profile.read_latency_ns <= DeviceProfile::dram().read_latency_ns);
    }
}
