//! Baseline DSHM designs for the Gengar evaluation.
//!
//! The paper compares Gengar against "state-of-the-art DSHM systems" — the
//! design points of that generation that lack server-side hot-data caching
//! and proxy writes. This crate implements those comparators behind the
//! same [`DshmPool`] trait, so every workload in `gengar-workloads` runs
//! unchanged against each system:
//!
//! * [`NvmDirect`] — one-sided RDMA straight to remote NVM, no DRAM cache,
//!   no proxy; durability through write + flush RPC (Octopus-class).
//! * [`ClientCache`] — NvmDirect plus a *client-local* DRAM cache with
//!   version-validated hits (Hotpot-class). Contrast with Gengar's
//!   *server-side* cache, which serves every client and is kept fresh by
//!   the proxy drain path.
//! * [`DramOnly`] — the whole pool backed by DRAM-speed devices: an upper
//!   bound on what any NVM design can reach.
//!
//! [`DshmPool`]: gengar_core::pool::DshmPool

pub mod client_cache;
pub mod dram_only;
pub mod nvm_direct;

pub use client_cache::ClientCache;
pub use dram_only::DramOnly;
pub use nvm_direct::NvmDirect;
