//! The direct-to-NVM baseline (Octopus-class).

use std::sync::Arc;

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, Consistency, ServerConfig};
use gengar_core::error::GengarError;
use gengar_core::pool::DshmPool;
use gengar_core::{GengarClient, GlobalPtr};
use gengar_rdma::FabricConfig;

/// A DSHM design that accesses remote NVM with one-sided verbs and nothing
/// else: no hot-data caching, no proxy. Writes are made durable with an
/// RDMA WRITE followed by a flush RPC. This is the "state-of-the-art DSHM"
/// shape the paper compares against.
#[derive(Debug)]
pub struct NvmDirect {
    client: GengarClient,
}

impl NvmDirect {
    /// Forces the baseline's server configuration onto `config`.
    pub fn server_config(mut config: ServerConfig) -> ServerConfig {
        config.cache = gengar_core::CachePolicy::disabled();
        config.enable_proxy = false;
        config
    }

    /// Launches a cluster configured for this baseline.
    ///
    /// # Errors
    ///
    /// Propagates cluster launch failures.
    pub fn launch(
        n_servers: usize,
        config: ServerConfig,
        fabric: FabricConfig,
    ) -> Result<Cluster, GengarError> {
        Cluster::launch(n_servers, Self::server_config(config), fabric)
    }

    /// Connects a baseline client to a cluster launched with
    /// [`NvmDirect::launch`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client(cluster: &Cluster) -> Result<NvmDirect, GengarError> {
        let client = cluster.client(ClientConfig {
            consistency: Consistency::None,
            ..Default::default()
        })?;
        Ok(NvmDirect { client })
    }

    /// The wrapped Gengar client (for statistics).
    pub fn inner(&self) -> &GengarClient {
        &self.client
    }
}

impl DshmPool for NvmDirect {
    fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        self.client.alloc(server, size)
    }

    fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        self.client.free(ptr)
    }

    fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError> {
        self.client.read(ptr, offset, buf)
    }

    fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError> {
        self.client.write(ptr, offset, data)
    }

    fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        self.client.cas_u64(ptr, offset, expected, new)
    }

    fn servers(&self) -> Vec<u8> {
        self.client.server_ids()
    }
}

/// Convenience: launch a baseline cluster and one client in one call.
///
/// # Errors
///
/// Propagates launch/connect failures.
pub fn launch_with_client(
    n_servers: usize,
    config: ServerConfig,
    fabric: FabricConfig,
) -> Result<(Arc<Cluster>, NvmDirect), GengarError> {
    let cluster = Arc::new(NvmDirect::launch(n_servers, config, fabric)?);
    let client = NvmDirect::client(&cluster)?;
    Ok((cluster, client))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_disables_gengar_mechanisms() {
        let (_cluster, mut pool) =
            launch_with_client(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
        let ptr = pool.alloc(0, 64).unwrap();
        for _ in 0..20 {
            pool.write(ptr, 0, &[3u8; 64]).unwrap();
            let mut buf = [0u8; 64];
            pool.read(ptr, 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 3));
        }
        let stats = pool.inner().stats();
        assert_eq!(stats.staged_writes, 0);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.direct_writes, 20);
    }
}
