//! The client-side-caching baseline (Hotpot-class).

use std::collections::{BTreeMap, HashMap};

use gengar_core::cluster::Cluster;
use gengar_core::config::{ClientConfig, Consistency, ServerConfig};
use gengar_core::error::GengarError;
use gengar_core::layout::lockword;
use gengar_core::pool::DshmPool;
use gengar_core::{CachePolicy, GengarClient, GlobalPtr};
use gengar_rdma::FabricConfig;

#[derive(Debug)]
struct Entry {
    version: u64,
    data: Vec<u8>,
    stamp: u64,
}

/// Cache-hit/miss counters for the baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCacheStats {
    /// Reads served from the local cache after version validation.
    pub hits: u64,
    /// Reads that went to the pool.
    pub misses: u64,
    /// Validation round trips that found a stale version.
    pub stale: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

/// A DSHM client that caches object payloads in *its own* DRAM.
///
/// Cache hits cost one 8-byte RDMA READ (version validation) instead of a
/// full-object READ. The contrast with Gengar: each client caches
/// separately (no sharing across clients), every hit still pays a
/// round-trip for validation, and writes must go through the home node's
/// lock/version protocol to keep validations sound.
#[derive(Debug)]
pub struct ClientCache {
    client: GengarClient,
    entries: HashMap<u64, Entry>,
    lru: BTreeMap<u64, u64>,
    used: u64,
    capacity: u64,
    next_stamp: u64,
    stats: ClientCacheStats,
}

impl ClientCache {
    /// Forces the baseline's server configuration onto `config` (home
    /// nodes serve raw NVM; no server cache, no proxy).
    pub fn server_config(mut config: ServerConfig) -> ServerConfig {
        config.cache = CachePolicy::disabled();
        config.enable_proxy = false;
        config
    }

    /// Launches a cluster configured for this baseline.
    ///
    /// # Errors
    ///
    /// Propagates cluster launch failures.
    pub fn launch(
        n_servers: usize,
        config: ServerConfig,
        fabric: FabricConfig,
    ) -> Result<Cluster, GengarError> {
        Cluster::launch(n_servers, Self::server_config(config), fabric)
    }

    /// Connects a caching client whose local cache is shaped by `policy`
    /// (only `policy.capacity` applies: this baseline is a plain
    /// validate-on-hit LRU, the contrast Gengar's admission/ghost/demotion
    /// machinery is measured against).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client(cluster: &Cluster, policy: CachePolicy) -> Result<ClientCache, GengarError> {
        let client = cluster.client(ClientConfig {
            // Writes must bump versions so validation detects staleness.
            consistency: Consistency::Seqlock,
            ..Default::default()
        })?;
        Ok(ClientCache {
            client,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            used: 0,
            capacity: policy.capacity,
            next_stamp: 0,
            stats: ClientCacheStats::default(),
        })
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> ClientCacheStats {
        self.stats
    }

    /// The wrapped Gengar client.
    pub fn inner(&self) -> &GengarClient {
        &self.client
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.used
    }

    fn touch(&mut self, base: u64) {
        if let Some(e) = self.entries.get_mut(&base) {
            self.lru.remove(&e.stamp);
            self.next_stamp += 1;
            e.stamp = self.next_stamp;
            self.lru.insert(e.stamp, base);
        }
    }

    fn remove(&mut self, base: u64) {
        if let Some(e) = self.entries.remove(&base) {
            self.lru.remove(&e.stamp);
            self.used -= e.data.len() as u64;
        }
    }

    fn insert(&mut self, base: u64, version: u64, data: Vec<u8>) {
        if data.len() as u64 > self.capacity {
            return;
        }
        self.remove(base);
        while self.used + data.len() as u64 > self.capacity {
            let (&stamp, &victim) = self.lru.iter().next().expect("used > 0 implies entries");
            let _ = stamp;
            self.remove(victim);
            self.stats.evictions += 1;
        }
        self.next_stamp += 1;
        self.used += data.len() as u64;
        self.lru.insert(self.next_stamp, base);
        self.entries.insert(
            base,
            Entry {
                version,
                data,
                stamp: self.next_stamp,
            },
        );
    }
}

impl DshmPool for ClientCache {
    fn alloc(&mut self, server: u8, size: u64) -> Result<GlobalPtr, GengarError> {
        self.client.alloc(server, size)
    }

    fn free(&mut self, ptr: GlobalPtr) -> Result<(), GengarError> {
        self.remove(ptr.addr.raw());
        self.client.free(ptr)
    }

    fn read(&mut self, ptr: GlobalPtr, offset: u64, buf: &mut [u8]) -> Result<(), GengarError> {
        let base = ptr.addr.raw();
        // Validate a cached copy with a single 8-byte READ of the object's
        // lock/version word.
        if self.entries.contains_key(&base) {
            let word = self.client.read_lock_word(ptr)?;
            let entry = self.entries.get(&base).expect("checked above");
            if !lockword::is_locked(word) && lockword::version(word) == entry.version {
                let off = offset as usize;
                if off + buf.len() <= entry.data.len() {
                    buf.copy_from_slice(&entry.data[off..off + buf.len()]);
                    self.touch(base);
                    self.stats.hits += 1;
                    return Ok(());
                }
            }
            self.remove(base);
            self.stats.stale += 1;
        }
        // Miss: fetch the whole object, cache it with a validated version.
        self.stats.misses += 1;
        let w1 = self.client.read_lock_word(ptr)?;
        let mut data = vec![0u8; ptr.size as usize];
        self.client.read(ptr, 0, &mut data)?;
        let w2 = self.client.read_lock_word(ptr)?;
        if w1 == w2 && !lockword::is_locked(w1) {
            self.insert(base, lockword::version(w1), data.clone());
        }
        buf.copy_from_slice(&data[offset as usize..offset as usize + buf.len()]);
        Ok(())
    }

    fn write(&mut self, ptr: GlobalPtr, offset: u64, data: &[u8]) -> Result<(), GengarError> {
        // Write-through with version bump (lock/unlock inside the client);
        // drop our copy so the next read revalidates.
        self.remove(ptr.addr.raw());
        self.client.write(ptr, offset, data)
    }

    fn cas_u64(
        &mut self,
        ptr: GlobalPtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, GengarError> {
        self.remove(ptr.addr.raw());
        self.client.cas_u64(ptr, offset, expected, new)
    }

    fn servers(&self) -> Vec<u8> {
        self.client.server_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_read() {
        let cluster =
            ClientCache::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
        let mut pool = ClientCache::client(&cluster, CachePolicy::new().capacity(1 << 20)).unwrap();
        let ptr = pool.alloc(0, 128).unwrap();
        pool.write(ptr, 0, &[4u8; 128]).unwrap();
        let mut buf = [0u8; 128];
        pool.read(ptr, 0, &mut buf).unwrap();
        assert_eq!(pool.cache_stats().misses, 1);
        for _ in 0..10 {
            pool.read(ptr, 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 4));
        }
        assert_eq!(pool.cache_stats().hits, 10);
    }

    #[test]
    fn writes_invalidate_and_revalidate() {
        let cluster =
            ClientCache::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
        let mut pool = ClientCache::client(&cluster, CachePolicy::new().capacity(1 << 20)).unwrap();
        let ptr = pool.alloc(0, 64).unwrap();
        pool.write(ptr, 0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        pool.read(ptr, 0, &mut buf).unwrap();
        pool.write(ptr, 0, &[2u8; 64]).unwrap();
        pool.read(ptr, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn cross_client_writes_detected_by_version() {
        let cluster =
            ClientCache::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
        let mut a = ClientCache::client(&cluster, CachePolicy::new().capacity(1 << 20)).unwrap();
        let mut b = ClientCache::client(&cluster, CachePolicy::new().capacity(1 << 20)).unwrap();
        let ptr = a.alloc(0, 64).unwrap();
        a.write(ptr, 0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        b.read(ptr, 0, &mut buf).unwrap(); // b caches version v
        a.write(ptr, 0, &[9u8; 64]).unwrap(); // bumps the version
        b.read(ptr, 0, &mut buf).unwrap(); // validation must fail -> refetch
        assert!(buf.iter().all(|&b| b == 9), "stale client cache: {buf:?}");
        assert!(b.cache_stats().stale >= 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let cluster =
            ClientCache::launch(1, ServerConfig::small(), FabricConfig::instant()).unwrap();
        // Room for two 64-byte objects only.
        let mut pool = ClientCache::client(&cluster, CachePolicy::new().capacity(128)).unwrap();
        let mut buf = [0u8; 64];
        let ptrs: Vec<GlobalPtr> = (0..3).map(|_| pool.alloc(0, 64).unwrap()).collect();
        for p in &ptrs {
            pool.write(*p, 0, &[6u8; 64]).unwrap();
            pool.read(*p, 0, &mut buf).unwrap();
        }
        assert!(pool.cached_bytes() <= 128);
        assert!(pool.cache_stats().evictions >= 1);
    }
}
