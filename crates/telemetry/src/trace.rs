//! Causal tracing: trace/span identifiers, thread-local context
//! propagation, a bounded span buffer that degrades to sampling under
//! pressure, and a flight recorder that dumps recent spans to a Chrome
//! trace JSON file when something goes wrong.
//!
//! Aggregated histograms (see [`crate::metrics`]) answer "how slow are
//! writes on average"; this module answers "where did *this* op spend its
//! time". A client op opens a root span, which installs a `(trace, span)`
//! pair in a thread-local context. Every layer underneath — window
//! submission, doorbell batches, per-WR execution, staging, RPC — opens
//! child spans off that context, so the whole causal chain shares one
//! [`TraceId`]. The context crosses threads explicitly: the RPC protocol
//! carries it in a trace-context field and staged records carry the trace
//! id in their header, so server-side drain spans link back to the
//! originating client op.
//!
//! Overhead policy: with the mode [`TraceMode::Off`] (the default) every
//! instrumentation site reduces to one atomic load. [`TraceMode::Full`]
//! records until the buffer is exhausted. [`TraceMode::Sampled`] records
//! everything while the buffer is under half full, then keeps roots plus
//! one in [`SAMPLE_KEEP`] child spans. Root spans are *never* sampled
//! away: when the main buffer is full they spill into a bounded reserve
//! ring, so the op-level skeleton of a trace always survives.

use std::cell::Cell;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::export::chrome_trace_json;

/// Identifies one causal chain (one client-visible operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null id: "not part of any trace".
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id names a real trace.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: "no parent" (a root span).
    pub const NONE: SpanId = SpanId(0);
}

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; every site costs one atomic load. The default.
    Off,
    /// Record everything while the buffer is under half full, then keep
    /// root spans plus one in [`SAMPLE_KEEP`] child spans.
    Sampled,
    /// Record everything until the buffer is exhausted (roots still
    /// survive exhaustion via the reserve ring).
    Full,
}

/// One completed span. Timestamps are nanoseconds since the owning
/// tracer's epoch; `parent == 0` marks a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The causal chain this span belongs to.
    pub trace: u64,
    /// This span's id (unique per tracer).
    pub span: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Static site name, e.g. `client.write` or `rdma.doorbell`.
    pub name: &'static str,
    /// Site-specific payload (wr_id, attempt number, byte count, …).
    pub detail: u64,
    /// Small per-thread integer (stable within a process run).
    pub tid: u64,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer epoch. Equals `start_ns` for
    /// instant events.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds (0 for instant events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Span capacity of the global tracer's main buffer.
pub const GLOBAL_SPAN_CAPACITY: usize = 65_536;

/// Root spans preserved once the main buffer is full (newest win).
const ROOT_RESERVE: usize = 1_024;

/// In sampled mode under pressure, one in this many child spans is kept.
pub const SAMPLE_KEEP: u64 = 8;

thread_local! {
    /// Active `(trace, span)` context of this thread; (0, 0) when idle.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    /// Small per-thread id for export (0 = unassigned).
    static TID: Cell<u64> = const { Cell::new(0) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn thread_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// The calling thread's active `(trace, parent span)` context.
/// `(TraceId::NONE, SpanId::NONE)` when no span is open.
pub fn current_context() -> (TraceId, SpanId) {
    let (t, s) = CONTEXT.with(Cell::get);
    (TraceId(t), SpanId(s))
}

/// Installs `(trace, span)` as the calling thread's context until the
/// guard drops (restoring whatever was active before). This is how a
/// context crosses threads: the receiving side (RPC server loop, drain
/// thread) adopts the ids it was handed and opens child spans normally.
pub fn adopt(trace: TraceId, span: SpanId) -> ContextGuard {
    let prev = CONTEXT.with(|c| c.replace((trace.0, span.0)));
    ContextGuard { prev }
}

/// Restores the previous thread context on drop (see [`adopt`]).
#[derive(Debug)]
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// The tracing engine: id allocation, the span buffer, and lifecycle
/// counters. One global instance serves the whole process
/// ([`Tracer::global`]); tests build private instances.
pub struct Tracer {
    mode: AtomicU8,
    epoch: Instant,
    next_id: AtomicU64,
    /// Pre-allocated span storage. Slots are claimed by a lock-free
    /// `fetch_add` on `cursor`; the per-slot mutex only serialises the
    /// single writer of a claimed slot against snapshot readers.
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    cursor: AtomicUsize,
    sample_ctr: AtomicU64,
    /// Root spans that arrived after the main buffer filled (newest win).
    root_reserve: Mutex<VecDeque<SpanRecord>>,
    started: AtomicU64,
    ended: AtomicU64,
    dropped: AtomicU64,
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("mode", &self.mode())
            .field("capacity", &self.slots.len())
            .field("used", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

impl Tracer {
    /// A tracer with a `capacity`-span main buffer, mode [`TraceMode::Off`].
    pub fn with_capacity(capacity: usize) -> Arc<Tracer> {
        let slots = (0..capacity.max(1))
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Tracer {
            mode: AtomicU8::new(0),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            slots,
            cursor: AtomicUsize::new(0),
            sample_ctr: AtomicU64::new(0),
            root_reserve: Mutex::new(VecDeque::new()),
            started: AtomicU64::new(0),
            ended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            recorder: OnceLock::new(),
        })
    }

    /// The process-wide tracer (off until someone calls
    /// [`Tracer::set_mode`]). Its completed spans also feed the global
    /// [`FlightRecorder`] when that is armed.
    pub fn global() -> &'static Arc<Tracer> {
        static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let t = Tracer::with_capacity(GLOBAL_SPAN_CAPACITY);
            let _ = t.recorder.set(Arc::clone(FlightRecorder::global()));
            t
        })
    }

    /// Feeds this tracer's completed spans to `recorder` (set-once).
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// Current recording mode.
    pub fn mode(&self) -> TraceMode {
        match self.mode.load(Ordering::Relaxed) {
            1 => TraceMode::Sampled,
            2 => TraceMode::Full,
            _ => TraceMode::Off,
        }
    }

    /// Switches the recording mode.
    pub fn set_mode(&self, mode: TraceMode) {
        let v = match mode {
            TraceMode::Off => 0,
            TraceMode::Sampled => 1,
            TraceMode::Full => 2,
        };
        self.mode.store(v, Ordering::Relaxed);
    }

    /// Whether any recording is active (one atomic load — the hot-path
    /// guard every instrumentation site starts with).
    pub fn enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != 0
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a fresh trace id without opening a span (for callers that
    /// hand the id to [`Tracer::root_span_in`] later, e.g. a batch
    /// builder that wants the id before submission).
    pub fn new_trace(&self) -> TraceId {
        TraceId(self.next_id())
    }

    /// Opens a root span: a fresh trace whose context is installed on this
    /// thread until the span drops.
    pub fn root_span(self: &Arc<Self>, name: &'static str) -> TraceSpan {
        if !self.enabled() {
            return TraceSpan::disabled();
        }
        let trace = self.next_id();
        self.start_span(name, trace, 0, true)
    }

    /// Opens a root span inside the existing trace `trace` (parentless,
    /// but causally linked by the shared trace id — used by the far side
    /// of an async handoff such as the server's NVM drain). Disabled when
    /// `trace` is [`TraceId::NONE`].
    pub fn root_span_in(self: &Arc<Self>, name: &'static str, trace: TraceId) -> TraceSpan {
        if !self.enabled() || !trace.is_some() {
            return TraceSpan::disabled();
        }
        self.start_span(name, trace.0, 0, true)
    }

    /// Opens a child span of the calling thread's current context.
    /// Disabled when tracing is off or no trace is active.
    pub fn span(self: &Arc<Self>, name: &'static str) -> TraceSpan {
        if !self.enabled() {
            return TraceSpan::disabled();
        }
        let (trace, parent) = CONTEXT.with(Cell::get);
        if trace == 0 {
            return TraceSpan::disabled();
        }
        self.start_span(name, trace, parent, false)
    }

    /// Whether a finest-grain child is worth starting right now: Sampled
    /// mode thins per-WR spans and events at the *source* once the buffer
    /// passes half occupancy, skipping even the timestamp cost (the
    /// commit-time child lottery would discard most of them anyway).
    fn fine_enabled(&self) -> bool {
        match self.mode() {
            TraceMode::Off => false,
            TraceMode::Full => true,
            TraceMode::Sampled => self.cursor.load(Ordering::Relaxed) < self.slots.len() / 2,
        }
    }

    /// Opens a finest-grain child span (per-WR granularity). Identical to
    /// [`Tracer::span`] except that Sampled mode stops creating these
    /// once the buffer is half full — the cheap end of the sampling
    /// policy, keeping hot-path overhead flat under sustained load.
    pub fn fine_span(self: &Arc<Self>, name: &'static str) -> TraceSpan {
        if !self.fine_enabled() {
            return TraceSpan::disabled();
        }
        self.span(name)
    }

    /// Records a finest-grain instant event; thinned at the source like
    /// [`Tracer::fine_span`].
    pub fn fine_event(self: &Arc<Self>, name: &'static str, detail: u64) {
        if self.fine_enabled() {
            self.event(name, detail);
        }
    }

    /// Records an instant event (zero-duration span) under the current
    /// context. No-op when tracing is off or no trace is active.
    pub fn event(self: &Arc<Self>, name: &'static str, detail: u64) {
        if !self.enabled() {
            return;
        }
        let (trace, parent) = CONTEXT.with(Cell::get);
        if trace == 0 {
            return;
        }
        self.started.fetch_add(1, Ordering::Relaxed);
        let now = self.now_ns();
        let rec = SpanRecord {
            trace,
            span: self.next_id(),
            parent,
            name,
            detail,
            tid: thread_tid(),
            start_ns: now,
            end_ns: now,
        };
        self.commit(rec, false);
    }

    fn start_span(
        self: &Arc<Self>,
        name: &'static str,
        trace: u64,
        parent: u64,
        root: bool,
    ) -> TraceSpan {
        self.started.fetch_add(1, Ordering::Relaxed);
        let span = self.next_id();
        let prev = CONTEXT.with(|c| c.replace((trace, span)));
        TraceSpan {
            state: Some(SpanState {
                tracer: Arc::clone(self),
                rec: SpanRecord {
                    trace,
                    span,
                    parent,
                    name,
                    detail: 0,
                    tid: thread_tid(),
                    start_ns: self.now_ns(),
                    end_ns: 0,
                },
                root,
                prev,
            }),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Stores one completed span: main buffer first, the root reserve when
    /// that is full, the drop counter otherwise. Sampling (see
    /// [`TraceMode::Sampled`]) kicks in once the buffer is half full.
    fn commit(&self, rec: SpanRecord, root: bool) {
        if let Some(r) = self.recorder.get() {
            r.observe(&rec);
        }
        let cap = self.slots.len();
        if !root
            && self.mode() == TraceMode::Sampled
            && self.cursor.load(Ordering::Relaxed) >= cap / 2
            && !self
                .sample_ctr
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(SAMPLE_KEEP)
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        if idx < cap {
            *self.slots[idx].lock().unwrap() = Some(rec);
            self.ended.fetch_add(1, Ordering::Relaxed);
        } else if root {
            // The op-level skeleton must survive buffer exhaustion: roots
            // go to a bounded reserve where the newest win.
            let mut reserve = self.root_reserve.lock().unwrap();
            if reserve.len() >= ROOT_RESERVE {
                reserve.pop_front();
            }
            reserve.push_back(rec);
            self.ended.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies out every stored span (main buffer order, then preserved
    /// roots). Open spans are absent until they drop.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let used = self.cursor.load(Ordering::Relaxed).min(self.slots.len());
        let mut out = Vec::with_capacity(used);
        for slot in &self.slots[..used] {
            if let Some(rec) = slot.lock().unwrap().as_ref() {
                out.push(rec.clone());
            }
        }
        out.extend(self.root_reserve.lock().unwrap().iter().cloned());
        out
    }

    /// Lifecycle counters `(started, ended, dropped)`. Every started span
    /// is eventually counted ended (stored) or dropped (discarded), so
    /// after all spans close, `started == ended + dropped`.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.started.load(Ordering::Relaxed),
            self.ended.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    /// Empties the buffer and zeroes the lifecycle counters. Spans still
    /// open keep working; they commit into the cleared buffer.
    pub fn clear(&self) {
        let used = self.cursor.load(Ordering::Relaxed).min(self.slots.len());
        for slot in &self.slots[..used] {
            *slot.lock().unwrap() = None;
        }
        self.root_reserve.lock().unwrap().clear();
        self.cursor.store(0, Ordering::Relaxed);
        self.sample_ctr.store(0, Ordering::Relaxed);
        self.started.store(0, Ordering::Relaxed);
        self.ended.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

struct SpanState {
    tracer: Arc<Tracer>,
    rec: SpanRecord,
    root: bool,
    prev: (u64, u64),
}

/// An open span (RAII): installs its `(trace, span)` pair as the thread
/// context on creation, and on drop restores the previous context and
/// commits the record. Not `Send`: the context save/restore is
/// thread-local, so a span must drop on the thread that opened it.
pub struct TraceSpan {
    state: Option<SpanState>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl std::fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            Some(s) => f
                .debug_struct("TraceSpan")
                .field("trace", &s.rec.trace)
                .field("span", &s.rec.span)
                .field("name", &s.rec.name)
                .finish(),
            None => f.write_str("TraceSpan(disabled)"),
        }
    }
}

impl TraceSpan {
    /// A span that records nothing and leaves the context untouched.
    pub fn disabled() -> TraceSpan {
        TraceSpan {
            state: None,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Whether this span will produce a record.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// The trace this span belongs to, if recording.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.state.as_ref().map(|s| TraceId(s.rec.trace))
    }

    /// This span's id, if recording.
    pub fn span_id(&self) -> Option<SpanId> {
        self.state.as_ref().map(|s| SpanId(s.rec.span))
    }

    /// Attaches a site-specific detail value (wr_id, attempt, bytes, …).
    pub fn set_detail(&mut self, detail: u64) {
        if let Some(s) = self.state.as_mut() {
            s.rec.detail = detail;
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(mut s) = self.state.take() {
            CONTEXT.with(|c| c.set(s.prev));
            s.rec.end_ns = s.tracer.now_ns();
            s.tracer.commit(s.rec, s.root);
        }
    }
}

/// Flight recorder: a bounded ring of recently completed spans plus a
/// one-shot dump latch. While armed it shadows every span the attached
/// tracer commits; [`FlightRecorder::trigger`] (called when the fault
/// plane injects an error/drop, a retry escalates to reconnect, or a
/// chaos assertion fails) dumps the ring as Chrome trace JSON and
/// disarms, so a storm of faults produces one dump, not thousands.
/// Re-arm to capture the next incident.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<SpanRecord>>,
    cap: usize,
    armed: AtomicBool,
    out_dir: Mutex<PathBuf>,
    last_dump: Mutex<Option<PathBuf>>,
    dump_seq: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("armed", &self.is_armed())
            .field("dumps", &self.dumps())
            .finish()
    }
}

/// Spans retained by the flight-recorder ring.
const FLIGHT_CAPACITY: usize = 4_096;

impl FlightRecorder {
    /// A recorder retaining up to `capacity` spans, disarmed, dumping to
    /// the system temp directory.
    pub fn with_capacity(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            ring: Mutex::new(VecDeque::new()),
            cap: capacity.max(1),
            armed: AtomicBool::new(false),
            out_dir: Mutex::new(std::env::temp_dir()),
            last_dump: Mutex::new(None),
            dump_seq: AtomicU64::new(0),
        })
    }

    /// The process-wide recorder, fed by [`Tracer::global`].
    pub fn global() -> &'static Arc<FlightRecorder> {
        static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::with_capacity(FLIGHT_CAPACITY))
    }

    /// Arms capture and the dump latch.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Whether the recorder is capturing (and will dump on trigger).
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Directs future dumps into `dir`.
    pub fn set_out_dir(&self, dir: PathBuf) {
        *self.out_dir.lock().unwrap() = dir;
    }

    /// Shadows one completed span (no-op while disarmed).
    pub fn observe(&self, rec: &SpanRecord) {
        if !self.is_armed() {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(rec.clone());
    }

    /// Fires the dump latch: if armed, writes the ring as Chrome trace
    /// JSON (`gengar-flight-<pid>-<seq>-<reason>.json` in the output
    /// directory), disarms, and returns the path. Returns `None` when
    /// disarmed (already fired, or never armed) or when the write fails.
    pub fn trigger(&self, reason: &str) -> Option<PathBuf> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        if !self.armed.swap(false, Ordering::AcqRel) {
            return None;
        }
        let spans: Vec<SpanRecord> = self.ring.lock().unwrap().iter().cloned().collect();
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = self.out_dir.lock().unwrap().join(format!(
            "gengar-flight-{}-{}-{}.json",
            std::process::id(),
            seq,
            slug
        ));
        match std::fs::write(&path, chrome_trace_json(&spans)) {
            Ok(()) => {
                *self.last_dump.lock().unwrap() = Some(path.clone());
                Some(path)
            }
            Err(e) => {
                eprintln!("flight recorder: dump to {} failed: {e}", path.display());
                None
            }
        }
    }

    /// The most recent dump file, if any.
    pub fn last_dump(&self) -> Option<PathBuf> {
        self.last_dump.lock().unwrap().clone()
    }

    /// Dumps taken so far.
    pub fn dumps(&self) -> u64 {
        self.dump_seq.load(Ordering::Relaxed)
    }

    /// A human-readable summary of the last `n` captured spans (for test
    /// failure output).
    pub fn summary(&self, n: usize) -> String {
        let ring = self.ring.lock().unwrap();
        let skip = ring.len().saturating_sub(n);
        let mut out = format!(
            "flight recorder: last {} of {} spans:\n",
            ring.len() - skip,
            ring.len()
        );
        for rec in ring.iter().skip(skip) {
            out.push_str(&format!(
                "  {:<24} trace={} span={} parent={} detail={} dur={}ns\n",
                rec.name,
                rec.trace,
                rec.span,
                rec.parent,
                rec.detail,
                rec.duration_ns()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn on(mode: TraceMode) -> Arc<Tracer> {
        let t = Tracer::with_capacity(256);
        t.set_mode(mode);
        t
    }

    #[test]
    fn off_mode_records_nothing() {
        let t = Tracer::with_capacity(16);
        let root = t.root_span("client.write");
        assert!(!root.is_recording());
        drop(root);
        t.event("x", 1);
        assert_eq!(t.counts(), (0, 0, 0));
        assert!(t.snapshot().is_empty());
        assert_eq!(current_context(), (TraceId::NONE, SpanId::NONE));
    }

    #[test]
    fn nested_spans_share_trace_and_link_parents() {
        let t = on(TraceMode::Full);
        let trace;
        {
            let root = t.root_span("client.write");
            trace = root.trace_id().unwrap();
            {
                let child = t.span("rdma.doorbell");
                assert_eq!(child.trace_id(), Some(trace));
                let _grand = t.span("rdma.wr");
                t.event("fault.delay", 7);
            }
            let _sibling = t.span("proxy.stage");
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 5);
        assert!(spans.iter().all(|s| s.trace == trace.0));
        let by_name: HashMap<&str, &SpanRecord> = spans.iter().map(|s| (s.name, s)).collect();
        let root = by_name["client.write"];
        assert_eq!(root.parent, 0);
        assert_eq!(by_name["rdma.doorbell"].parent, root.span);
        assert_eq!(by_name["rdma.wr"].parent, by_name["rdma.doorbell"].span);
        assert_eq!(by_name["fault.delay"].parent, by_name["rdma.wr"].span);
        assert_eq!(by_name["proxy.stage"].parent, root.span);
        // Context fully restored.
        assert_eq!(current_context(), (TraceId::NONE, SpanId::NONE));
    }

    #[test]
    fn parent_links_are_acyclic_and_complete() {
        let t = on(TraceMode::Full);
        for _ in 0..8 {
            let _root = t.root_span("op");
            let _a = t.span("a");
            let _b = t.span("b");
            t.event("e", 0);
        }
        let spans = t.snapshot();
        let ids: HashSet<(u64, u64)> = spans.iter().map(|s| (s.trace, s.span)).collect();
        let parents: HashMap<(u64, u64), u64> = spans
            .iter()
            .map(|s| ((s.trace, s.span), s.parent))
            .collect();
        for s in &spans {
            // Complete: every non-root parent exists in the same trace.
            if s.parent != 0 {
                assert!(ids.contains(&(s.trace, s.parent)), "orphan {s:?}");
            }
            // Acyclic: walking up terminates without revisiting.
            let mut seen = HashSet::new();
            let mut cur = s.span;
            while cur != 0 {
                assert!(seen.insert(cur), "cycle at span {cur}");
                cur = parents.get(&(s.trace, cur)).copied().unwrap_or(0);
            }
        }
    }

    #[test]
    fn full_buffer_never_loses_the_root_span() {
        let t = Tracer::with_capacity(8);
        t.set_mode(TraceMode::Full);
        let root_trace;
        {
            let root = t.root_span("client.write");
            root_trace = root.trace_id().unwrap();
            // Overflow the 8-slot buffer with child spans.
            for _ in 0..64 {
                drop(t.span("child"));
            }
        }
        let spans = t.snapshot();
        let root = spans
            .iter()
            .find(|s| s.name == "client.write")
            .expect("root survived full buffer");
        assert_eq!(root.trace, root_trace.0);
        let (started, ended, dropped) = t.counts();
        assert_eq!(started, 65);
        assert_eq!(started, ended + dropped);
        assert!(dropped > 0, "overflow must have dropped children");
    }

    #[test]
    fn sampled_mode_degrades_children_keeps_roots() {
        let t = Tracer::with_capacity(64);
        t.set_mode(TraceMode::Sampled);
        for _ in 0..64 {
            let _root = t.root_span("op");
            for _ in 0..8 {
                drop(t.span("child"));
            }
        }
        let spans = t.snapshot();
        let roots = spans.iter().filter(|s| s.name == "op").count();
        // Past half-occupancy only 1 in SAMPLE_KEEP children commit, but
        // every root that fit the buffer or the reserve is present.
        let (started, ended, dropped) = t.counts();
        assert_eq!(started, 64 * 9);
        assert_eq!(started, ended + dropped);
        assert!(dropped > 0, "sampling must have dropped children");
        assert_eq!(roots, 64, "no root may be sampled away");
    }

    #[test]
    fn eight_thread_conservation() {
        let t = Tracer::with_capacity(512);
        t.set_mode(TraceMode::Sampled);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let _root = t.root_span("op");
                        let _child = t.span("child");
                        t.event("e", 0);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let (started, ended, dropped) = t.counts();
        assert_eq!(started, 8 * 500 * 3);
        assert_eq!(started, ended + dropped, "span conservation violated");
    }

    #[test]
    fn adopt_restores_previous_context() {
        let t = on(TraceMode::Full);
        let root = t.root_span("op");
        let (trace, span) = (root.trace_id().unwrap(), root.span_id().unwrap());
        {
            let _g = adopt(TraceId(999), SpanId(998));
            assert_eq!(current_context(), (TraceId(999), SpanId(998)));
        }
        assert_eq!(current_context(), (trace, span));
    }

    #[test]
    fn flight_recorder_dumps_once_per_arm() {
        let t = Tracer::with_capacity(64);
        t.set_mode(TraceMode::Full);
        let rec = FlightRecorder::with_capacity(16);
        t.attach_recorder(Arc::clone(&rec));
        let dir = std::env::temp_dir();
        rec.set_out_dir(dir);

        // Disarmed: nothing captured, trigger is a no-op.
        drop(t.root_span("before"));
        assert!(rec.trigger("fault").is_none());

        rec.arm();
        {
            let _root = t.root_span("op");
            drop(t.span("child"));
        }
        let path = rec.trigger("fault").expect("armed trigger dumps");
        assert!(path.exists());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"op\""));
        assert!(!body.contains("\"before\""), "captures only while armed");
        assert_eq!(rec.last_dump(), Some(path.clone()));
        assert_eq!(rec.dumps(), 1);
        // Latched: a second trigger without re-arming is silent.
        assert!(rec.trigger("fault").is_none());
        assert!(rec.summary(8).contains("op"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn clear_resets_buffer_and_counters() {
        let t = on(TraceMode::Full);
        drop(t.root_span("op"));
        assert_eq!(t.snapshot().len(), 1);
        t.clear();
        assert!(t.snapshot().is_empty());
        assert_eq!(t.counts(), (0, 0, 0));
    }
}
