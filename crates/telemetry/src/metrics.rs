//! Lock-free metric primitives: counters, gauges, and a log-scale atomic
//! latency histogram with mergeable snapshots.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power-of-two octave; matches the benchmark histogram in
/// `gengar-workloads` so the two report comparable percentiles (~3 %
/// resolution).
pub const SUB_BUCKETS: usize = 32;
/// Octaves covered: 1 ns .. ~1099 s.
pub const OCTAVES: usize = 40;
/// Total bucket count of a [`LatencyHistogram`].
pub const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (between harness experiments).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that moves up and down (queue depth, ring occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records `v` if it exceeds the current value (high-watermark use).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A fixed-size log-bucketed latency histogram with atomic buckets.
///
/// `record_ns` is wait-free (a handful of relaxed RMWs); `snapshot` reads
/// the buckets without stopping writers, so a snapshot taken concurrently
/// with recording is approximate — each sample is either in or out, never
/// torn across fields in a way that breaks `count >= sum(buckets)`
/// invariants by more than in-flight samples.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("max_ns", &self.max_ns.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("BUCKETS-sized vec");
        LatencyHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn index(ns: u64) -> usize {
        let ns = ns.max(1);
        let octave = (63 - ns.leading_zeros()) as usize;
        let base = 1u64 << octave;
        let sub = ((ns - base) as u128 * SUB_BUCKETS as u128 / base as u128) as usize;
        (octave * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)).min(BUCKETS - 1)
    }

    pub(crate) fn bucket_value(idx: usize) -> u64 {
        let octave = idx / SUB_BUCKETS;
        let sub = idx % SUB_BUCKETS;
        let base = 1u64 << octave;
        base + (base as u128 * sub as u128 / SUB_BUCKETS as u128) as u64
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns.max(1), Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one sample as a [`Duration`].
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Captures a point-in-time copy for percentile extraction and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed) as u128,
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Resets all buckets and aggregates to empty.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// An owned, mergeable copy of a [`LatencyHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u128,
    /// Smallest sample (clamped to >= 1; `u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Per-bucket sample counts (`BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / self.count as u128) as u64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Value at percentile `p` (0.0–100.0), in nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LatencyHistogram::bucket_value(idx);
            }
        }
        self.max_ns
    }

    /// Median.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 90th percentile.
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(90.0)
    }

    /// 99th percentile.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// 99.9th percentile.
    pub fn p999_ns(&self) -> u64 {
        self.percentile_ns(99.9)
    }

    /// Merges `other` into `self`. Merging is associative and commutative,
    /// with [`HistogramSnapshot::empty`] as identity, so shards recorded on
    /// different threads/nodes can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-5);
        assert_eq!(g.get(), -5);
        g.record_max(2);
        assert_eq!(g.get(), 2);
        g.record_max(-7);
        assert_eq!(g.get(), 2);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_percentiles_close_to_exact() {
        let h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let p50 = s.p50_ns();
        assert!((4700..=5300).contains(&p50), "p50 = {p50}");
        let p99 = s.p99_ns();
        assert!((9500..=10_400).contains(&p99), "p99 = {p99}");
        let mean = s.mean_ns();
        assert!((4900..=5100).contains(&mean), "mean = {mean}");
        assert_eq!(s.min_ns(), 1);
        assert_eq!(s.max_ns(), 10_000);
    }

    #[test]
    fn histogram_reset_empties() {
        let h = LatencyHistogram::new();
        h.record_ns(5);
        h.reset();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.min_ns(), 0);
        assert_eq!(s.p99_ns(), 0);
    }

    #[test]
    fn snapshot_merge_combines_populations() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..100 {
            a.record_ns(100);
            b.record_ns(10_000);
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 200);
        assert!(sa.p50_ns() <= 110);
        assert!(sa.p99_ns() >= 9_000);
        assert_eq!(sa.min_ns(), 100);
        assert_eq!(sa.max_ns(), 10_000);
    }

    #[test]
    fn zero_sample_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.buckets[0], 1);
    }

    #[test]
    fn huge_sample_clamps_to_last_bucket() {
        let h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn concurrent_recording_conserves_count() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(t * 1_000 + i % 997 + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }
}
