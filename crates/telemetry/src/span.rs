//! RAII timing spans and the ring-buffer event trace.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::LatencyHistogram;

/// An RAII guard that records its lifetime into a histogram on drop.
///
/// ```
/// use gengar_telemetry::Registry;
///
/// let registry = Registry::new();
/// {
///     let _span = registry.span("proxy", "drain");
///     // ... timed work ...
/// }
/// assert_eq!(registry.snapshot().histogram("proxy.drain_ns").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    target: Option<Arc<LatencyHistogram>>,
}

impl Span {
    /// Starts a span against the global registry's `component.{op}_ns`
    /// histogram. Prefer a cached
    /// [`HistogramHandle::span`](crate::HistogramHandle::span) on hot
    /// paths; this form resolves the metric by name each call.
    pub fn enter(component: &str, op: &str) -> Span {
        crate::Registry::global().span(component, op)
    }

    /// Starts a span recording into `target` on drop.
    pub fn recording(target: Arc<LatencyHistogram>) -> Span {
        Span {
            start: Some(Instant::now()),
            target: Some(target),
        }
    }

    /// A span that records nothing and never reads the clock.
    pub fn disabled() -> Span {
        Span {
            start: None,
            target: None,
        }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.target.is_some()
    }

    /// Drops the span without recording.
    pub fn cancel(mut self) {
        self.target = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(target)) = (self.start, self.target.take()) {
            target.record(start.elapsed());
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the owning registry was created.
    pub ts_ns: u64,
    /// Reporting component (e.g. `proxy`).
    pub component: String,
    /// Operation name (e.g. `drain`).
    pub op: String,
    /// Operation-specific payload (slot index, sequence number, ...).
    pub detail: u64,
}

/// A bounded ring buffer of [`Event`]s keeping the newest entries. Used to
/// reconstruct ordering in paths like the proxy drain loop, where a
/// breakpoint would perturb the timing under investigation.
#[derive(Debug)]
pub struct EventTrace {
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
}

impl EventTrace {
    /// Creates a trace keeping the newest `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventTrace capacity must be non-zero");
        EventTrace {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Empties the buffer.
    pub fn clear(&self) {
        self.ring.lock().expect("trace ring lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(LatencyHistogram::new());
        {
            let _s = Span::recording(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let s = Span::disabled();
        assert!(!s.is_recording());
        drop(s);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let h = Arc::new(LatencyHistogram::new());
        let s = Span::recording(Arc::clone(&h));
        assert!(s.is_recording());
        s.cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let trace = EventTrace::new(3);
        for i in 0..5 {
            trace.push(Event {
                ts_ns: i,
                component: "t".into(),
                op: "op".into(),
                detail: i,
            });
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.detail).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        trace.clear();
        assert!(trace.events().is_empty());
    }
}
