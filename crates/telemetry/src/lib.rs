//! Metrics and tracing for the Gengar workspace.
//!
//! The paper's claims are quantitative — percentile latencies, per-verb op
//! counts, cache hit rates — so every layer of the stack reports into this
//! crate:
//!
//! - [`Counter`], [`Gauge`], and [`LatencyHistogram`] are lock-free
//!   atomics-based primitives safe to hammer from any number of threads.
//! - [`Registry`] names metrics by `(component, metric)` and hands out
//!   shared handles; [`Registry::global`] is the process-wide instance the
//!   bench harness snapshots.
//! - [`Span`] is an RAII guard that records wall-time into a histogram on
//!   drop, with an optional ring-buffer event trace for ordering bugs.
//! - [`TelemetryConfig`] / [`Telemetry`] thread an on/off switch through
//!   `ServerConfig`/`ClientConfig`/`FabricConfig`; when disabled every
//!   handle is a `None` and instrumentation short-circuits to no-ops.
//! - [`trace`] adds *causal* tracing on top of the aggregates: per-op
//!   [`TraceId`]s propagated client → fabric → server, a [`Tracer`] span
//!   buffer with Chrome/Perfetto export, and a [`FlightRecorder`] that
//!   dumps recent spans when a fault fires.
//!
//! Naming scheme: metrics are keyed `component.metric`, where `component`
//! is the layer (`rdma`, `proxy`, `cache`, `client`, `device`) and
//! `metric` is a snake_case noun, suffixed `_ns` for histograms of
//! nanoseconds (e.g. `rdma.read_ops`, `client.read_ns`). See
//! DESIGN.md § Observability.

pub mod export;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;
pub mod window;

pub use export::{chrome_trace_json, critical_path_table, fmt_ns, json_escape, prometheus_text};
pub use metrics::{Counter, Gauge, HistogramSnapshot, LatencyHistogram};
pub use registry::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricSnapshot, Registry, RegistrySnapshot,
};
pub use span::{Event, EventTrace, Span};
pub use trace::{
    adopt, current_context, ContextGuard, FlightRecorder, SpanId, SpanRecord, TraceId, TraceMode,
    TraceSpan, Tracer,
};
pub use window::{SamplerThread, Window, WindowEntry, WindowRing, WindowSampler};

use std::sync::Arc;

/// Whether telemetry is collected, threaded through the stack's configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Collect metrics when true; all instrumentation no-ops when false.
    pub enabled: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: true }
    }
}

impl TelemetryConfig {
    /// Telemetry on (the default).
    pub fn enabled() -> Self {
        TelemetryConfig { enabled: true }
    }

    /// Telemetry off: instrumented code paths reduce to an `Option` check.
    pub fn disabled() -> Self {
        TelemetryConfig { enabled: false }
    }

    /// A handle bound to the global registry (or a no-op handle when
    /// disabled).
    pub fn handle(self) -> Telemetry {
        if self.enabled {
            Telemetry::on_global()
        } else {
            Telemetry::off()
        }
    }
}

/// A cheap cloneable capability to record telemetry. Holds the target
/// registry when enabled, nothing when disabled — so disabled-mode
/// instrumentation costs one `Option` discriminant test.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A handle recording into the process-wide [`Registry::global`].
    pub fn on_global() -> Self {
        Telemetry {
            registry: Some(Registry::global()),
        }
    }

    /// A handle recording into `registry` (for tests that want isolation).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Telemetry {
            registry: Some(registry),
        }
    }

    /// A disabled handle; every operation derived from it is a no-op.
    pub fn off() -> Self {
        Telemetry { registry: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The registry behind this handle, if enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// A counter handle for `component.metric`. Resolve once and cache in
    /// the instrumented struct; the handle itself is lock-free.
    pub fn counter(&self, component: &str, metric: &str) -> CounterHandle {
        CounterHandle::new(self.registry.as_ref().map(|r| r.counter(component, metric)))
    }

    /// A gauge handle for `component.metric`.
    pub fn gauge(&self, component: &str, metric: &str) -> GaugeHandle {
        GaugeHandle::new(self.registry.as_ref().map(|r| r.gauge(component, metric)))
    }

    /// A histogram handle for `component.metric`.
    pub fn histogram(&self, component: &str, metric: &str) -> HistogramHandle {
        HistogramHandle::new(
            self.registry
                .as_ref()
                .map(|r| r.histogram(component, metric)),
        )
    }

    /// Starts a span recording wall-time into `component.{op}_ns` on drop.
    /// Prefer caching a [`HistogramHandle`] plus [`HistogramHandle::span`]
    /// on hot paths; this form resolves the metric by name each call.
    pub fn span(&self, component: &str, op: &str) -> Span {
        match &self.registry {
            Some(r) => Span::recording(r.histogram(component, &format!("{op}_ns"))),
            None => Span::disabled(),
        }
    }

    /// Appends an event to the registry's ring-buffer trace, if tracing
    /// was enabled via [`Registry::enable_trace`].
    pub fn trace(&self, component: &str, op: &str, detail: u64) {
        if let Some(r) = &self.registry {
            r.trace_event(component, op, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_enabled() {
        assert!(TelemetryConfig::default().enabled);
        assert!(TelemetryConfig::enabled().enabled);
        assert!(!TelemetryConfig::disabled().enabled);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = TelemetryConfig::disabled().handle();
        assert!(!t.is_enabled());
        let c = t.counter("x", "ops");
        c.inc();
        c.add(10);
        let g = t.gauge("x", "depth");
        g.set(5);
        let h = t.histogram("x", "lat_ns");
        h.record_ns(100);
        drop(t.span("x", "op"));
        t.trace("x", "op", 1);
        // Nothing should have reached any registry; the handle has none.
        assert!(t.registry().is_none());
    }

    #[test]
    fn enabled_handle_reaches_registry() {
        let reg = Arc::new(Registry::new());
        let t = Telemetry::with_registry(Arc::clone(&reg));
        t.counter("unit", "ops").add(3);
        t.gauge("unit", "depth").set(-2);
        t.histogram("unit", "lat_ns").record_ns(1000);
        drop(t.span("unit", "op"));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("unit.ops"), Some(3));
        assert_eq!(snap.gauge("unit.depth"), Some(-2));
        assert_eq!(snap.histogram("unit.lat_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("unit.op_ns").unwrap().count, 1);
    }
}
