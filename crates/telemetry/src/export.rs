//! Snapshot export: a hand-rolled JSON serializer (no serde_json in the
//! dependency set), a human-readable `Display` table, and the Chrome
//! trace-event / Perfetto exporter for [`crate::trace`] spans.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricSnapshot, RegistrySnapshot};
use crate::trace::SpanRecord;

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds with an adaptive unit for human output.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{},\"min_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.mean_ns(),
        h.min_ns(),
        h.p50_ns(),
        h.p90_ns(),
        h.p99_ns(),
        h.p999_ns(),
        h.max_ns()
    )
}

impl RegistrySnapshot {
    /// Serializes the snapshot as a compact JSON object: counters and
    /// gauges as numbers, histograms as objects with count/mean/min,
    /// p50/p90/p99/p999, and max (all nanoseconds). Keys are sorted, so
    /// output is deterministic for a given snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (key, metric) in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&json_escape(key));
            out.push_str("\":");
            match metric {
                MetricSnapshot::Counter(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Gauge(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Histogram(h) => out.push_str(&histogram_json(h)),
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for RegistrySnapshot {
    /// Renders a fixed-width table, one metric per row, histograms
    /// condensed to count/mean/percentiles.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        let width = self
            .entries
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(16);
        for (key, metric) in &self.entries {
            match metric {
                MetricSnapshot::Counter(v) => writeln!(f, "{key:width$}  {v}")?,
                MetricSnapshot::Gauge(v) => writeln!(f, "{key:width$}  {v}")?,
                MetricSnapshot::Histogram(h) => writeln!(
                    f,
                    "{key:width$}  n={} mean={} p50={} p90={} p99={} p999={} max={}",
                    h.count,
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.p50_ns()),
                    fmt_ns(h.p90_ns()),
                    fmt_ns(h.p99_ns()),
                    fmt_ns(h.p999_ns()),
                    fmt_ns(h.max_ns())
                )?,
            }
        }
        Ok(())
    }
}

/// Sanitizes a `component.metric` key into a Prometheus metric name:
/// `gengar_` prefix, dots and any other non-alphanumerics to underscores.
fn prometheus_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 7);
    out.push_str("gengar_");
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format (v0.0.4):
/// counters and gauges as single samples with a `# TYPE` line, histograms
/// as summaries — `{quantile="..."}` samples plus `_sum` and `_count`.
/// Histogram values stay in nanoseconds (the names already carry the `_ns`
/// suffix the registry's naming scheme mandates). Keys arrive sorted, so
/// the exposition is deterministic for a given snapshot.
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (key, metric) in &snap.entries {
        let name = prometheus_name(key);
        match metric {
            MetricSnapshot::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricSnapshot::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            MetricSnapshot::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (q, v) in [
                    ("0.5", h.p50_ns()),
                    ("0.9", h.p90_ns()),
                    ("0.99", h.p99_ns()),
                    ("0.999", h.p999_ns()),
                ] {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                }
                out.push_str(&format!("{name}_sum {}\n", h.sum_ns));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// Serializes completed spans as Chrome trace-event JSON (openable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)). Each span
/// becomes one complete (`"ph":"X"`) event — one per line, so streaming
/// validators can check the schema without a JSON parser — with the
/// causal ids (`trace`/`span`/`parent`) and the site detail in `args`.
/// Timestamps are microseconds since the tracer epoch.
///
/// A span whose parent was sampled away would violate the "every child
/// has a live parent" schema, so orphans are re-parented to 0 (root) at
/// export time: the event keeps its trace id, only the direct link is
/// declared broken.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let live: HashSet<(u64, u64)> = spans.iter().map(|s| (s.trace, s.span)).collect();
    let pid = std::process::id();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for s in spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let parent = if s.parent != 0 && live.contains(&(s.trace, s.parent)) {
            s.parent
        } else {
            0
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"gengar\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"detail\":{}}}}}",
            json_escape(s.name),
            pid,
            s.tid,
            s.start_ns as f64 / 1000.0,
            s.duration_ns() as f64 / 1000.0,
            s.trace,
            s.span,
            parent,
            s.detail
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a per-op-class critical-path table: traces are grouped by the
/// name of their root span (the op class — `client.write`, `client.read`,
/// …) and every span in those traces is attributed to its site name, so
/// the table shows where each op class spends its time relative to the
/// client-visible root duration. Spans past 100% of root (e.g. the async
/// NVM drain) are exactly the latency the proxy hides.
pub fn critical_path_table(spans: &[SpanRecord]) -> String {
    // Root of a trace: the parentless span with the earliest start (a
    // trace can hold several parentless spans — async far-side work such
    // as the server drain — which then show up as attributed rows).
    let mut roots: HashMap<u64, &SpanRecord> = HashMap::new();
    for s in spans.iter().filter(|s| s.parent == 0) {
        roots
            .entry(s.trace)
            .and_modify(|r| {
                if s.start_ns < r.start_ns {
                    *r = s;
                }
            })
            .or_insert(s);
    }
    struct Class {
        traces: u64,
        root_ns: u64,
        sites: BTreeMap<&'static str, (u64, u64)>, // name -> (count, total ns)
    }
    let mut classes: BTreeMap<&'static str, Class> = BTreeMap::new();
    for root in roots.values() {
        let c = classes.entry(root.name).or_insert(Class {
            traces: 0,
            root_ns: 0,
            sites: BTreeMap::new(),
        });
        c.traces += 1;
        c.root_ns += root.duration_ns();
    }
    for s in spans {
        let Some(root) = roots.get(&s.trace) else {
            continue;
        };
        if s.span == root.span {
            continue;
        }
        let c = classes.get_mut(root.name).expect("class exists for root");
        let e = c.sites.entry(s.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.duration_ns();
    }
    if classes.is_empty() {
        return String::from("(no traces recorded)\n");
    }
    let mut out = String::from("critical path per op class (span time vs. root duration):\n");
    for (name, c) in &classes {
        out.push_str(&format!(
            "{name}: {} traces, mean root {}\n",
            c.traces,
            fmt_ns(c.root_ns / c.traces.max(1))
        ));
        let mut rows: Vec<_> = c.sites.iter().collect();
        rows.sort_by_key(|(_, (_, total))| std::cmp::Reverse(*total));
        for (site, (count, total)) in rows {
            let share = if c.root_ns > 0 {
                *total as f64 * 100.0 / c.root_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {site:<24} n={count:<8} total={:<10} mean={:<10} {share:.1}% of root\n",
                fmt_ns(*total),
                fmt_ns(total / (*count).max(1)),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("rdma", "read_ops").add(12);
        r.gauge("proxy", "ring_occupancy").set(-1);
        let h = r.histogram("client", "read_ns");
        for ns in [100, 200, 300, 400_000] {
            h.record_ns(ns);
        }
        r
    }

    #[test]
    fn json_is_deterministic_and_parsable_shape() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rdma.read_ops\":12"));
        assert!(json.contains("\"proxy.ring_occupancy\":-1"));
        assert!(json.contains("\"client.read_ns\":{\"count\":4"));
        assert!(json.contains("\"p99_ns\":"));
        assert!(json.contains("\"p999_ns\":"));
        // Balanced braces, no trailing commas.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced: {json}"
        );
        assert!(!json.contains(",}"), "trailing comma: {json}");
    }

    #[test]
    fn empty_snapshot_serializes() {
        assert_eq!(Registry::new().snapshot().to_json(), "{}");
    }

    #[test]
    fn display_lists_every_metric() {
        let table = sample_registry().snapshot().to_string();
        assert!(table.contains("rdma.read_ops"));
        assert!(table.contains("proxy.ring_occupancy"));
        assert!(table.contains("client.read_ns"));
        assert!(table.contains("p99="));
    }

    #[test]
    fn prometheus_exposition_covers_every_kind() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE gengar_rdma_read_ops counter\ngengar_rdma_read_ops 12\n"));
        assert!(text.contains(
            "# TYPE gengar_proxy_ring_occupancy gauge\ngengar_proxy_ring_occupancy -1\n"
        ));
        assert!(text.contains("# TYPE gengar_client_read_ns summary\n"));
        assert!(text.contains("gengar_client_read_ns{quantile=\"0.99\"} "));
        assert!(text.contains("gengar_client_read_ns_count 4\n"));
        assert!(text.contains("gengar_client_read_ns_sum 400600\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().unwrap().starts_with("gengar_"), "{line}");
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
            assert!(parts.next().is_none(), "{line}");
        }
        assert_eq!(prometheus_text(&Registry::new().snapshot()), "");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    fn span(
        trace: u64,
        id: u64,
        parent: u64,
        name: &'static str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace,
            span: id,
            parent,
            name,
            detail: 0,
            tid: 1,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn chrome_trace_schema_one_event_per_line() {
        let spans = vec![
            span(1, 10, 0, "client.write", 0, 10_000),
            span(1, 11, 10, "rdma.doorbell", 1_000, 5_000),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        let events: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"X\""))
            .collect();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert!(e.contains("\"pid\":"));
            assert!(e.contains("\"tid\":"));
            assert!(e.contains("\"ts\":"));
            assert!(e.contains("\"name\":"));
        }
        assert!(events[1].contains("\"parent\":10"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced: {json}"
        );
    }

    #[test]
    fn chrome_trace_reparents_orphans_to_root() {
        // Parent span 99 was sampled away: the child must not point at a
        // dead id in the export.
        let spans = vec![span(7, 20, 99, "child", 0, 100)];
        let json = chrome_trace_json(&spans);
        assert!(json.contains("\"parent\":0"));
        assert!(!json.contains("\"parent\":99"));
    }

    #[test]
    fn chrome_trace_empty_is_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn critical_path_groups_by_root_class() {
        let spans = vec![
            span(1, 10, 0, "client.write", 0, 10_000),
            span(1, 11, 10, "proxy.stage", 0, 4_000),
            span(1, 12, 0, "server.drain", 11_000, 15_000),
            span(2, 20, 0, "client.read", 0, 2_000),
        ];
        let table = critical_path_table(&spans);
        assert!(table.contains("client.write: 1 traces"));
        assert!(table.contains("client.read: 1 traces"));
        assert!(table.contains("proxy.stage"));
        // The async drain is attributed to the write class (the earliest
        // parentless span wins the root role).
        assert!(table.contains("server.drain"));
        assert!(critical_path_table(&[]).contains("no traces"));
    }
}
