//! Snapshot export: a hand-rolled JSON serializer (no serde_json in the
//! dependency set) and a human-readable `Display` table.

use std::fmt;

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricSnapshot, RegistrySnapshot};

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds with an adaptive unit for human output.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{},\"min_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.mean_ns(),
        h.min_ns(),
        h.p50_ns(),
        h.p90_ns(),
        h.p99_ns(),
        h.p999_ns(),
        h.max_ns()
    )
}

impl RegistrySnapshot {
    /// Serializes the snapshot as a compact JSON object: counters and
    /// gauges as numbers, histograms as objects with count/mean/min,
    /// p50/p90/p99/p999, and max (all nanoseconds). Keys are sorted, so
    /// output is deterministic for a given snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (key, metric) in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&json_escape(key));
            out.push_str("\":");
            match metric {
                MetricSnapshot::Counter(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Gauge(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Histogram(h) => out.push_str(&histogram_json(h)),
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for RegistrySnapshot {
    /// Renders a fixed-width table, one metric per row, histograms
    /// condensed to count/mean/percentiles.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        let width = self
            .entries
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(16);
        for (key, metric) in &self.entries {
            match metric {
                MetricSnapshot::Counter(v) => writeln!(f, "{key:width$}  {v}")?,
                MetricSnapshot::Gauge(v) => writeln!(f, "{key:width$}  {v}")?,
                MetricSnapshot::Histogram(h) => writeln!(
                    f,
                    "{key:width$}  n={} mean={} p50={} p90={} p99={} p999={} max={}",
                    h.count,
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.p50_ns()),
                    fmt_ns(h.p90_ns()),
                    fmt_ns(h.p99_ns()),
                    fmt_ns(h.p999_ns()),
                    fmt_ns(h.max_ns())
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("rdma", "read_ops").add(12);
        r.gauge("proxy", "ring_occupancy").set(-1);
        let h = r.histogram("client", "read_ns");
        for ns in [100, 200, 300, 400_000] {
            h.record_ns(ns);
        }
        r
    }

    #[test]
    fn json_is_deterministic_and_parsable_shape() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rdma.read_ops\":12"));
        assert!(json.contains("\"proxy.ring_occupancy\":-1"));
        assert!(json.contains("\"client.read_ns\":{\"count\":4"));
        assert!(json.contains("\"p99_ns\":"));
        assert!(json.contains("\"p999_ns\":"));
        // Balanced braces, no trailing commas.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced: {json}"
        );
        assert!(!json.contains(",}"), "trailing comma: {json}");
    }

    #[test]
    fn empty_snapshot_serializes() {
        assert_eq!(Registry::new().snapshot().to_json(), "{}");
    }

    #[test]
    fn display_lists_every_metric() {
        let table = sample_registry().snapshot().to_string();
        assert!(table.contains("rdma.read_ops"));
        assert!(table.contains("proxy.ring_occupancy"));
        assert!(table.contains("client.read_ns"));
        assert!(table.contains("p99="));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
