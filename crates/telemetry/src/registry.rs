//! The metric registry: names `(component, metric)` pairs, hands out
//! shared metric handles, and produces ordered snapshots for export.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, HistogramSnapshot, LatencyHistogram};
use crate::span::{Event, EventTrace, Span};

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics keyed `component.metric`.
///
/// Handles returned by [`Registry::counter`] and friends stay valid across
/// [`Registry::reset`]: reset zeroes values in place rather than dropping
/// the metrics, so long-lived instrumented components keep reporting.
#[derive(Debug)]
pub struct Registry {
    metrics: RwLock<HashMap<String, Metric>>,
    trace: Mutex<Option<EventTrace>>,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            metrics: RwLock::new(HashMap::new()),
            trace: Mutex::new(None),
            epoch: Instant::now(),
        }
    }

    /// The process-wide registry that the bench harness snapshots.
    pub fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
    }

    fn key(component: &str, metric: &str) -> String {
        format!("{component}.{metric}")
    }

    fn get_or_insert<T, F, G>(&self, component: &str, metric: &str, extract: F, create: G) -> Arc<T>
    where
        F: Fn(&Metric) -> Option<Arc<T>>,
        G: FnOnce() -> Metric,
    {
        let key = Self::key(component, metric);
        if let Some(existing) = self.metrics.read().expect("registry lock").get(&key) {
            return extract(existing).unwrap_or_else(|| {
                panic!(
                    "telemetry metric '{key}' already registered as a {}",
                    existing.kind()
                )
            });
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        let entry = metrics.entry(key.clone()).or_insert_with(create);
        extract(entry).unwrap_or_else(|| {
            panic!(
                "telemetry metric '{key}' already registered as a {}",
                entry.kind()
            )
        })
    }

    /// The counter named `component.metric`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn counter(&self, component: &str, metric: &str) -> Arc<Counter> {
        self.get_or_insert(
            component,
            metric,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::new())),
        )
    }

    /// The gauge named `component.metric`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn gauge(&self, component: &str, metric: &str) -> Arc<Gauge> {
        self.get_or_insert(
            component,
            metric,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `component.metric`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different metric kind.
    pub fn histogram(&self, component: &str, metric: &str) -> Arc<LatencyHistogram> {
        self.get_or_insert(
            component,
            metric,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Metric::Histogram(Arc::new(LatencyHistogram::new())),
        )
    }

    /// Zeroes every metric in place and clears the event trace. Handles
    /// held by instrumented components remain valid.
    pub fn reset(&self) {
        for metric in self.metrics.read().expect("registry lock").values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
        if let Some(trace) = self.trace.lock().expect("trace lock").as_ref() {
            trace.clear();
        }
    }

    /// Enables the ring-buffer event trace, keeping the newest `capacity`
    /// events. Zero capacity disables tracing.
    pub fn enable_trace(&self, capacity: usize) {
        let mut trace = self.trace.lock().expect("trace lock");
        *trace = if capacity == 0 {
            None
        } else {
            Some(EventTrace::new(capacity))
        };
    }

    /// Appends an event to the trace, if enabled. `detail` is an
    /// operation-specific payload (a slot index, a sequence number, ...).
    pub fn trace_event(&self, component: &str, op: &str, detail: u64) {
        if let Some(trace) = self.trace.lock().expect("trace lock").as_ref() {
            trace.push(Event {
                ts_ns: self.epoch.elapsed().as_nanos() as u64,
                component: component.to_owned(),
                op: op.to_owned(),
                detail,
            });
        }
    }

    /// Returns the traced events, oldest first (empty when disabled).
    pub fn trace_events(&self) -> Vec<Event> {
        self.trace
            .lock()
            .expect("trace lock")
            .as_ref()
            .map(EventTrace::events)
            .unwrap_or_default()
    }

    /// Starts a span recording into the histogram `component.{op}_ns`.
    pub fn span(&self, component: &str, op: &str) -> Span {
        Span::recording(self.histogram(component, &format!("{op}_ns")))
    }

    /// Captures an ordered point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut entries = BTreeMap::new();
        for (key, metric) in self.metrics.read().expect("registry lock").iter() {
            let snap = match metric {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
            };
            entries.insert(key.clone(), snap);
        }
        RegistrySnapshot { entries }
    }
}

/// A point-in-time copy of one metric's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram's full state.
    Histogram(HistogramSnapshot),
}

/// An ordered snapshot of a whole [`Registry`], ready for export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Metric snapshots keyed `component.metric`, sorted by key.
    pub entries: BTreeMap<String, MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The counter value under `key`, if present and a counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.entries.get(key) {
            Some(MetricSnapshot::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value under `key`, if present and a gauge.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        match self.entries.get(key) {
            Some(MetricSnapshot::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram snapshot under `key`, if present and a histogram.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(key) {
            Some(MetricSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// A shared counter, or nothing when telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    pub(crate) fn new(inner: Option<Arc<Counter>>) -> Self {
        CounterHandle(inner)
    }

    /// A permanently disabled handle.
    pub fn off() -> Self {
        CounterHandle(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

/// A shared gauge, or nothing when telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    pub(crate) fn new(inner: Option<Arc<Gauge>>) -> Self {
        GaugeHandle(inner)
    }

    /// A permanently disabled handle.
    pub fn off() -> Self {
        GaugeHandle(None)
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.sub(n);
        }
    }

    /// Records `v` if it exceeds the current value.
    #[inline]
    pub fn record_max(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.record_max(v);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }
}

/// A shared histogram, or nothing when telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<LatencyHistogram>>);

impl HistogramHandle {
    pub(crate) fn new(inner: Option<Arc<LatencyHistogram>>) -> Self {
        HistogramHandle(inner)
    }

    /// A permanently disabled handle.
    pub fn off() -> Self {
        HistogramHandle(None)
    }

    /// Whether recording reaches a histogram.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(h) = &self.0 {
            h.record_ns(ns);
        }
    }

    /// Records one sample as a [`std::time::Duration`].
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        if let Some(h) = &self.0 {
            h.record(d);
        }
    }

    /// Starts a span recording into this histogram on drop. No clock is
    /// read when the handle is disabled.
    #[inline]
    pub fn span(&self) -> Span {
        match &self.0 {
            Some(h) => Span::recording(Arc::clone(h)),
            None => Span::disabled(),
        }
    }

    /// Snapshot of the underlying histogram (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |h| h.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        r.counter("c", "ops").add(1);
        r.counter("c", "ops").add(2);
        assert_eq!(r.snapshot().counter("c.ops"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("c", "x");
        r.gauge("c", "x");
    }

    #[test]
    fn reset_keeps_handles_live() {
        let r = Registry::new();
        let c = r.counter("c", "ops");
        c.add(7);
        r.reset();
        assert_eq!(c.get(), 0);
        c.add(1);
        assert_eq!(r.snapshot().counter("c.ops"), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("b", "depth").set(-3);
        r.counter("a", "ops").add(2);
        r.histogram("c", "lat_ns").record_ns(50);
        let snap = r.snapshot();
        let keys: Vec<_> = snap.entries.keys().cloned().collect();
        assert_eq!(keys, vec!["a.ops", "b.depth", "c.lat_ns"]);
        assert_eq!(snap.counter("a.ops"), Some(2));
        assert_eq!(snap.gauge("b.depth"), Some(-3));
        assert_eq!(snap.histogram("c.lat_ns").unwrap().count, 1);
        // Wrong-kind lookups return None rather than panicking.
        assert_eq!(snap.counter("b.depth"), None);
        assert_eq!(snap.gauge("a.ops"), None);
        assert!(snap.histogram("a.ops").is_none());
    }

    #[test]
    fn trace_ring_keeps_newest() {
        let r = Registry::new();
        r.trace_event("proxy", "drain", 1); // disabled: dropped
        r.enable_trace(2);
        r.trace_event("proxy", "drain", 2);
        r.trace_event("proxy", "drain", 3);
        r.trace_event("proxy", "drain", 4);
        let events = r.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].detail, 3);
        assert_eq!(events[1].detail, 4);
        r.reset();
        assert!(r.trace_events().is_empty());
    }

    #[test]
    fn registry_span_records() {
        let r = Registry::new();
        drop(r.span("client", "read"));
        assert_eq!(r.snapshot().histogram("client.read_ns").unwrap().count, 1);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
