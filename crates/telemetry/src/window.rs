//! Windowed time-series over the cumulative registry.
//!
//! The registry (PR 1) accumulates forever: counters only grow, histograms
//! only fill. That answers "what happened since launch" but not "is the
//! cluster healthy *right now*". This module adds the live view: a
//! [`WindowSampler`] periodically snapshots the registry and subtracts the
//! previous snapshot, producing a [`Window`] of per-metric deltas — counter
//! increments, point-in-time gauge readings, and delta histograms — which it
//! pushes into a fixed-capacity ring.
//!
//! The hot metric-recording path is untouched: samples still land in the
//! same lock-free counters and histograms, and all window arithmetic runs on
//! the sampler's thread against owned snapshots. Readers clone `Arc`s out of
//! the ring (the ring lock is held only for the O(1) clone), so a window
//! handed out is immutable and safe to inspect at leisure.
//!
//! Windows are mergeable: counter deltas and delta histograms add, gauges
//! take the most recent reading, durations sum. Merging `k` consecutive
//! windows yields exactly the delta over the combined span (bucket-wise
//! subtraction is exact), which is what the health plane's multi-window
//! burn-rate math relies on.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::{HistogramSnapshot, LatencyHistogram};
use crate::registry::{MetricSnapshot, Registry, RegistrySnapshot};

/// One metric's contribution to a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowEntry {
    /// Counter increments during the window.
    Counter(u64),
    /// Gauge reading at window close (gauges are levels, not flows).
    Gauge(i64),
    /// Histogram of samples recorded during the window.
    Histogram(HistogramSnapshot),
}

/// An immutable delta over one sampling interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Monotone sequence number (1 for the first window sampled).
    pub seq: u64,
    /// Wall-clock span the deltas cover.
    pub duration: Duration,
    /// Per-metric deltas keyed `component.metric`, sorted by key.
    pub entries: BTreeMap<String, WindowEntry>,
}

impl Window {
    /// An empty window (the merge identity).
    pub fn empty() -> Self {
        Window {
            seq: 0,
            duration: Duration::ZERO,
            entries: BTreeMap::new(),
        }
    }

    /// Counter delta under `key`, if present and a counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.entries.get(key) {
            Some(WindowEntry::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading under `key`, if present and a gauge.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        match self.entries.get(key) {
            Some(WindowEntry::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Delta histogram under `key`, if present and a histogram.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(key) {
            Some(WindowEntry::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Counter delta under `key` as a per-second rate (`None` when the key
    /// is absent or not a counter; a zero-length window reports the raw
    /// delta rather than dividing by zero).
    pub fn rate(&self, key: &str) -> Option<f64> {
        let delta = self.counter(key)?;
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            Some(delta as f64 / secs)
        } else {
            Some(delta as f64)
        }
    }

    /// Percentile of the delta histogram under `key` (`None` when absent).
    pub fn percentile_ns(&self, key: &str, p: f64) -> Option<u64> {
        self.histogram(key).map(|h| h.percentile_ns(p))
    }

    /// Merges `other` into `self`: counters and histograms add, gauges take
    /// the later window's reading, durations sum, `seq` takes the maximum.
    /// Associative and commutative over windows from the same sampler, with
    /// [`Window::empty`] as identity.
    pub fn merge(&mut self, other: &Window) {
        let other_is_later = other.seq >= self.seq;
        for (key, entry) in &other.entries {
            match self.entries.get_mut(key) {
                None => {
                    self.entries.insert(key.clone(), entry.clone());
                }
                Some(mine) => match (mine, entry) {
                    (WindowEntry::Counter(a), WindowEntry::Counter(b)) => *a += b,
                    (WindowEntry::Histogram(a), WindowEntry::Histogram(b)) => a.merge(b),
                    (WindowEntry::Gauge(a), WindowEntry::Gauge(b)) => {
                        if other_is_later {
                            *a = *b;
                        }
                    }
                    // A metric changed kind between windows (registry was
                    // rebuilt): keep the later reading wholesale.
                    (mine, entry) => {
                        if other_is_later {
                            *mine = entry.clone();
                        }
                    }
                },
            }
        }
        self.duration += other.duration;
        self.seq = self.seq.max(other.seq);
    }
}

/// Counter delta, aware of registry resets: a cumulative value that moved
/// backwards means the metric was reset mid-stream, so the current value
/// *is* the delta since then.
fn delta_counter(cur: u64, prev: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

/// Delta between two cumulative histogram snapshots of the same histogram.
/// Bucket-wise subtraction is exact; `min`/`max` are not delta-able, so the
/// window's bounds are recovered from the populated delta buckets.
fn delta_histogram(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    if cur.count < prev.count {
        // Reset between samples: the current snapshot is the delta.
        return cur.clone();
    }
    let mut out = HistogramSnapshot::empty();
    out.count = cur.count - prev.count;
    out.sum_ns = cur.sum_ns.saturating_sub(prev.sum_ns);
    for (idx, slot) in out.buckets.iter_mut().enumerate() {
        let p = prev.buckets.get(idx).copied().unwrap_or(0);
        let c = cur.buckets.get(idx).copied().unwrap_or(0);
        *slot = c.saturating_sub(p);
    }
    if out.count > 0 {
        if let Some(first) = out.buckets.iter().position(|&c| c > 0) {
            out.min_ns = LatencyHistogram::bucket_value(first);
        }
        if let Some(last) = out.buckets.iter().rposition(|&c| c > 0) {
            // Upper bound of the last populated bucket, but never beyond
            // the cumulative max (which bounds every window's samples).
            out.max_ns = LatencyHistogram::bucket_value(last + 1).min(cur.max_ns);
        }
    }
    out
}

/// Delta of a whole registry snapshot against the previous one.
fn delta_snapshot(
    cur: &RegistrySnapshot,
    prev: &RegistrySnapshot,
) -> BTreeMap<String, WindowEntry> {
    let mut entries = BTreeMap::new();
    for (key, snap) in &cur.entries {
        let entry = match (snap, prev.entries.get(key)) {
            (MetricSnapshot::Counter(c), Some(MetricSnapshot::Counter(p))) => {
                WindowEntry::Counter(delta_counter(*c, *p))
            }
            (MetricSnapshot::Counter(c), _) => WindowEntry::Counter(*c),
            (MetricSnapshot::Gauge(g), _) => WindowEntry::Gauge(*g),
            (MetricSnapshot::Histogram(h), Some(MetricSnapshot::Histogram(p))) => {
                WindowEntry::Histogram(delta_histogram(h, p))
            }
            (MetricSnapshot::Histogram(h), _) => WindowEntry::Histogram(h.clone()),
        };
        entries.insert(key.clone(), entry);
    }
    entries
}

/// A fixed-capacity ring of completed windows, newest last.
#[derive(Debug)]
pub struct WindowRing {
    cap: usize,
    ring: RwLock<VecDeque<Arc<Window>>>,
}

impl WindowRing {
    /// An empty ring retaining up to `capacity` windows.
    pub fn new(capacity: usize) -> Self {
        WindowRing {
            cap: capacity.max(1),
            ring: RwLock::new(VecDeque::new()),
        }
    }

    /// Maximum windows retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Windows currently retained.
    pub fn len(&self) -> usize {
        self.ring.read().expect("window ring lock").len()
    }

    /// Whether no window has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, w: Arc<Window>) {
        let mut ring = self.ring.write().expect("window ring lock");
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(w);
    }

    /// The most recent window, if any.
    pub fn latest(&self) -> Option<Arc<Window>> {
        self.ring.read().expect("window ring lock").back().cloned()
    }

    /// All retained windows, oldest first.
    pub fn windows(&self) -> Vec<Arc<Window>> {
        self.ring
            .read()
            .expect("window ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// The newest `n` windows merged into one (covering their combined
    /// span), or `None` when the ring is empty.
    pub fn merged(&self, n: usize) -> Option<Window> {
        let ring = self.ring.read().expect("window ring lock");
        if ring.is_empty() || n == 0 {
            return None;
        }
        let skip = ring.len().saturating_sub(n);
        let mut out = Window::empty();
        for w in ring.iter().skip(skip) {
            out.merge(w);
        }
        Some(out)
    }
}

/// Samples a [`Registry`] into a [`WindowRing`].
///
/// Each [`WindowSampler::sample`] call closes one window: it snapshots the
/// registry, subtracts the snapshot taken at the previous call, and pushes
/// the delta into the ring. Call it from a dedicated thread
/// ([`WindowSampler::start`]) for wall-clock windows, or manually from a
/// health-plane tick for sampling in lockstep with evaluation.
#[derive(Debug)]
pub struct WindowSampler {
    registry: Arc<Registry>,
    ring: WindowRing,
    state: Mutex<SamplerState>,
    stop: AtomicBool,
}

#[derive(Debug)]
struct SamplerState {
    prev: RegistrySnapshot,
    opened: Instant,
    seq: u64,
}

impl WindowSampler {
    /// A sampler over `registry` retaining `capacity` windows. The baseline
    /// snapshot is taken now: the first `sample` call covers activity from
    /// this moment.
    pub fn new(registry: Arc<Registry>, capacity: usize) -> Arc<WindowSampler> {
        let prev = registry.snapshot();
        Arc::new(WindowSampler {
            registry,
            ring: WindowRing::new(capacity),
            state: Mutex::new(SamplerState {
                prev,
                opened: Instant::now(),
                seq: 0,
            }),
            stop: AtomicBool::new(false),
        })
    }

    /// The ring of completed windows.
    pub fn ring(&self) -> &WindowRing {
        &self.ring
    }

    /// Closes the current window: snapshots the registry, pushes the delta
    /// since the previous call into the ring, and returns it.
    pub fn sample(&self) -> Arc<Window> {
        let cur = self.registry.snapshot();
        let mut state = self.state.lock().expect("sampler lock");
        let now = Instant::now();
        state.seq += 1;
        let window = Arc::new(Window {
            seq: state.seq,
            duration: now.duration_since(state.opened),
            entries: delta_snapshot(&cur, &state.prev),
        });
        state.prev = cur;
        state.opened = now;
        drop(state);
        self.ring.push(Arc::clone(&window));
        window
    }

    /// Forgets the previous snapshot and every retained window, re-basing
    /// on the registry's current state (after a harness `Registry::reset`).
    pub fn rebase(&self) {
        let cur = self.registry.snapshot();
        let mut state = self.state.lock().expect("sampler lock");
        state.prev = cur;
        state.opened = Instant::now();
        drop(state);
        self.ring.ring.write().expect("window ring lock").clear();
    }

    /// Spawns the sampling thread, closing one window every `interval`
    /// until [`SamplerThread::stop`] (or drop).
    pub fn start(self: &Arc<Self>, interval: Duration) -> SamplerThread {
        let sampler = Arc::clone(self);
        sampler.stop.store(false, Ordering::Relaxed);
        let join = std::thread::Builder::new()
            .name("gengar-window-sampler".into())
            .spawn({
                let sampler = Arc::clone(&sampler);
                move || {
                    while !sampler.stop.load(Ordering::Relaxed) {
                        std::thread::sleep(interval);
                        if sampler.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        sampler.sample();
                    }
                }
            })
            .expect("spawn window sampler");
        SamplerThread {
            sampler,
            join: Some(join),
        }
    }
}

/// Owner of a running sampler thread; stops and joins it on drop.
#[derive(Debug)]
pub struct SamplerThread {
    sampler: Arc<WindowSampler>,
    join: Option<JoinHandle<()>>,
}

impl SamplerThread {
    /// Stops the thread and waits for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.sampler.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SamplerThread {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_windows_carry_deltas_not_totals() {
        let r = Arc::new(Registry::new());
        let c = r.counter("client", "reads");
        let sampler = WindowSampler::new(Arc::clone(&r), 8);
        c.add(10);
        let w1 = sampler.sample();
        c.add(5);
        let w2 = sampler.sample();
        assert_eq!(w1.counter("client.reads"), Some(10));
        assert_eq!(w2.counter("client.reads"), Some(5));
        assert_eq!(w2.seq, 2);
    }

    #[test]
    fn gauge_windows_are_point_in_time() {
        let r = Arc::new(Registry::new());
        let g = r.gauge("proxy", "backlog");
        let sampler = WindowSampler::new(Arc::clone(&r), 8);
        g.set(40);
        let w1 = sampler.sample();
        g.set(3);
        let w2 = sampler.sample();
        assert_eq!(w1.gauge("proxy.backlog"), Some(40));
        assert_eq!(w2.gauge("proxy.backlog"), Some(3));
        // Merging keeps the later reading.
        let mut m = (*w1).clone();
        m.merge(&w2);
        assert_eq!(m.gauge("proxy.backlog"), Some(3));
    }

    #[test]
    fn histogram_windows_isolate_their_samples() {
        let r = Arc::new(Registry::new());
        let h = r.histogram("client", "read_ns");
        let sampler = WindowSampler::new(Arc::clone(&r), 8);
        for _ in 0..100 {
            h.record_ns(100);
        }
        let w1 = sampler.sample();
        for _ in 0..100 {
            h.record_ns(1_000_000);
        }
        let w2 = sampler.sample();
        let h1 = w1.histogram("client.read_ns").unwrap();
        let h2 = w2.histogram("client.read_ns").unwrap();
        assert_eq!(h1.count, 100);
        assert_eq!(h2.count, 100);
        // The second window sees only the slow samples.
        assert!(h2.p50_ns() >= 900_000, "p50 = {}", h2.p50_ns());
        assert!(h2.min_ns() >= 900_000, "min = {}", h2.min_ns());
        assert!(h1.max_ns() <= 150, "max = {}", h1.max_ns());
    }

    #[test]
    fn counter_reset_between_samples_yields_fresh_delta() {
        let r = Arc::new(Registry::new());
        let c = r.counter("client", "reads");
        let h = r.histogram("client", "read_ns");
        let sampler = WindowSampler::new(Arc::clone(&r), 8);
        c.add(100);
        for _ in 0..3 {
            h.record_ns(50);
        }
        sampler.sample();
        r.reset();
        c.add(7);
        h.record_ns(60);
        let w = sampler.sample();
        // The cumulative values moved backwards, so the current values ARE
        // the window (reset detection; a reset that re-records at least as
        // many samples as before is indistinguishable from normal growth).
        assert_eq!(w.counter("client.reads"), Some(7));
        assert_eq!(w.histogram("client.read_ns").unwrap().count, 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let r = Arc::new(Registry::new());
        let c = r.counter("c", "ops");
        let sampler = WindowSampler::new(Arc::clone(&r), 3);
        for _ in 0..5 {
            c.inc();
            sampler.sample();
        }
        let windows = sampler.ring().windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].seq, 3);
        assert_eq!(sampler.ring().latest().unwrap().seq, 5);
        assert_eq!(sampler.ring().capacity(), 3);
    }

    #[test]
    fn merged_windows_cover_combined_span() {
        let r = Arc::new(Registry::new());
        let c = r.counter("c", "ops");
        let sampler = WindowSampler::new(Arc::clone(&r), 8);
        for _ in 0..4 {
            c.add(10);
            sampler.sample();
        }
        let merged = sampler.ring().merged(2).unwrap();
        assert_eq!(merged.counter("c.ops"), Some(20));
        let all = sampler.ring().merged(usize::MAX).unwrap();
        assert_eq!(all.counter("c.ops"), Some(40));
        assert!(sampler.ring().merged(0).is_none());
    }

    #[test]
    fn rebase_clears_ring_and_baseline() {
        let r = Arc::new(Registry::new());
        let c = r.counter("c", "ops");
        let sampler = WindowSampler::new(Arc::clone(&r), 8);
        c.add(5);
        sampler.sample();
        c.add(9);
        sampler.rebase();
        assert!(sampler.ring().is_empty());
        c.add(2);
        assert_eq!(sampler.sample().counter("c.ops"), Some(2));
    }

    /// The satellite-mandated conservation test: windows sampled while 8
    /// threads hammer the registry must sum (merge) to exactly the
    /// cumulative totals — no sample double-counted, none lost.
    #[test]
    fn windows_sum_to_cumulative_under_8_thread_load() {
        let r = Arc::new(Registry::new());
        let sampler = WindowSampler::new(Arc::clone(&r), 1024);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("client", "reads");
                    let h = r.histogram("client", "read_ns");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record_ns(t * 1_000 + i % 997 + 1);
                    }
                })
            })
            .collect();
        // Sample concurrently with the writers, then once more after they
        // finish so the final window picks up the stragglers.
        for _ in 0..50 {
            sampler.sample();
            std::thread::yield_now();
        }
        for t in threads {
            t.join().unwrap();
        }
        sampler.sample();

        let mut total = Window::empty();
        for w in sampler.ring().windows() {
            total.merge(&w);
        }
        let cumulative = r.snapshot();
        assert_eq!(total.counter("client.reads"), Some(80_000));
        let merged_hist = total.histogram("client.read_ns").unwrap();
        let cum_hist = cumulative.histogram("client.read_ns").unwrap();
        assert_eq!(merged_hist.count, cum_hist.count);
        assert_eq!(merged_hist.sum_ns, cum_hist.sum_ns);
        assert_eq!(merged_hist.buckets, cum_hist.buckets);
        assert_eq!(merged_hist.p99_ns(), cum_hist.p99_ns());
    }

    #[test]
    fn sampler_thread_samples_until_stopped() {
        let r = Arc::new(Registry::new());
        let c = r.counter("c", "ops");
        let sampler = WindowSampler::new(Arc::clone(&r), 64);
        let thread = sampler.start(Duration::from_millis(1));
        c.add(3);
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.ring().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        thread.stop();
        let n = sampler.ring().len();
        assert!(n >= 1, "sampler thread never sampled");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sampler.ring().len(), n, "sampled after stop");
    }
}
