//! Property-based tests for the telemetry primitives.

use std::sync::Arc;

use gengar_telemetry::{HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;

/// Builds a snapshot from a list of samples.
fn snap_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &s in samples {
        h.record_ns(s);
    }
    h.snapshot()
}

proptest! {
    /// Merge is commutative: a+b == b+a.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..(1 << 50), 0..64),
        b in proptest::collection::vec(0u64..(1 << 50), 0..64),
    ) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a+b)+c == a+(b+c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..(1 << 50), 0..32),
        b in proptest::collection::vec(0u64..(1 << 50), 0..32),
        c in proptest::collection::vec(0u64..(1 << 50), 0..32),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Empty is the merge identity.
    #[test]
    fn merge_identity(a in proptest::collection::vec(any::<u64>(), 0..64)) {
        let sa = snap_of(&a);
        let mut merged = sa.clone();
        merged.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&merged, &sa);
        let mut other = HistogramSnapshot::empty();
        other.merge(&sa);
        prop_assert_eq!(&other, &sa);
    }

    /// Merging shards equals recording everything into one histogram.
    #[test]
    fn merge_equals_single_recording(
        a in proptest::collection::vec(0u64..(1 << 50), 0..64),
        b in proptest::collection::vec(0u64..(1 << 50), 0..64),
    ) {
        let mut merged = snap_of(&a);
        merged.merge(&snap_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snap_of(&all));
    }

    /// Percentiles are monotone in p and bounded by [min-bucket, max].
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(1u64..(1 << 50), 1..256)) {
        let s = snap_of(&samples);
        let ps = [0.1, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        for w in ps.windows(2) {
            prop_assert!(
                s.percentile_ns(w[0]) <= s.percentile_ns(w[1]),
                "p{} > p{}", w[0], w[1]
            );
        }
        prop_assert!(s.percentile_ns(100.0) <= s.max_ns());
        // Every percentile is a representable bucket value or max_ns, and
        // the histogram never loses samples.
        prop_assert_eq!(s.count, samples.len() as u64);
    }

    /// The log-scale buckets bound relative error: p50 of a constant
    /// stream is within one sub-bucket step (~3.2%) of the true value.
    #[test]
    fn constant_stream_percentile_is_close(v in 1u64..1_000_000_000_000) {
        let s = snap_of(&[v; 16]);
        let p50 = s.p50_ns() as f64;
        prop_assert!(p50 <= v as f64 * 1.05, "p50 {} vs true {}", p50, v);
        prop_assert!(p50 >= v as f64 * 0.90, "p50 {} vs true {}", p50, v);
    }
}

/// 8 threads hammer one histogram; no sample is lost or double-counted
/// and the aggregates match the per-thread truth.
#[test]
fn concurrent_recording_conserves_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread samples across buckets deterministically.
                    h.record_ns((i * 31 + t * 7) % 1_000_000 + 1);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let s = h.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    assert!(s.min_ns() >= 1);
    assert!(s.max_ns() < 1_000_001);
    let expected_sum: u128 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| u128::from((i * 31 + t * 7) % 1_000_000 + 1)))
        .sum();
    assert_eq!(s.sum_ns, expected_sum);
}

/// Counters survive the same treatment: 8 threads, exact conservation.
#[test]
fn concurrent_counter_is_exact() {
    use gengar_telemetry::Counter;
    let c = Arc::new(Counter::new());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..25_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    assert_eq!(c.get(), 8 * 25_000);
}
