//! Deterministic fault-injection plane for the simulated fabric.
//!
//! A [`FaultPlane`] attaches to [`crate::FabricConfig`] and is consulted
//! once per posted send-side verb, *after* the programming-error checks
//! (a real NIC rejects a bad WQE locally before anything reaches the
//! wire) and *before* the link model runs. It can
//!
//! - force error completions ([`WcStatus`]) per-verb / per-link,
//! - drop operations entirely (the initiator never sees a completion and
//!   its blocking helper times out),
//! - add extra delay to selected operations,
//! - exhaust RNR credits (a forced [`WcStatus::RnrRetryExceeded`]),
//! - flap partitions on a deterministic schedule.
//!
//! Every random choice draws from a seeded splitmix64 stream owned by the
//! plane, so a failing chaos run reproduces from its seed alone. When the
//! plane is disabled (or absent) the fabric hot path pays a single branch.
//!
//! Rules are matched first-to-fire: the first rule whose filters match the
//! operation *and* whose trigger fires decides the operation's fate.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gengar_telemetry::{CounterHandle, TelemetryConfig};
use parking_lot::{Mutex, RwLock};

use crate::cq::{WcOpcode, WcStatus};
use crate::types::NodeId;

/// What a firing rule does to the matched operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Complete the operation with this error status (QP goes to error).
    Error(WcStatus),
    /// Drop the operation: no data transfer, no completion. The initiator's
    /// blocking helper observes a timeout; the QP stays usable.
    Drop,
    /// Delay the operation by this many simulated nanoseconds, then let it
    /// proceed normally.
    DelayNs(u64),
    /// Simulate RNR credit exhaustion: the receiver never produced a
    /// receive, so the sender completes with
    /// [`WcStatus::RnrRetryExceeded`].
    ExhaustRnr,
}

/// When a matching rule fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Every matching operation.
    Always,
    /// Each matching operation independently with this probability.
    Probability(f64),
    /// At these (1-based) per-rule matched-operation counts — scripted
    /// faults at exact points in a run.
    AtOps(Vec<u64>),
    /// Every `n`-th matching operation (1-based: fires at n, 2n, ...).
    EveryNth(u64),
}

/// One injection rule: filters narrowing which operations it applies to,
/// a [`Trigger`] deciding when it fires, and the [`FaultAction`] applied.
#[derive(Debug)]
pub struct FaultRule {
    action: FaultAction,
    trigger: Trigger,
    /// Only operations of this verb (sender-side opcode) match.
    verb: Option<WcOpcode>,
    /// Only operations between this unordered node pair match.
    link: Option<(NodeId, NodeId)>,
    /// Filter on WRITE_WITH_IMM: `Some(true)` matches only writes that
    /// carry an immediate (the staging-ring path), `Some(false)` only
    /// writes that don't.
    with_imm: Option<bool>,
    /// Matched operations seen so far (drives `AtOps` / `EveryNth`).
    seen: AtomicU64,
}

impl Clone for FaultRule {
    fn clone(&self) -> Self {
        FaultRule {
            action: self.action,
            trigger: self.trigger.clone(),
            verb: self.verb,
            link: self.link,
            with_imm: self.with_imm,
            seen: AtomicU64::new(self.seen.load(Ordering::Relaxed)),
        }
    }
}

impl FaultRule {
    /// A rule applying `action` to every operation (narrow it with the
    /// builder methods).
    pub fn new(action: FaultAction) -> Self {
        FaultRule {
            action,
            trigger: Trigger::Always,
            verb: None,
            link: None,
            with_imm: None,
            seen: AtomicU64::new(0),
        }
    }

    /// A rule forcing error completions with `status`.
    pub fn error(status: WcStatus) -> Self {
        Self::new(FaultAction::Error(status))
    }

    /// A rule dropping operations (lost completion → initiator timeout).
    pub fn drop_op() -> Self {
        Self::new(FaultAction::Drop)
    }

    /// A rule delaying operations by `ns` simulated nanoseconds.
    pub fn delay_ns(ns: u64) -> Self {
        Self::new(FaultAction::DelayNs(ns))
    }

    /// A rule simulating RNR credit exhaustion.
    pub fn rnr() -> Self {
        Self::new(FaultAction::ExhaustRnr)
    }

    /// Restricts the rule to one verb (sender-side opcode).
    #[must_use]
    pub fn verb(mut self, verb: WcOpcode) -> Self {
        self.verb = Some(verb);
        self
    }

    /// Restricts the rule to the unordered link between `a` and `b`.
    #[must_use]
    pub fn link(mut self, a: NodeId, b: NodeId) -> Self {
        self.link = Some(if a <= b { (a, b) } else { (b, a) });
        self
    }

    /// Restricts the rule to writes with (`true`) or without (`false`) an
    /// immediate. Only meaningful for [`WcOpcode::RdmaWrite`].
    #[must_use]
    pub fn with_imm(mut self, with_imm: bool) -> Self {
        self.with_imm = Some(with_imm);
        self
    }

    /// Fires each matching operation independently with probability `p`.
    #[must_use]
    pub fn probability(mut self, p: f64) -> Self {
        self.trigger = Trigger::Probability(p.clamp(0.0, 1.0));
        self
    }

    /// Fires at exactly these 1-based matched-operation counts.
    #[must_use]
    pub fn at_ops(mut self, ops: Vec<u64>) -> Self {
        self.trigger = Trigger::AtOps(ops);
        self
    }

    /// Fires every `n`-th matching operation.
    #[must_use]
    pub fn every_nth(mut self, n: u64) -> Self {
        self.trigger = Trigger::EveryNth(n.max(1));
        self
    }

    fn matches(&self, src: NodeId, dst: NodeId, verb: WcOpcode, imm: bool) -> bool {
        if let Some(v) = self.verb {
            if v != verb {
                return false;
            }
        }
        if let Some((a, b)) = self.link {
            let key = if src <= dst { (src, dst) } else { (dst, src) };
            if key != (a, b) {
                return false;
            }
        }
        if let Some(want) = self.with_imm {
            if want != imm {
                return false;
            }
        }
        true
    }
}

/// A deterministic partition schedule: with period `period`, the first
/// `blocked` operations of each period observe the link as partitioned
/// (counted on the plane's global operation counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionFlap {
    /// The unordered link to flap, or `None` for every link.
    pub link: Option<(NodeId, NodeId)>,
    /// Schedule period in fabric operations.
    pub period: u64,
    /// Operations at the start of each period that observe a partition.
    pub blocked: u64,
}

impl PartitionFlap {
    /// Flaps every link: `blocked` out of every `period` operations fail.
    pub fn all_links(period: u64, blocked: u64) -> Self {
        PartitionFlap {
            link: None,
            period: period.max(1),
            blocked,
        }
    }

    /// Flaps one unordered link.
    pub fn on_link(a: NodeId, b: NodeId, period: u64, blocked: u64) -> Self {
        PartitionFlap {
            link: Some(if a <= b { (a, b) } else { (b, a) }),
            period: period.max(1),
            blocked,
        }
    }

    fn blocks(&self, src: NodeId, dst: NodeId, op: u64) -> bool {
        if let Some((a, b)) = self.link {
            let key = if src <= dst { (src, dst) } else { (dst, src) };
            if key != (a, b) {
                return false;
            }
        }
        op % self.period < self.blocked
    }
}

/// The plane's verdict for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// No fault: execute normally.
    Proceed,
    /// Delay by this many simulated nanoseconds, then execute normally.
    Delay(u64),
    /// Complete with this error status instead of executing.
    Error(WcStatus),
    /// Drop silently: no execution, no completion.
    Drop,
}

#[derive(Debug, Clone, Default)]
struct FaultMetrics {
    injected_errors: CounterHandle,
    injected_drops: CounterHandle,
    delayed_ops: CounterHandle,
    partition_blocks: CounterHandle,
}

impl FaultMetrics {
    fn new(config: TelemetryConfig) -> Self {
        let tel = config.handle();
        FaultMetrics {
            injected_errors: tel.counter("fault", "injected_errors"),
            injected_drops: tel.counter("fault", "injected_drops"),
            delayed_ops: tel.counter("fault", "delayed_ops"),
            partition_blocks: tel.counter("fault", "partition_blocks"),
        }
    }
}

/// Seeded, deterministic fault injector attached to a
/// [`crate::FabricConfig`].
///
/// Thread-safe: many initiator threads consult the plane concurrently.
/// Determinism is per-plane — with a single initiator thread, a given
/// seed + rule set reproduces the exact same fault sequence; with several
/// threads, the *set* of injected faults is scheduling-dependent but each
/// random draw still comes from the seeded stream.
#[derive(Debug)]
pub struct FaultPlane {
    enabled: AtomicBool,
    ops: AtomicU64,
    rules: RwLock<Vec<FaultRule>>,
    flaps: RwLock<Vec<PartitionFlap>>,
    rng: Mutex<u64>,
    spec: Mutex<String>,
    metrics: FaultMetrics,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlane {
    /// An enabled, empty plane with no telemetry (counters are no-ops).
    pub fn new(seed: u64) -> Self {
        Self::with_telemetry(seed, TelemetryConfig::disabled())
    }

    /// An enabled, empty plane whose `fault.*` counters are resolved
    /// against `telemetry`'s registry.
    pub fn with_telemetry(seed: u64, telemetry: TelemetryConfig) -> Self {
        FaultPlane {
            enabled: AtomicBool::new(true),
            ops: AtomicU64::new(0),
            rules: RwLock::new(Vec::new()),
            flaps: RwLock::new(Vec::new()),
            rng: Mutex::new(seed),
            spec: Mutex::new(String::new()),
            metrics: FaultMetrics::new(telemetry),
        }
    }

    /// Builds a plane from a fault-spec string (see [`FaultPlane::parse`]
    /// for the grammar).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed term.
    pub fn from_spec(
        spec: &str,
        seed: u64,
        telemetry: TelemetryConfig,
    ) -> Result<FaultPlane, String> {
        let plane = FaultPlane::with_telemetry(seed, telemetry);
        plane.parse(spec)?;
        Ok(plane)
    }

    /// Parses and installs a fault-spec string, adding to any existing
    /// rules. Terms are joined with `+`; each term is
    /// `kind:key=val,key=val,...`:
    ///
    /// - `drop:p=0.01[,verb=read]` — drop ops with probability `p`
    /// - `err:p=0.01[,status=transport|access|rnr|flush][,verb=...]` —
    ///   force error completions (default status `transport`)
    /// - `rnr:p=0.02` — RNR exhaustion (shorthand for `err` with
    ///   status `rnr`)
    /// - `delay:ns=50000[,p=0.1]` — add `ns` of delay
    /// - `flap:period=2000,blocked=200` — partition all links for the
    ///   first `blocked` ops of every `period` ops
    ///
    /// Shared keys: `verb=read|write|send|cas|faa`, `imm=0|1` (filter on
    /// WRITE_WITH_IMM), `nth=N` (every N-th), `at=100/200/300` (scripted
    /// op counts, `/`-separated). Without `p`, `nth` or `at` a rule fires
    /// on every matching op.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed term.
    pub fn parse(&self, spec: &str) -> Result<(), String> {
        for term in spec.split('+').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, params) = term.split_once(':').unwrap_or((term, ""));
            let mut p: Option<f64> = None;
            let mut nth: Option<u64> = None;
            let mut at: Option<Vec<u64>> = None;
            let mut verb: Option<WcOpcode> = None;
            let mut imm: Option<bool> = None;
            let mut status = WcStatus::TransportError;
            let mut ns: Option<u64> = None;
            let mut period: Option<u64> = None;
            let mut blocked: Option<u64> = None;
            for kv in params.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let (key, val) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("fault spec: `{kv}` in `{term}` is not key=value"))?;
                let bad = |what: &str| format!("fault spec: bad {what} `{val}` in `{term}`");
                match key {
                    "p" => p = Some(val.parse::<f64>().map_err(|_| bad("probability"))?),
                    "nth" => nth = Some(val.parse::<u64>().map_err(|_| bad("nth"))?),
                    "at" => {
                        let ops = val
                            .split('/')
                            .map(|s| s.parse::<u64>().map_err(|_| bad("op count")))
                            .collect::<Result<Vec<u64>, String>>()?;
                        at = Some(ops);
                    }
                    "verb" => {
                        verb = Some(match val {
                            "read" => WcOpcode::RdmaRead,
                            "write" => WcOpcode::RdmaWrite,
                            "send" => WcOpcode::Send,
                            "cas" => WcOpcode::CompSwap,
                            "faa" => WcOpcode::FetchAdd,
                            _ => return Err(bad("verb")),
                        });
                    }
                    "imm" => {
                        imm = Some(match val {
                            "1" | "true" => true,
                            "0" | "false" => false,
                            _ => return Err(bad("imm flag")),
                        });
                    }
                    "status" => {
                        status = match val {
                            "transport" => WcStatus::TransportError,
                            "access" => WcStatus::RemoteAccessError,
                            "rnr" => WcStatus::RnrRetryExceeded,
                            "flush" => WcStatus::WrFlushed,
                            _ => return Err(bad("status")),
                        };
                    }
                    "ns" => ns = Some(val.parse::<u64>().map_err(|_| bad("delay"))?),
                    "period" => period = Some(val.parse::<u64>().map_err(|_| bad("period"))?),
                    "blocked" => blocked = Some(val.parse::<u64>().map_err(|_| bad("blocked"))?),
                    _ => return Err(format!("fault spec: unknown key `{key}` in `{term}`")),
                }
            }
            if kind == "flap" {
                let period =
                    period.ok_or_else(|| format!("fault spec: `{term}` needs period=N"))?;
                let blocked =
                    blocked.ok_or_else(|| format!("fault spec: `{term}` needs blocked=N"))?;
                self.add_flap(PartitionFlap::all_links(period, blocked));
                continue;
            }
            let mut rule = match kind {
                "drop" => FaultRule::drop_op(),
                "err" => FaultRule::error(status),
                "rnr" => FaultRule::rnr(),
                "delay" => FaultRule::delay_ns(
                    ns.ok_or_else(|| format!("fault spec: `{term}` needs ns=N"))?,
                ),
                _ => return Err(format!("fault spec: unknown fault kind `{kind}`")),
            };
            rule.verb = verb;
            rule.with_imm = imm;
            if let Some(p) = p {
                rule = rule.probability(p);
            } else if let Some(n) = nth {
                rule = rule.every_nth(n);
            } else if let Some(ops) = at {
                rule = rule.at_ops(ops);
            }
            self.add_rule(rule);
        }
        let mut stored = self.spec.lock();
        if stored.is_empty() {
            *stored = spec.to_string();
        } else {
            *stored = format!("{}+{spec}", *stored);
        }
        Ok(())
    }

    /// The spec string(s) installed via [`FaultPlane::parse`], for
    /// reporting. Empty for programmatically built planes.
    pub fn spec(&self) -> String {
        self.spec.lock().clone()
    }

    /// Whether the plane is currently injecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns injection on or off. Rules and counters are preserved.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Stops injecting (the chaos suites disarm before verifying).
    pub fn disarm(&self) {
        self.set_enabled(false);
    }

    /// Installs an injection rule.
    pub fn add_rule(&self, rule: FaultRule) {
        self.rules.write().push(rule);
    }

    /// Installs a partition-flap schedule.
    pub fn add_flap(&self, flap: PartitionFlap) {
        self.flaps.write().push(flap);
    }

    /// Removes every rule and flap (the op counter keeps counting).
    pub fn clear(&self) {
        self.rules.write().clear();
        self.flaps.write().clear();
        self.spec.lock().clear();
    }

    /// Operations the plane has adjudicated while enabled.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn next_f64(&self) -> f64 {
        let mut state = self.rng.lock();
        let x = splitmix64(&mut state);
        // 53 mantissa bits → uniform in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Adjudicates one operation. Called by the fabric for every posted
    /// send-side verb; `with_imm` is true for WRITE_WITH_IMM.
    pub fn decide(
        &self,
        src: NodeId,
        dst: NodeId,
        verb: WcOpcode,
        with_imm: bool,
    ) -> FaultDecision {
        if !self.enabled.load(Ordering::Relaxed) {
            return FaultDecision::Proceed;
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        for flap in self.flaps.read().iter() {
            if flap.blocks(src, dst, op) {
                self.metrics.partition_blocks.inc();
                return FaultDecision::Error(WcStatus::TransportError);
            }
        }
        for rule in self.rules.read().iter() {
            if !rule.matches(src, dst, verb, with_imm) {
                continue;
            }
            let seen = rule.seen.fetch_add(1, Ordering::Relaxed) + 1;
            let fires = match &rule.trigger {
                Trigger::Always => true,
                Trigger::Probability(p) => self.next_f64() < *p,
                Trigger::AtOps(ops) => ops.contains(&seen),
                Trigger::EveryNth(n) => seen % n == 0,
            };
            if !fires {
                continue;
            }
            // An injected error/drop is exactly the moment a timeline is
            // worth keeping: fire the flight recorder's one-shot dump
            // latch (a no-op unless armed — see `FlightRecorder`).
            return match rule.action {
                FaultAction::Error(status) => {
                    self.metrics.injected_errors.inc();
                    gengar_telemetry::FlightRecorder::global().trigger("fault-err");
                    FaultDecision::Error(status)
                }
                FaultAction::ExhaustRnr => {
                    self.metrics.injected_errors.inc();
                    gengar_telemetry::FlightRecorder::global().trigger("fault-rnr");
                    FaultDecision::Error(WcStatus::RnrRetryExceeded)
                }
                FaultAction::Drop => {
                    self.metrics.injected_drops.inc();
                    gengar_telemetry::FlightRecorder::global().trigger("fault-drop");
                    FaultDecision::Drop
                }
                FaultAction::DelayNs(ns) => {
                    self.metrics.delayed_ops.inc();
                    FaultDecision::Delay(ns)
                }
            };
        }
        FaultDecision::Proceed
    }
}

impl fmt::Display for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let spec = self.spec.lock();
        if spec.is_empty() {
            write!(
                f,
                "FaultPlane({} rules, {} flaps)",
                self.rules.read().len(),
                self.flaps.read().len()
            )
        } else {
            write!(f, "FaultPlane({})", *spec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    fn decide_n(plane: &FaultPlane, n: usize) -> Vec<FaultDecision> {
        (0..n)
            .map(|_| plane.decide(A, B, WcOpcode::RdmaRead, false))
            .collect()
    }

    #[test]
    fn empty_plane_proceeds() {
        let plane = FaultPlane::new(7);
        assert!(decide_n(&plane, 100)
            .iter()
            .all(|d| *d == FaultDecision::Proceed));
        assert_eq!(plane.ops_seen(), 100);
    }

    #[test]
    fn disabled_plane_is_inert() {
        let plane = FaultPlane::new(7);
        plane.add_rule(FaultRule::error(WcStatus::TransportError));
        plane.disarm();
        assert!(decide_n(&plane, 10)
            .iter()
            .all(|d| *d == FaultDecision::Proceed));
        assert_eq!(plane.ops_seen(), 0);
        plane.set_enabled(true);
        assert_eq!(
            plane.decide(A, B, WcOpcode::RdmaRead, false),
            FaultDecision::Error(WcStatus::TransportError)
        );
    }

    #[test]
    fn same_seed_reproduces_decisions() {
        let mk = || {
            let plane = FaultPlane::new(42);
            plane.add_rule(FaultRule::drop_op().probability(0.3));
            plane
        };
        let (p1, p2) = (mk(), mk());
        assert_eq!(decide_n(&p1, 500), decide_n(&p2, 500));
        // And a different seed gives a different fault pattern.
        let p3 = FaultPlane::new(43);
        p3.add_rule(FaultRule::drop_op().probability(0.3));
        assert_ne!(decide_n(&p1, 500), decide_n(&p3, 500));
    }

    #[test]
    fn probability_hits_in_expected_band() {
        let plane = FaultPlane::new(1);
        plane.add_rule(FaultRule::drop_op().probability(0.2));
        let drops = decide_n(&plane, 10_000)
            .iter()
            .filter(|d| **d == FaultDecision::Drop)
            .count();
        assert!((1500..2500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn at_ops_fires_at_scripted_counts() {
        let plane = FaultPlane::new(1);
        plane.add_rule(FaultRule::error(WcStatus::RemoteAccessError).at_ops(vec![3, 5]));
        let decisions = decide_n(&plane, 6);
        for (i, d) in decisions.iter().enumerate() {
            let expect = if i == 2 || i == 4 {
                FaultDecision::Error(WcStatus::RemoteAccessError)
            } else {
                FaultDecision::Proceed
            };
            assert_eq!(*d, expect, "op {i}");
        }
    }

    #[test]
    fn every_nth_fires_periodically() {
        let plane = FaultPlane::new(1);
        plane.add_rule(FaultRule::delay_ns(10).every_nth(3));
        let decisions = decide_n(&plane, 9);
        let delayed: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == FaultDecision::Delay(10))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(delayed, vec![2, 5, 8]);
    }

    #[test]
    fn verb_and_imm_filters_narrow_matches() {
        let plane = FaultPlane::new(1);
        plane.add_rule(
            FaultRule::error(WcStatus::TransportError)
                .verb(WcOpcode::RdmaWrite)
                .with_imm(true),
        );
        assert_eq!(
            plane.decide(A, B, WcOpcode::RdmaWrite, false),
            FaultDecision::Proceed
        );
        assert_eq!(
            plane.decide(A, B, WcOpcode::RdmaRead, false),
            FaultDecision::Proceed
        );
        assert_eq!(
            plane.decide(A, B, WcOpcode::RdmaWrite, true),
            FaultDecision::Error(WcStatus::TransportError)
        );
    }

    #[test]
    fn link_filter_narrows_matches() {
        let plane = FaultPlane::new(1);
        plane.add_rule(FaultRule::rnr().link(B, A));
        assert_eq!(
            plane.decide(A, NodeId(2), WcOpcode::Send, false),
            FaultDecision::Proceed
        );
        // Unordered: (A, B) matches a rule installed as (B, A).
        assert_eq!(
            plane.decide(A, B, WcOpcode::Send, false),
            FaultDecision::Error(WcStatus::RnrRetryExceeded)
        );
    }

    #[test]
    fn flap_schedule_blocks_prefix_of_each_period() {
        let plane = FaultPlane::new(1);
        plane.add_flap(PartitionFlap::all_links(5, 2));
        let decisions = decide_n(&plane, 10);
        for (i, d) in decisions.iter().enumerate() {
            let expect = if i % 5 < 2 {
                FaultDecision::Error(WcStatus::TransportError)
            } else {
                FaultDecision::Proceed
            };
            assert_eq!(*d, expect, "op {i}");
        }
    }

    #[test]
    fn flap_on_link_ignores_other_links() {
        let plane = FaultPlane::new(1);
        plane.add_flap(PartitionFlap::on_link(A, B, 2, 2));
        assert_eq!(
            plane.decide(A, NodeId(9), WcOpcode::RdmaRead, false),
            FaultDecision::Proceed
        );
        assert_eq!(
            plane.decide(B, A, WcOpcode::RdmaRead, false),
            FaultDecision::Error(WcStatus::TransportError)
        );
    }

    #[test]
    fn first_firing_rule_wins() {
        let plane = FaultPlane::new(1);
        plane.add_rule(FaultRule::drop_op());
        plane.add_rule(FaultRule::error(WcStatus::TransportError));
        assert_eq!(
            plane.decide(A, B, WcOpcode::RdmaRead, false),
            FaultDecision::Drop
        );
    }

    #[test]
    fn spec_parses_all_kinds() {
        let plane = FaultPlane::from_spec(
            "drop:p=0.01,verb=read + err:p=0.02,status=access + rnr:nth=100 \
             + delay:ns=500,p=0.5 + flap:period=2000,blocked=200 + err:at=3/7,imm=1",
            9,
            TelemetryConfig::disabled(),
        )
        .unwrap();
        assert_eq!(plane.rules.read().len(), 5);
        assert_eq!(plane.flaps.read().len(), 1);
        assert!(plane.spec().contains("flap"));
    }

    #[test]
    fn spec_rejects_malformed_terms() {
        for bad in [
            "unknown:p=0.1",
            "drop:p=zero",
            "err:status=bogus",
            "drop:verb=scan",
            "delay:p=0.1",
            "flap:period=10",
            "drop:p",
            "drop:wat=1",
        ] {
            assert!(
                FaultPlane::from_spec(bad, 1, TelemetryConfig::disabled()).is_err(),
                "spec `{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn clear_removes_rules_and_flaps() {
        let plane = FaultPlane::new(1);
        plane.parse("drop:p=1 + flap:period=2,blocked=1").unwrap();
        plane.clear();
        assert!(decide_n(&plane, 20)
            .iter()
            .all(|d| *d == FaultDecision::Proceed));
        assert!(plane.spec().is_empty());
    }
}
