//! Error type for the verbs layer.

use std::error::Error;
use std::fmt;

use gengar_hybridmem::HybridMemError;

use crate::types::{NodeId, Qpn, RKey};

/// Errors produced by verbs operations.
///
/// Following RC semantics, *transport-level* failures (peer unreachable,
/// remote access violation, receiver-not-ready exhaustion) are reported as
/// error **completions** ([`crate::cq::WcStatus`]), while *programming*
/// errors (posting on a disconnected QP, unknown lkey) fail the post call
/// itself with this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// The queue pair is not in a state that allows the operation.
    InvalidQpState {
        /// The QP's current state name.
        state: &'static str,
        /// The attempted operation.
        operation: &'static str,
    },
    /// The queue pair has no connected remote peer.
    NotConnected,
    /// No node with this id exists on the fabric.
    NodeNotFound(NodeId),
    /// No queue pair with this number exists on the target node.
    QpNotFound(NodeId, Qpn),
    /// The local key does not name a registered memory region on this node.
    UnknownLKey(u32),
    /// The remote key does not name a registered memory region.
    UnknownRKey(RKey),
    /// A local scatter/gather entry fell outside its memory region.
    LocalAccessOutOfBounds {
        /// Offset of the access within the MR.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Length of the MR.
        mr_len: u64,
    },
    /// The payload exceeds the QP's inline limit.
    InlineTooLarge {
        /// Requested inline payload size.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The send queue is full (too many unpolled signalled completions).
    SendQueueFull,
    /// The receive queue is full.
    RecvQueueFull,
    /// An underlying simulated-memory error (bounds, alignment).
    Memory(HybridMemError),
    /// The fabric rejected the connection (e.g. peer already bound).
    ConnectionRefused(&'static str),
    /// A blocking helper gave up waiting for a completion while the queue
    /// pair was still healthy: the operation may yet be outstanding, and a
    /// retry on the same connection can succeed.
    Timeout,
    /// The operation completed with an error status.
    CompletionError(crate::cq::WcStatus),
    /// A blocking helper observed the queue pair in the error state while
    /// waiting; the payload is the completion status that killed the QP.
    /// Unlike [`RdmaError::Timeout`], retrying on this connection cannot
    /// succeed — the QP must be reset and reconnected.
    QpError(crate::cq::WcStatus),
}

impl RdmaError {
    /// `true` when retrying the operation on the *same* connection can
    /// succeed (the QP is still healthy).
    pub fn is_retryable(&self) -> bool {
        matches!(self, RdmaError::Timeout)
    }
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::InvalidQpState { state, operation } => {
                write!(f, "queue pair in state {state} cannot {operation}")
            }
            RdmaError::NotConnected => write!(f, "queue pair is not connected"),
            RdmaError::NodeNotFound(n) => write!(f, "no such node on fabric: {n}"),
            RdmaError::QpNotFound(n, q) => write!(f, "no queue pair {q} on {n}"),
            RdmaError::UnknownLKey(k) => write!(f, "unknown local key {k:#x}"),
            RdmaError::UnknownRKey(k) => write!(f, "unknown remote key {k}"),
            RdmaError::LocalAccessOutOfBounds {
                offset,
                len,
                mr_len,
            } => write!(
                f,
                "local sge [{offset}, {offset}+{len}) out of bounds for MR of {mr_len} bytes"
            ),
            RdmaError::InlineTooLarge { len, max } => {
                write!(f, "inline payload of {len} bytes exceeds limit {max}")
            }
            RdmaError::SendQueueFull => write!(f, "send queue full"),
            RdmaError::RecvQueueFull => write!(f, "receive queue full"),
            RdmaError::Memory(e) => write!(f, "memory error: {e}"),
            RdmaError::ConnectionRefused(why) => write!(f, "connection refused: {why}"),
            RdmaError::Timeout => write!(f, "timed out waiting for completion"),
            RdmaError::CompletionError(status) => {
                write!(f, "operation completed with status {status:?}")
            }
            RdmaError::QpError(status) => {
                write!(f, "queue pair is dead (killed by status {status:?})")
            }
        }
    }
}

impl Error for RdmaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RdmaError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HybridMemError> for RdmaError {
    fn from(e: HybridMemError) -> Self {
        RdmaError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RdmaError::QpNotFound(NodeId(1), Qpn(2));
        assert_eq!(e.to_string(), "no queue pair qp2 on node1");
        let e = RdmaError::Memory(HybridMemError::Misaligned { offset: 3 });
        assert!(e.to_string().contains("not 8-byte aligned"));
    }

    #[test]
    fn memory_error_converts() {
        let m = HybridMemError::CrashSimDisabled;
        let e: RdmaError = m.clone().into();
        assert_eq!(e, RdmaError::Memory(m));
    }

    #[test]
    fn source_chains() {
        let e = RdmaError::Memory(HybridMemError::CrashSimDisabled);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&RdmaError::NotConnected).is_none());
    }
}
