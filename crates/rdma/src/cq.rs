//! Completion queues and work completions.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::types::{Qpn, WrId};

/// Status of a work completion (subset of `ibv_wc_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcStatus {
    /// Operation completed successfully.
    Success,
    /// The remote side rejected the access (bad rkey, permissions, bounds).
    RemoteAccessError,
    /// Receiver had no posted receive and RNR retries were exhausted.
    RnrRetryExceeded,
    /// The peer was unreachable (partition / node removed); RC gives up
    /// after transport retries.
    TransportError,
    /// The work request was flushed because the QP entered the error state.
    WrFlushed,
}

impl WcStatus {
    /// Returns whether this status is [`WcStatus::Success`].
    pub fn is_ok(self) -> bool {
        self == WcStatus::Success
    }
}

/// Opcode recorded in a work completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcOpcode {
    /// SEND completed (sender side).
    Send,
    /// RDMA WRITE completed (sender side).
    RdmaWrite,
    /// RDMA READ completed (sender side).
    RdmaRead,
    /// Atomic compare-and-swap completed (sender side).
    CompSwap,
    /// Atomic fetch-and-add completed (sender side).
    FetchAdd,
    /// Incoming SEND consumed a receive (receiver side).
    Recv,
    /// Incoming WRITE_WITH_IMM consumed a receive (receiver side).
    RecvRdmaWithImm,
}

/// A work completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wc {
    /// The id of the work request this completion reports on.
    pub wr_id: WrId,
    /// Completion status.
    pub status: WcStatus,
    /// Operation kind.
    pub opcode: WcOpcode,
    /// Bytes transferred (receive: payload length).
    pub byte_len: u64,
    /// Immediate data, if the peer sent any.
    pub imm: Option<u32>,
    /// The queue pair this completion belongs to.
    pub qpn: Qpn,
}

#[derive(Debug, Default)]
struct CqInner {
    queue: VecDeque<Wc>,
    overflowed: bool,
}

/// A completion queue.
///
/// Completions are appended by the fabric when operations finish and
/// harvested with [`CompletionQueue::poll`] (non-blocking, like
/// `ibv_poll_cq`) or [`CompletionQueue::wait`] (blocking with timeout,
/// standing in for a completion channel).
#[derive(Debug)]
pub struct CompletionQueue {
    capacity: usize,
    inner: Mutex<CqInner>,
    available: Condvar,
}

impl CompletionQueue {
    /// Creates a CQ that can hold `capacity` unharvested completions.
    pub fn new(capacity: usize) -> Self {
        CompletionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(CqInner::default()),
            available: Condvar::new(),
        }
    }

    /// Capacity in completions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a completion. Returns `false` (and marks the CQ overflowed)
    /// if capacity was exceeded — a fatal condition on real hardware.
    pub(crate) fn push(&self, wc: Wc) -> bool {
        let mut inner = self.inner.lock();
        if inner.queue.len() >= self.capacity {
            inner.overflowed = true;
            return false;
        }
        inner.queue.push_back(wc);
        self.available.notify_all();
        true
    }

    /// Returns whether the CQ has ever overflowed.
    pub fn overflowed(&self) -> bool {
        self.inner.lock().overflowed
    }

    /// Harvests up to `max` completions without blocking.
    pub fn poll(&self, max: usize) -> Vec<Wc> {
        let mut inner = self.inner.lock();
        let n = max.min(inner.queue.len());
        inner.queue.drain(..n).collect()
    }

    /// Blocks until at least one completion is available (or `timeout`
    /// expires) and harvests up to `max`.
    pub fn wait(&self, max: usize, timeout: Duration) -> Vec<Wc> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        while inner.queue.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            if self.available.wait_until(&mut inner, deadline).timed_out() {
                break;
            }
        }
        let n = max.min(inner.queue.len());
        inner.queue.drain(..n).collect()
    }

    /// Number of unharvested completions.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns `true` if no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn wc(id: WrId) -> Wc {
        Wc {
            wr_id: id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 0,
            imm: None,
            qpn: Qpn(1),
        }
    }

    #[test]
    fn poll_drains_in_order() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            assert!(cq.push(wc(i)));
        }
        assert_eq!(cq.len(), 5);
        let got = cq.poll(3);
        assert_eq!(got.iter().map(|w| w.wr_id).collect::<Vec<_>>(), [0, 1, 2]);
        let got = cq.poll(10);
        assert_eq!(got.iter().map(|w| w.wr_id).collect::<Vec<_>>(), [3, 4]);
        assert!(cq.is_empty());
    }

    #[test]
    fn overflow_is_sticky() {
        let cq = CompletionQueue::new(2);
        assert!(cq.push(wc(0)));
        assert!(cq.push(wc(1)));
        assert!(!cq.push(wc(2)));
        assert!(cq.overflowed());
        assert_eq!(cq.len(), 2);
    }

    #[test]
    fn wait_times_out_when_empty() {
        let cq = CompletionQueue::new(2);
        let got = cq.wait(1, Duration::from_millis(20));
        assert!(got.is_empty());
    }

    #[test]
    fn wait_wakes_on_push() {
        let cq = Arc::new(CompletionQueue::new(4));
        let cq2 = Arc::clone(&cq);
        let t = std::thread::spawn(move || cq2.wait(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        cq.push(wc(9));
        let got = t.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].wr_id, 9);
    }

    #[test]
    fn status_is_ok() {
        assert!(WcStatus::Success.is_ok());
        assert!(!WcStatus::TransportError.is_ok());
    }
}
