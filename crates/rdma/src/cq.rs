//! Completion queues and work completions.
//!
//! Completions carry a *ready instant*: the simulated time at which the
//! operation finishes. The fabric executes a verb's data movement at post
//! time but computes its completion deadline from the virtual-time cursor
//! model, pushing the `Wc` with [`CompletionQueue::push_at`]. Harvesting
//! ([`CompletionQueue::poll`] / [`CompletionQueue::wait`]) only releases
//! entries whose ready instant has passed, so a single thread can hold
//! many operations in flight — across several connections — and observe
//! their completions in simulated-arrival order, exactly like draining a
//! real CQ.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::types::{Qpn, WrId};

/// Status of a work completion (subset of `ibv_wc_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcStatus {
    /// Operation completed successfully.
    Success,
    /// The remote side rejected the access (bad rkey, permissions, bounds).
    RemoteAccessError,
    /// Receiver had no posted receive and RNR retries were exhausted.
    RnrRetryExceeded,
    /// The peer was unreachable (partition / node removed); RC gives up
    /// after transport retries.
    TransportError,
    /// The work request was flushed because the QP entered the error state.
    WrFlushed,
}

impl WcStatus {
    /// Returns whether this status is [`WcStatus::Success`].
    pub fn is_ok(self) -> bool {
        self == WcStatus::Success
    }
}

/// Opcode recorded in a work completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcOpcode {
    /// SEND completed (sender side).
    Send,
    /// RDMA WRITE completed (sender side).
    RdmaWrite,
    /// RDMA READ completed (sender side).
    RdmaRead,
    /// Atomic compare-and-swap completed (sender side).
    CompSwap,
    /// Atomic fetch-and-add completed (sender side).
    FetchAdd,
    /// Incoming SEND consumed a receive (receiver side).
    Recv,
    /// Incoming WRITE_WITH_IMM consumed a receive (receiver side).
    RecvRdmaWithImm,
}

/// A work completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wc {
    /// The id of the work request this completion reports on.
    pub wr_id: WrId,
    /// Completion status.
    pub status: WcStatus,
    /// Operation kind.
    pub opcode: WcOpcode,
    /// Bytes transferred (receive: payload length).
    pub byte_len: u64,
    /// Immediate data, if the peer sent any.
    pub imm: Option<u32>,
    /// The queue pair this completion belongs to.
    pub qpn: Qpn,
}

#[derive(Debug, Default)]
struct CqInner {
    /// Entries ordered by ready instant (stable for equal instants, so
    /// same-batch completions keep submission order).
    queue: VecDeque<(Instant, Wc)>,
    overflowed: bool,
}

/// A completion queue.
///
/// Completions are appended by the fabric when operations finish and
/// harvested with [`CompletionQueue::poll`] (non-blocking, like
/// `ibv_poll_cq`) or [`CompletionQueue::wait`] (blocking with timeout,
/// standing in for a completion channel).
#[derive(Debug)]
pub struct CompletionQueue {
    capacity: usize,
    inner: Mutex<CqInner>,
    available: Condvar,
}

impl CompletionQueue {
    /// Creates a CQ that can hold `capacity` unharvested completions.
    pub fn new(capacity: usize) -> Self {
        CompletionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(CqInner::default()),
            available: Condvar::new(),
        }
    }

    /// Capacity in completions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a completion that is ready immediately. Returns `false`
    /// (and marks the CQ overflowed) if capacity was exceeded — a fatal
    /// condition on real hardware.
    #[cfg(test)]
    pub(crate) fn push(&self, wc: Wc) -> bool {
        self.push_at(wc, Instant::now())
    }

    /// Appends a completion that becomes harvestable at `ready`. Entries
    /// are kept sorted by ready instant; per-batch cursors are close to
    /// monotone, so the insertion scan from the back is O(1) in the
    /// common case.
    pub(crate) fn push_at(&self, wc: Wc, ready: Instant) -> bool {
        let mut inner = self.inner.lock();
        if inner.queue.len() >= self.capacity {
            inner.overflowed = true;
            return false;
        }
        let pos = inner
            .queue
            .iter()
            .rposition(|(at, _)| *at <= ready)
            .map_or(0, |p| p + 1);
        inner.queue.insert(pos, (ready, wc));
        self.available.notify_all();
        true
    }

    /// Returns whether the CQ has ever overflowed.
    pub fn overflowed(&self) -> bool {
        self.inner.lock().overflowed
    }

    /// The ready instant of the earliest entry (ready or not), if any.
    /// Issue engines sleep until this instead of spinning on `poll`.
    pub fn next_ready_at(&self) -> Option<Instant> {
        self.inner.lock().queue.front().map(|(at, _)| *at)
    }

    /// The ready instant of the *latest* entry (ready or not), if any.
    /// A waiter that can only act once a whole doorbell batch has
    /// completed sleeps until this: one long, sleepable wait instead of
    /// one short (busy-spun) wait per staggered completion.
    pub fn last_ready_at(&self) -> Option<Instant> {
        self.inner.lock().queue.back().map(|(at, _)| *at)
    }

    /// Harvests up to `max` ready completions without blocking. Entries
    /// whose ready instant lies in the future stay queued.
    pub fn poll(&self, max: usize) -> Vec<Wc> {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let ready = inner
            .queue
            .iter()
            .take_while(|(at, _)| *at <= now)
            .count()
            .min(max);
        inner.queue.drain(..ready).map(|(_, wc)| wc).collect()
    }

    /// Blocks until at least one completion is ready (or `timeout`
    /// expires) and harvests up to `max`.
    pub fn wait(&self, max: usize, timeout: Duration) -> Vec<Wc> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let now = Instant::now();
            let front = inner.queue.front().map(|(at, _)| *at);
            if let Some(at) = front {
                if at <= now {
                    break;
                }
            }
            if now >= deadline {
                return Vec::new();
            }
            // Wake at whichever comes first: the caller's deadline or the
            // front entry becoming ready. A push of an earlier entry
            // notifies the condvar, re-evaluating the wake target.
            let until = front.map_or(deadline, |at| at.min(deadline));
            self.available.wait_until(&mut inner, until);
        }
        let now = Instant::now();
        let ready = inner
            .queue
            .iter()
            .take_while(|(at, _)| *at <= now)
            .count()
            .min(max);
        inner.queue.drain(..ready).map(|(_, wc)| wc).collect()
    }

    /// Number of unharvested completions, including ones whose ready
    /// instant is still in the future.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns `true` if no completions are pending at all (counting
    /// not-yet-ready entries; an empty CQ means nothing is in flight).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn wc(id: WrId) -> Wc {
        Wc {
            wr_id: id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 0,
            imm: None,
            qpn: Qpn(1),
        }
    }

    #[test]
    fn poll_drains_in_order() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            assert!(cq.push(wc(i)));
        }
        assert_eq!(cq.len(), 5);
        let got = cq.poll(3);
        assert_eq!(got.iter().map(|w| w.wr_id).collect::<Vec<_>>(), [0, 1, 2]);
        let got = cq.poll(10);
        assert_eq!(got.iter().map(|w| w.wr_id).collect::<Vec<_>>(), [3, 4]);
        assert!(cq.is_empty());
    }

    #[test]
    fn overflow_is_sticky() {
        let cq = CompletionQueue::new(2);
        assert!(cq.push(wc(0)));
        assert!(cq.push(wc(1)));
        assert!(!cq.push(wc(2)));
        assert!(cq.overflowed());
        assert_eq!(cq.len(), 2);
    }

    #[test]
    fn wait_times_out_when_empty() {
        let cq = CompletionQueue::new(2);
        let got = cq.wait(1, Duration::from_millis(20));
        assert!(got.is_empty());
    }

    #[test]
    fn wait_wakes_on_push() {
        let cq = Arc::new(CompletionQueue::new(4));
        let cq2 = Arc::clone(&cq);
        let t = std::thread::spawn(move || cq2.wait(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        cq.push(wc(9));
        let got = t.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].wr_id, 9);
    }

    #[test]
    fn status_is_ok() {
        assert!(WcStatus::Success.is_ok());
        assert!(!WcStatus::TransportError.is_ok());
    }

    #[test]
    fn deferred_entry_hidden_until_ready() {
        let cq = CompletionQueue::new(4);
        let ready = Instant::now() + Duration::from_millis(30);
        assert!(cq.push_at(wc(1), ready));
        // Pending but not yet harvestable.
        assert_eq!(cq.len(), 1);
        assert!(!cq.is_empty());
        assert!(cq.poll(4).is_empty());
        assert_eq!(cq.next_ready_at(), Some(ready));
        // wait() sleeps through the ready instant and releases it.
        let got = cq.wait(4, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].wr_id, 1);
        assert!(Instant::now() >= ready);
    }

    #[test]
    fn deferred_entries_release_in_ready_order() {
        let cq = CompletionQueue::new(8);
        let now = Instant::now();
        // Pushed out of ready order; queue sorts by ready instant.
        assert!(cq.push_at(wc(2), now + Duration::from_millis(10)));
        assert!(cq.push_at(wc(1), now + Duration::from_millis(2)));
        assert!(cq.push_at(wc(3), now + Duration::from_millis(20)));
        std::thread::sleep(Duration::from_millis(25));
        let got = cq.poll(8);
        assert_eq!(got.iter().map(|w| w.wr_id).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn wait_honours_timeout_before_ready_instant() {
        let cq = CompletionQueue::new(4);
        assert!(cq.push_at(wc(7), Instant::now() + Duration::from_secs(10)));
        let t0 = Instant::now();
        let got = cq.wait(1, Duration::from_millis(20));
        assert!(got.is_empty());
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(cq.len(), 1, "deferred entry must survive the timeout");
    }
}
