//! Work requests: the operations posted to a queue pair.

use crate::types::{LKey, RemoteAddr, WrId};

/// A local scatter/gather entry: a window of a locally registered MR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sge {
    /// Local key of the registered memory region.
    pub lkey: LKey,
    /// Byte offset within the MR.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Sge {
    /// Creates a scatter/gather entry.
    pub fn new(lkey: LKey, offset: u64, len: u64) -> Self {
        Sge { lkey, offset, len }
    }
}

/// Payload source for SEND / WRITE work requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Gather from a registered local MR.
    Sge(Sge),
    /// Inline bytes carried in the WQE (no lkey needed); limited by the
    /// QP's `max_inline` setting.
    Inline(Vec<u8>),
}

impl Payload {
    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Sge(s) => s.len,
            Payload::Inline(b) => b.len() as u64,
        }
    }

    /// Returns `true` for an empty payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The verb-specific part of a send-side work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendOp {
    /// Two-sided SEND; consumes a posted RECV at the peer.
    Send {
        /// Payload to transmit.
        payload: Payload,
        /// Optional 32-bit immediate delivered with the receive completion.
        imm: Option<u32>,
    },
    /// One-sided RDMA WRITE into remote memory.
    Write {
        /// Payload to transmit.
        payload: Payload,
        /// Remote destination.
        remote: RemoteAddr,
        /// If set, additionally consumes a RECV at the peer and delivers
        /// this immediate (RDMA WRITE_WITH_IMM).
        imm: Option<u32>,
    },
    /// One-sided RDMA READ from remote memory into a local MR.
    Read {
        /// Local destination buffer.
        local: Sge,
        /// Remote source.
        remote: RemoteAddr,
    },
    /// Remote compare-and-swap on an 8-byte-aligned u64; the prior value is
    /// written to `local` (8 bytes).
    CompareSwap {
        /// Local 8-byte buffer receiving the prior value.
        local: Sge,
        /// Remote word address.
        remote: RemoteAddr,
        /// Expected value.
        expected: u64,
        /// Replacement value.
        swap: u64,
    },
    /// Remote fetch-and-add on an 8-byte-aligned u64; the prior value is
    /// written to `local` (8 bytes).
    FetchAdd {
        /// Local 8-byte buffer receiving the prior value.
        local: Sge,
        /// Remote word address.
        remote: RemoteAddr,
        /// Addend.
        add: u64,
    },
}

impl SendOp {
    /// Short operation name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            SendOp::Send { .. } => "SEND",
            SendOp::Write { .. } => "WRITE",
            SendOp::Read { .. } => "READ",
            SendOp::CompareSwap { .. } => "CAS",
            SendOp::FetchAdd { .. } => "FAA",
        }
    }
}

/// A send-side work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendWr {
    /// Caller-chosen id echoed in the completion.
    pub wr_id: WrId,
    /// The operation.
    pub op: SendOp,
    /// Whether a successful completion is reported on the send CQ.
    /// Errors are always reported.
    pub signaled: bool,
}

impl SendWr {
    /// Creates a signalled work request.
    pub fn new(wr_id: WrId, op: SendOp) -> Self {
        SendWr {
            wr_id,
            op,
            signaled: true,
        }
    }

    /// Creates an unsignalled work request (no success completion).
    pub fn unsignaled(wr_id: WrId, op: SendOp) -> Self {
        SendWr {
            wr_id,
            op,
            signaled: false,
        }
    }
}

/// A receive-side work request: a buffer for one incoming SEND (or the
/// completion slot for one WRITE_WITH_IMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvWr {
    /// Caller-chosen id echoed in the completion.
    pub wr_id: WrId,
    /// Buffer that an incoming SEND payload is scattered into.
    pub sge: Sge,
}

impl RecvWr {
    /// Creates a receive work request.
    pub fn new(wr_id: WrId, sge: Sge) -> Self {
        RecvWr { wr_id, sge }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RKey;

    #[test]
    fn payload_len() {
        assert_eq!(Payload::Inline(vec![1, 2, 3]).len(), 3);
        assert!(Payload::Inline(Vec::new()).is_empty());
        assert_eq!(Payload::Sge(Sge::new(LKey(1), 0, 64)).len(), 64);
    }

    #[test]
    fn op_names() {
        let remote = RemoteAddr::new(RKey(1), 0);
        let local = Sge::new(LKey(1), 0, 8);
        assert_eq!(SendOp::Read { local, remote }.name(), "READ");
        assert_eq!(
            SendOp::FetchAdd {
                local,
                remote,
                add: 1
            }
            .name(),
            "FAA"
        );
    }

    #[test]
    fn wr_constructors_set_signaled() {
        let op = SendOp::Send {
            payload: Payload::Inline(vec![0]),
            imm: None,
        };
        assert!(SendWr::new(1, op.clone()).signaled);
        assert!(!SendWr::unsignaled(1, op).signaled);
    }
}
