//! A software RDMA verbs substrate for the Gengar reproduction.
//!
//! The Gengar paper builds on one-sided RDMA verbs over InfiniBand. This
//! crate reimplements the verbs *interface semantics* in software: nodes on
//! a [`Fabric`] register memory ([`MemoryRegion`]) inside protection
//! domains, connect reliable queue pairs ([`QueuePair`]) and post one-sided
//! READ/WRITE/CAS/FAA and two-sided SEND/RECV work requests whose
//! completions appear on [`CompletionQueue`]s. Remote accesses are validated
//! against rkeys, bounds, access flags and protection domains — the checks a
//! real HCA performs.
//!
//! Timing follows the crate-level model of [`gengar_hybridmem`]: each verb
//! busy-waits the configured NIC/fabric latencies and draws payload bytes
//! from the port bandwidth token buckets, so measured wall-clock behaviour
//! reproduces the shape of a 100 Gb/s RDMA network.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind, MemRegion};
//! use gengar_rdma::{Access, Endpoint, Fabric, FabricConfig, Payload, QpOptions, RemoteAddr, Sge};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::new(FabricConfig::instant());
//! let client = fabric.add_node();
//! let server = fabric.add_node();
//!
//! // Server registers 1 MiB of simulated NVM for remote access.
//! let nvm = Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Nvm), 1 << 20)?);
//! let server_pd = server.alloc_pd();
//! let mr = server_pd.reg_mr(MemRegion::whole(nvm), Access::all())?;
//!
//! // Client registers a local scratch buffer.
//! let scratch = Arc::new(MemDevice::new(1, DeviceProfile::instant(MemKind::Dram), 4096)?);
//! let client_pd = client.alloc_pd();
//! let local = client_pd.reg_mr(MemRegion::whole(scratch), Access::all())?;
//!
//! let (ep, _server_ep) = Endpoint::pair(
//!     (&client, &client_pd),
//!     (&server, &server_pd),
//!     QpOptions::default(),
//! )?;
//!
//! // One-sided write, then read back.
//! ep.write(Payload::Inline(b"gengar".to_vec()), RemoteAddr::new(mr.rkey(), 64))?;
//! ep.read(Sge::new(local.lkey(), 0, 6), RemoteAddr::new(mr.rkey(), 64))?;
//! let mut buf = [0u8; 6];
//! local.region().read(0, &mut buf)?;
//! assert_eq!(&buf, b"gengar");
//! # Ok(())
//! # }
//! ```

pub mod cm;
pub mod cq;
pub mod error;
pub mod fabric;
pub mod fault;
pub(crate) mod metrics;
pub mod mr;
pub mod node;
pub mod qp;
pub mod types;
pub mod wr;

pub use cm::{Endpoint, PendingOps};
pub use cq::{CompletionQueue, Wc, WcOpcode, WcStatus};
pub use error::RdmaError;
pub use fabric::{Fabric, FabricConfig, QosPolicy, QosVerdict};
pub use fault::{FaultAction, FaultDecision, FaultPlane, FaultRule, PartitionFlap, Trigger};
pub use mr::{MemoryRegion, ProtectionDomain};
pub use node::RdmaNode;
pub use qp::{QpOptions, QpState, QueuePair};
pub use types::{Access, LKey, NodeId, Qpn, RKey, RemoteAddr, WrId};
pub use wr::{Payload, RecvWr, SendOp, SendWr, Sge};

// The telemetry switch travels inside [`FabricConfig`]; re-export it so
// fabric consumers don't need a direct gengar-telemetry dependency.
pub use gengar_telemetry::TelemetryConfig;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RdmaError>;
