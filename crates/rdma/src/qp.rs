//! Reliable-connected queue pairs.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::cq::CompletionQueue;
use crate::error::RdmaError;
use crate::metrics::FabricMetrics;
use crate::node::RdmaNode;
use crate::types::{NodeId, Qpn};
use crate::wr::{RecvWr, SendWr};

/// Queue-pair state (condensed RC state machine: the INIT/RTR handshake is
/// folded into `connect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created; must be connected before use.
    Reset,
    /// Connected and able to post sends/receives.
    ReadyToSend,
    /// A transport or remote error occurred; all further posts fail.
    Error,
}

impl QpState {
    fn name(self) -> &'static str {
        match self {
            QpState::Reset => "RESET",
            QpState::ReadyToSend => "RTS",
            QpState::Error => "ERROR",
        }
    }
}

/// Tunable queue-pair attributes.
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// Maximum inline payload carried in the WQE itself.
    pub max_inline: usize,
    /// Maximum number of posted, unconsumed receives.
    pub max_recv: usize,
    /// How long an incoming SEND waits for a receive to be posted before
    /// failing with RNR-retry-exceeded.
    pub rnr_timeout: Duration,
}

impl Default for QpOptions {
    fn default() -> Self {
        QpOptions {
            max_inline: 220,
            max_recv: 4096,
            rnr_timeout: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Default)]
struct RecvQueue {
    queue: VecDeque<RecvWr>,
}

/// A reliable-connected queue pair.
///
/// Work requests are executed synchronously inside [`QueuePair::post_send`]:
/// the posting thread emulates NIC + fabric + target device and the
/// completion is visible on the send CQ when `post_send` returns. This
/// collapses the asynchronous NIC pipeline of real hardware — per-operation
/// latency is modelled faithfully, while single-thread operation pipelining
/// is not (throughput experiments scale by thread count, as the Gengar
/// evaluation does).
#[derive(Debug)]
pub struct QueuePair {
    node: Weak<RdmaNode>,
    qpn: Qpn,
    pd_id: u32,
    opts: QpOptions,
    state: Mutex<QpState>,
    /// The completion status that moved the QP to error, for diagnostics
    /// ([`RdmaError::QpError`]). First writer wins; cleared by `reset`.
    last_error: Mutex<Option<crate::cq::WcStatus>>,
    remote: Mutex<Option<(NodeId, Qpn)>>,
    send_cq: Arc<CompletionQueue>,
    recv_cq: Arc<CompletionQueue>,
    recvs: Mutex<RecvQueue>,
    recv_posted: Condvar,
    metrics: FabricMetrics,
}

impl QueuePair {
    pub(crate) fn new(
        node: Weak<RdmaNode>,
        qpn: Qpn,
        pd_id: u32,
        send_cq: Arc<CompletionQueue>,
        recv_cq: Arc<CompletionQueue>,
        opts: QpOptions,
        metrics: FabricMetrics,
    ) -> Self {
        QueuePair {
            node,
            qpn,
            pd_id,
            opts,
            state: Mutex::new(QpState::Reset),
            last_error: Mutex::new(None),
            remote: Mutex::new(None),
            send_cq,
            recv_cq,
            recvs: Mutex::new(RecvQueue::default()),
            recv_posted: Condvar::new(),
            metrics,
        }
    }

    /// Queue-pair number.
    pub fn qpn(&self) -> Qpn {
        self.qpn
    }

    /// Protection domain this QP belongs to.
    pub fn pd_id(&self) -> u32 {
        self.pd_id
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        *self.state.lock()
    }

    /// The connected peer, if any.
    pub fn remote(&self) -> Option<(NodeId, Qpn)> {
        *self.remote.lock()
    }

    /// Send completion queue.
    pub fn send_cq(&self) -> &Arc<CompletionQueue> {
        &self.send_cq
    }

    /// Receive completion queue.
    pub fn recv_cq(&self) -> &Arc<CompletionQueue> {
        &self.recv_cq
    }

    /// QP attributes.
    pub fn options(&self) -> &QpOptions {
        &self.opts
    }

    /// Connects this QP to a remote peer (folds INIT→RTR→RTS).
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::InvalidQpState`] unless the QP is in RESET.
    pub fn connect(&self, remote_node: NodeId, remote_qpn: Qpn) -> Result<(), RdmaError> {
        let mut state = self.state.lock();
        if *state != QpState::Reset {
            return Err(RdmaError::InvalidQpState {
                state: state.name(),
                operation: "connect",
            });
        }
        // A node that has been detached from the fabric (machine death via
        // [`crate::Fabric::remove_node`]) can never be reached again:
        // refuse the connect with the definitive error instead of letting
        // every send discover the loss one TransportError at a time.
        // In-flight operations to a dying node still surface as transport
        // errors; only *new* connections get this certificate.
        if let Some(fabric) = self.node.upgrade().and_then(|n| n.fabric()) {
            if fabric.node(remote_node).is_none() {
                return Err(RdmaError::NodeNotFound(remote_node));
            }
        }
        *self.remote.lock() = Some((remote_node, remote_qpn));
        *state = QpState::ReadyToSend;
        Ok(())
    }

    /// Moves the QP to the error state (local fault or fabric decision).
    pub fn set_error(&self) {
        self.fail(crate::cq::WcStatus::WrFlushed);
    }

    /// Moves the QP to the error state, recording `status` as the cause.
    /// The first recorded status wins (later failures are flushes).
    pub fn fail(&self, status: crate::cq::WcStatus) {
        {
            let mut last = self.last_error.lock();
            if last.is_none() {
                *last = Some(status);
            }
        }
        *self.state.lock() = QpState::Error;
        // Wake anyone blocked waiting for receives so they observe the error.
        self.recv_posted.notify_all();
    }

    /// The completion status that moved the QP to error, if any.
    pub fn error_status(&self) -> Option<crate::cq::WcStatus> {
        *self.last_error.lock()
    }

    /// Resets an errored QP back to RESET so it can be reconnected
    /// (equivalent to cycling a real QP through RESET).
    pub fn reset(&self) {
        let mut state = self.state.lock();
        *self.remote.lock() = None;
        self.recvs.lock().queue.clear();
        *self.last_error.lock() = None;
        *state = QpState::Reset;
    }

    /// Posts a receive buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::RecvQueueFull`] if `max_recv` receives are
    /// already pending, or [`RdmaError::InvalidQpState`] on an errored QP.
    pub fn post_recv(&self, wr: RecvWr) -> Result<(), RdmaError> {
        let state = *self.state.lock();
        if state == QpState::Error {
            return Err(RdmaError::InvalidQpState {
                state: state.name(),
                operation: "post_recv",
            });
        }
        let mut recvs = self.recvs.lock();
        if recvs.queue.len() >= self.opts.max_recv {
            return Err(RdmaError::RecvQueueFull);
        }
        recvs.queue.push_back(wr);
        drop(recvs);
        self.metrics.recv_posted.inc();
        self.recv_posted.notify_all();
        Ok(())
    }

    /// Number of posted, unconsumed receives.
    pub fn posted_recvs(&self) -> usize {
        self.recvs.lock().queue.len()
    }

    /// Consumes one posted receive, blocking up to the RNR timeout.
    /// Returns `None` if the timeout expires or the QP errors out.
    pub(crate) fn take_recv(&self) -> Option<RecvWr> {
        let deadline = Instant::now() + self.opts.rnr_timeout;
        let mut recvs = self.recvs.lock();
        loop {
            if let Some(wr) = recvs.queue.pop_front() {
                return Some(wr);
            }
            if *self.state.lock() == QpState::Error {
                return None;
            }
            if self
                .recv_posted
                .wait_until(&mut recvs, deadline)
                .timed_out()
            {
                let wr = recvs.queue.pop_front();
                if wr.is_none() {
                    self.metrics.rnr_timeouts.inc();
                }
                return wr;
            }
        }
    }

    /// Posts a send-side work request and executes it to completion.
    ///
    /// On success the completion (if signalled) is already on the send CQ
    /// when this returns. Transport-level failures are reported as error
    /// completions, not as `Err` (see [`RdmaError`]).
    ///
    /// # Errors
    ///
    /// Fails fast with [`RdmaError`] for programming errors: QP not
    /// connected or errored, unknown lkey, sge out of bounds, inline
    /// payload too large.
    pub fn post_send(self: &Arc<Self>, wr: SendWr) -> Result<(), RdmaError> {
        {
            let state = *self.state.lock();
            if state != QpState::ReadyToSend {
                return Err(RdmaError::InvalidQpState {
                    state: state.name(),
                    operation: "post_send",
                });
            }
        }
        let node = self.node.upgrade().ok_or(RdmaError::NotConnected)?;
        let fabric = node.fabric().ok_or(RdmaError::NotConnected)?;
        fabric.execute(&node, self, wr)
    }

    /// Posts a list of send-side work requests with a single doorbell and
    /// executes them to completion, in order.
    ///
    /// The initiator NIC pays its per-WQE processing cost for every entry
    /// but wire propagation and responder processing are amortised over
    /// the list, so a batch of `n` small operations completes in far less
    /// than `n` serial round trips. Completions are delivered per WR on
    /// the send CQ with reliable-connection ordering: if a WR fails, later
    /// WRs in the list are flushed with `WrFlushed`.
    ///
    /// # Errors
    ///
    /// Fails fast with [`RdmaError`] for programming errors in *any* WR
    /// (unknown lkey, sge out of bounds, inline payload too large, QP not
    /// connected or errored); in that case no WR has executed.
    pub fn post_send_list(self: &Arc<Self>, wrs: Vec<SendWr>) -> Result<(), RdmaError> {
        {
            let state = *self.state.lock();
            if state != QpState::ReadyToSend {
                return Err(RdmaError::InvalidQpState {
                    state: state.name(),
                    operation: "post_send_list",
                });
            }
        }
        let node = self.node.upgrade().ok_or(RdmaError::NotConnected)?;
        let fabric = node.fabric().ok_or(RdmaError::NotConnected)?;
        fabric.execute_batch(&node, self, wrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};
    use crate::types::LKey;
    use crate::wr::Sge;

    fn setup() -> (Arc<Fabric>, Arc<RdmaNode>) {
        let fabric = Fabric::new(FabricConfig::instant());
        let node = fabric.add_node();
        (fabric, node)
    }

    fn make_qp(node: &Arc<RdmaNode>) -> Arc<QueuePair> {
        let pd = node.alloc_pd();
        let send_cq = Arc::new(CompletionQueue::new(16));
        let recv_cq = Arc::new(CompletionQueue::new(16));
        node.create_qp(&pd, send_cq, recv_cq, QpOptions::default())
    }

    #[test]
    fn fresh_qp_is_reset() {
        let (_f, node) = setup();
        let qp = make_qp(&node);
        assert_eq!(qp.state(), QpState::Reset);
        assert!(qp.remote().is_none());
    }

    #[test]
    fn connect_transitions_to_rts() {
        let (fabric, node) = setup();
        let peer = fabric.add_node();
        let qp = make_qp(&node);
        qp.connect(peer.id(), Qpn(3)).unwrap();
        assert_eq!(qp.state(), QpState::ReadyToSend);
        assert_eq!(qp.remote(), Some((peer.id(), Qpn(3))));
        // Double connect is rejected.
        assert!(qp.connect(peer.id(), Qpn(3)).is_err());
    }

    #[test]
    fn connect_to_removed_node_reports_node_not_found() {
        let (fabric, node) = setup();
        let peer = fabric.add_node();
        let dead = peer.id();
        fabric.remove_node(dead);
        let qp = make_qp(&node);
        assert_eq!(
            qp.connect(dead, Qpn(3)).unwrap_err(),
            RdmaError::NodeNotFound(dead)
        );
        // The QP is untouched and can still connect to a live peer.
        assert_eq!(qp.state(), QpState::Reset);
        let alive = fabric.add_node();
        qp.connect(alive.id(), Qpn(3)).unwrap();
    }

    #[test]
    fn reset_clears_connection() {
        let (fabric, node) = setup();
        let peer = fabric.add_node();
        let qp = make_qp(&node);
        qp.connect(peer.id(), Qpn(3)).unwrap();
        qp.set_error();
        assert_eq!(qp.state(), QpState::Error);
        qp.reset();
        assert_eq!(qp.state(), QpState::Reset);
        assert!(qp.remote().is_none());
        qp.connect(peer.id(), Qpn(1)).unwrap();
    }

    #[test]
    fn recv_queue_capacity_enforced() {
        let (_f, node) = setup();
        let pd = node.alloc_pd();
        let send_cq = Arc::new(CompletionQueue::new(16));
        let recv_cq = Arc::new(CompletionQueue::new(16));
        let opts = QpOptions {
            max_recv: 2,
            ..Default::default()
        };
        let qp = node.create_qp(&pd, send_cq, recv_cq, opts);
        let sge = Sge::new(LKey(1), 0, 8);
        qp.post_recv(RecvWr::new(1, sge)).unwrap();
        qp.post_recv(RecvWr::new(2, sge)).unwrap();
        assert_eq!(
            qp.post_recv(RecvWr::new(3, sge)).unwrap_err(),
            RdmaError::RecvQueueFull
        );
        assert_eq!(qp.posted_recvs(), 2);
    }

    #[test]
    fn take_recv_times_out() {
        let (_f, node) = setup();
        let pd = node.alloc_pd();
        let send_cq = Arc::new(CompletionQueue::new(16));
        let recv_cq = Arc::new(CompletionQueue::new(16));
        let opts = QpOptions {
            rnr_timeout: Duration::from_millis(10),
            ..Default::default()
        };
        let qp = node.create_qp(&pd, send_cq, recv_cq, opts);
        let t0 = Instant::now();
        assert!(qp.take_recv().is_none());
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn post_send_requires_rts() {
        let (_f, node) = setup();
        let qp = make_qp(&node);
        let wr = SendWr::new(
            1,
            crate::wr::SendOp::Send {
                payload: crate::wr::Payload::Inline(vec![1]),
                imm: None,
            },
        );
        assert!(matches!(
            qp.post_send(wr),
            Err(RdmaError::InvalidQpState { .. })
        ));
    }
}
