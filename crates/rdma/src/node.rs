//! Per-node RDMA context (one simulated machine with one NIC).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};

use gengar_hybridmem::BandwidthLimiter;
use parking_lot::RwLock;

use crate::cq::CompletionQueue;
use crate::fabric::Fabric;
use crate::metrics::FabricMetrics;
use crate::mr::{MemoryRegion, ProtectionDomain};
use crate::qp::{QpOptions, QueuePair};
use crate::types::{LKey, NodeId, Qpn};

/// One node on the fabric: a machine with an RDMA NIC, registered memory
/// regions and queue pairs.
///
/// Created via [`Fabric::add_node`]. Memory registration goes through a
/// [`ProtectionDomain`] from [`RdmaNode::alloc_pd`].
pub struct RdmaNode {
    id: NodeId,
    fabric: Weak<Fabric>,
    next_key: Arc<AtomicU32>,
    next_qpn: AtomicU32,
    next_pd: AtomicU32,
    mrs: RwLock<HashMap<u32, Arc<MemoryRegion>>>,
    qps: RwLock<HashMap<Qpn, Arc<QueuePair>>>,
    nic_bw: BandwidthLimiter,
    metrics: FabricMetrics,
    self_ref: RwLock<Weak<RdmaNode>>,
}

impl std::fmt::Debug for RdmaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaNode")
            .field("id", &self.id)
            .field("mrs", &self.mrs.read().len())
            .field("qps", &self.qps.read().len())
            .finish()
    }
}

impl RdmaNode {
    pub(crate) fn new(
        id: NodeId,
        fabric: Weak<Fabric>,
        nic_bw_bytes_per_sec: u64,
        metrics: FabricMetrics,
    ) -> Arc<Self> {
        let node = Arc::new(RdmaNode {
            id,
            fabric,
            next_key: Arc::new(AtomicU32::new(0)),
            next_qpn: AtomicU32::new(0),
            next_pd: AtomicU32::new(0),
            mrs: RwLock::new(HashMap::new()),
            qps: RwLock::new(HashMap::new()),
            nic_bw: BandwidthLimiter::new(nic_bw_bytes_per_sec),
            metrics,
            self_ref: RwLock::new(Weak::new()),
        });
        *node.self_ref.write() = Arc::downgrade(&node);
        node
    }

    /// This node's fabric identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The fabric this node is attached to, if it still exists.
    pub fn fabric(&self) -> Option<Arc<Fabric>> {
        self.fabric.upgrade()
    }

    /// NIC port bandwidth limiter (shared by all QPs on the node).
    pub(crate) fn nic_bw(&self) -> &BandwidthLimiter {
        &self.nic_bw
    }

    /// Allocates a protection domain.
    pub fn alloc_pd(&self) -> ProtectionDomain {
        let id = self.next_pd.fetch_add(1, Ordering::Relaxed);
        ProtectionDomain::new(self.self_ref.read().clone(), id, Arc::clone(&self.next_key))
    }

    /// Creates a completion queue with the given capacity.
    pub fn create_cq(&self, capacity: usize) -> Arc<CompletionQueue> {
        Arc::new(CompletionQueue::new(capacity))
    }

    /// Creates a queue pair in `pd` bound to the given CQs.
    pub fn create_qp(
        &self,
        pd: &ProtectionDomain,
        send_cq: Arc<CompletionQueue>,
        recv_cq: Arc<CompletionQueue>,
        opts: QpOptions,
    ) -> Arc<QueuePair> {
        let qpn = Qpn(self.next_qpn.fetch_add(1, Ordering::Relaxed) + 1);
        let qp = Arc::new(QueuePair::new(
            self.self_ref.read().clone(),
            qpn,
            pd.id(),
            send_cq,
            recv_cq,
            opts,
            self.metrics.clone(),
        ));
        self.qps.write().insert(qpn, Arc::clone(&qp));
        qp
    }

    /// Looks up a queue pair by number.
    pub fn qp(&self, qpn: Qpn) -> Option<Arc<QueuePair>> {
        self.qps.read().get(&qpn).cloned()
    }

    pub(crate) fn insert_mr(&self, mr: Arc<MemoryRegion>) {
        self.mrs.write().insert(mr.lkey().0, mr);
    }

    /// Looks up an MR by key (lkeys and rkeys share the key space).
    pub fn mr_by_key(&self, key: u32) -> Option<Arc<MemoryRegion>> {
        self.mrs.read().get(&key).cloned()
    }

    /// Deregisters a memory region. Returns whether it existed.
    pub fn dereg_mr(&self, lkey: LKey) -> bool {
        self.mrs.write().remove(&lkey.0).is_some()
    }

    /// Number of registered MRs.
    pub fn mr_count(&self) -> usize {
        self.mrs.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::types::Access;
    use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind, MemRegion};

    #[test]
    fn node_ids_increment() {
        let fabric = Fabric::new(FabricConfig::instant());
        let a = fabric.add_node();
        let b = fabric.add_node();
        assert_ne!(a.id(), b.id());
        assert!(fabric.node(a.id()).is_some());
    }

    #[test]
    fn dereg_mr_removes() {
        let fabric = Fabric::new(FabricConfig::instant());
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        let dev = Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), 64).unwrap());
        let mr = pd.reg_mr(MemRegion::whole(dev), Access::all()).unwrap();
        assert_eq!(node.mr_count(), 1);
        assert!(node.dereg_mr(mr.lkey()));
        assert!(!node.dereg_mr(mr.lkey()));
        assert_eq!(node.mr_count(), 0);
    }

    #[test]
    fn qp_lookup() {
        let fabric = Fabric::new(FabricConfig::instant());
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        let qp = node.create_qp(
            &pd,
            node.create_cq(8),
            node.create_cq(8),
            QpOptions::default(),
        );
        assert!(node.qp(qp.qpn()).is_some());
        assert!(node.qp(Qpn(999)).is_none());
    }
}
