//! Connection management and the synchronous [`Endpoint`] convenience API.
//!
//! Real deployments exchange QP numbers out of band (TCP, RDMA CM). In the
//! simulation the exchange is a function call: [`Endpoint::pair`] creates
//! two RC queue pairs, wires them together and returns both ends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cq::{Wc, WcStatus};
use crate::error::RdmaError;
use crate::mr::ProtectionDomain;
use crate::node::RdmaNode;
use crate::qp::{QpOptions, QueuePair};
use crate::types::RemoteAddr;
use crate::wr::{Payload, RecvWr, SendOp, SendWr, Sge};

/// Default patience of the blocking helpers.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// One end of an RC connection, with synchronous one-operation-at-a-time
/// helpers.
///
/// An `Endpoint` owns its queue pair and both completion queues. The
/// blocking helpers (`read`, `write`, `send`, ...) post one work request
/// and wait for its completion; they are designed for one thread driving
/// one endpoint, which is how Gengar clients use their connections.
#[derive(Debug)]
pub struct Endpoint {
    node: Arc<RdmaNode>,
    qp: Arc<QueuePair>,
    next_wr: AtomicU64,
    op_timeout: Duration,
}

impl Endpoint {
    /// Creates a connected pair of endpoints between `a` and `b`.
    ///
    /// Each endpoint's QP lives in the supplied protection domain, so MRs
    /// registered through those PDs are usable with the returned endpoints.
    ///
    /// # Errors
    ///
    /// Propagates queue-pair connection errors (never, in practice, for
    /// freshly created QPs).
    pub fn pair(
        a: (&Arc<RdmaNode>, &ProtectionDomain),
        b: (&Arc<RdmaNode>, &ProtectionDomain),
        opts: QpOptions,
    ) -> Result<(Endpoint, Endpoint), RdmaError> {
        let (a_node, a_pd) = a;
        let (b_node, b_pd) = b;
        let qa = a_node.create_qp(
            a_pd,
            a_node.create_cq(4096),
            a_node.create_cq(4096),
            opts.clone(),
        );
        let qb = b_node.create_qp(b_pd, b_node.create_cq(4096), b_node.create_cq(4096), opts);
        qa.connect(b_node.id(), qb.qpn())?;
        qb.connect(a_node.id(), qa.qpn())?;
        Ok((
            Endpoint::from_qp(Arc::clone(a_node), qa),
            Endpoint::from_qp(Arc::clone(b_node), qb),
        ))
    }

    /// Wraps an already-connected queue pair.
    pub fn from_qp(node: Arc<RdmaNode>, qp: Arc<QueuePair>) -> Endpoint {
        Endpoint {
            node,
            qp,
            next_wr: AtomicU64::new(1),
            op_timeout: DEFAULT_OP_TIMEOUT,
        }
    }

    /// The owning node.
    pub fn node(&self) -> &Arc<RdmaNode> {
        &self.node
    }

    /// The underlying queue pair.
    pub fn qp(&self) -> &Arc<QueuePair> {
        &self.qp
    }

    /// Changes the patience of the blocking helpers.
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    /// The patience of the blocking helpers.
    pub fn op_timeout(&self) -> Duration {
        self.op_timeout
    }

    fn next_wr_id(&self) -> u64 {
        self.next_wr.fetch_add(1, Ordering::Relaxed)
    }

    /// Posts `op` and waits for its completion.
    ///
    /// # Errors
    ///
    /// Programming errors surface immediately; transport/remote failures
    /// surface as [`RdmaError::CompletionError`]; patience exhaustion as
    /// [`RdmaError::Timeout`] while the QP is healthy, or
    /// [`RdmaError::QpError`] if the QP died while waiting (e.g. a
    /// different operation's error completion flushed this one).
    pub fn execute(&self, op: SendOp) -> Result<Wc, RdmaError> {
        let wr_id = self.next_wr_id();
        self.qp.post_send(SendWr::new(wr_id, op))?;
        let deadline = Instant::now() + self.op_timeout;
        loop {
            for wc in self.qp.send_cq().poll(16) {
                if wc.wr_id == wr_id {
                    if wc.status.is_ok() {
                        return Ok(wc);
                    }
                    return Err(RdmaError::CompletionError(wc.status));
                }
                // Stale completion from an earlier unmatched wait: drop it.
            }
            let timed_out = Instant::now() >= deadline;
            if self.qp.state() == crate::qp::QpState::Error {
                // Our completion is not coming. Report the status that
                // killed the QP so callers know a reconnect is required.
                return Err(RdmaError::QpError(
                    self.qp.error_status().unwrap_or(WcStatus::WrFlushed),
                ));
            }
            if timed_out {
                return Err(RdmaError::Timeout);
            }
            std::hint::spin_loop();
        }
    }

    /// Posts `ops` as one doorbell batch and waits for every completion.
    ///
    /// Returns one `Result` per operation, in posting order. Completions
    /// may drain out of order from the CQ; they are matched back to their
    /// slot by wr_id. A batch of one is exactly [`Endpoint::execute`].
    ///
    /// # Errors
    ///
    /// The outer `Err` is reserved for programming errors that fail the
    /// post itself (nothing executed). Per-operation transport failures
    /// land in the inner results: [`RdmaError::CompletionError`] for an
    /// error completion, [`RdmaError::QpError`] for operations flushed by
    /// a connection death, [`RdmaError::Timeout`] for operations whose
    /// completion never arrived (e.g. dropped on the wire).
    pub fn execute_many(&self, ops: Vec<SendOp>) -> Result<Vec<Result<Wc, RdmaError>>, RdmaError> {
        let n = ops.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let base = self.next_wr.fetch_add(n as u64, Ordering::Relaxed);
        let wrs: Vec<SendWr> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| SendWr::new(base + i as u64, op))
            .collect();
        self.qp.post_send_list(wrs)?;

        let mut out: Vec<Option<Result<Wc, RdmaError>>> = vec![None; n];
        let mut pending = n;
        let deadline = Instant::now() + self.op_timeout;
        loop {
            let drained = self.qp.send_cq().poll(64);
            let progressed = !drained.is_empty();
            for wc in drained {
                // Stale completions from earlier unmatched waits fall
                // outside [base, base + n) and are dropped.
                let slot = match wc.wr_id.checked_sub(base) {
                    Some(slot) if (slot as usize) < n => slot as usize,
                    _ => continue,
                };
                if out[slot].is_some() {
                    continue;
                }
                out[slot] = Some(if wc.status.is_ok() {
                    Ok(wc)
                } else {
                    Err(RdmaError::CompletionError(wc.status))
                });
                pending -= 1;
            }
            if pending == 0 {
                break;
            }
            if progressed {
                // Drain the CQ fully before declaring anything missing.
                continue;
            }
            let timed_out = Instant::now() >= deadline;
            if self.qp.state() == crate::qp::QpState::Error {
                // Remaining completions are not coming; report the status
                // that killed the QP so callers know to reconnect.
                let err = RdmaError::QpError(self.qp.error_status().unwrap_or(WcStatus::WrFlushed));
                for slot in out.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(err.clone()));
                }
                break;
            }
            if timed_out {
                // Operations lost on the wire (dropped requests) never
                // complete; everything else in the batch still did.
                for slot in out.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(RdmaError::Timeout));
                }
                break;
            }
            std::hint::spin_loop();
        }
        Ok(out.into_iter().map(|s| s.expect("slot filled")).collect())
    }

    /// One-sided READ of `local.len` bytes from `remote` into `local`.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn read(&self, local: Sge, remote: RemoteAddr) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Read { local, remote })
    }

    /// One-sided WRITE of `payload` to `remote`.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn write(&self, payload: Payload, remote: RemoteAddr) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Write {
            payload,
            remote,
            imm: None,
        })
    }

    /// One-sided WRITE_WITH_IMM: places `payload` at `remote` and consumes
    /// a receive at the peer, delivering `imm`.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn write_with_imm(
        &self,
        payload: Payload,
        remote: RemoteAddr,
        imm: u32,
    ) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Write {
            payload,
            remote,
            imm: Some(imm),
        })
    }

    /// Two-sided SEND.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn send(&self, payload: Payload, imm: Option<u32>) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Send { payload, imm })
    }

    /// Remote compare-and-swap; the prior value lands in `local` (8 bytes).
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn compare_swap(
        &self,
        local: Sge,
        remote: RemoteAddr,
        expected: u64,
        swap: u64,
    ) -> Result<Wc, RdmaError> {
        self.execute(SendOp::CompareSwap {
            local,
            remote,
            expected,
            swap,
        })
    }

    /// Remote fetch-and-add; the prior value lands in `local` (8 bytes).
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn fetch_add(&self, local: Sge, remote: RemoteAddr, add: u64) -> Result<Wc, RdmaError> {
        self.execute(SendOp::FetchAdd { local, remote, add })
    }

    /// Posts a receive buffer.
    ///
    /// # Errors
    ///
    /// See [`QueuePair::post_recv`].
    pub fn post_recv(&self, sge: Sge) -> Result<u64, RdmaError> {
        let wr_id = self.next_wr_id();
        self.qp.post_recv(RecvWr::new(wr_id, sge))?;
        Ok(wr_id)
    }

    /// Waits for one receive completion.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Timeout`] if nothing arrives in `timeout` and the QP is
    /// healthy; [`RdmaError::QpError`] if the QP is dead (nothing will ever
    /// arrive); [`RdmaError::CompletionError`] if the receive completed
    /// with error.
    pub fn recv(&self, timeout: Duration) -> Result<Wc, RdmaError> {
        let got = self.qp.recv_cq().wait(1, timeout);
        match got.first() {
            Some(wc) if wc.status == WcStatus::Success => Ok(*wc),
            Some(wc) => Err(RdmaError::CompletionError(wc.status)),
            None if self.qp.state() == crate::qp::QpState::Error => Err(RdmaError::QpError(
                self.qp.error_status().unwrap_or(WcStatus::WrFlushed),
            )),
            None => Err(RdmaError::Timeout),
        }
    }
}
