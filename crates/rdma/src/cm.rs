//! Connection management and the synchronous [`Endpoint`] convenience API.
//!
//! Real deployments exchange QP numbers out of band (TCP, RDMA CM). In the
//! simulation the exchange is a function call: [`Endpoint::pair`] creates
//! two RC queue pairs, wires them together and returns both ends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gengar_hybridmem::latency::spin_until;

use crate::cq::{Wc, WcStatus};
use crate::error::RdmaError;
use crate::mr::ProtectionDomain;
use crate::node::RdmaNode;
use crate::qp::{QpOptions, QueuePair};
use crate::types::RemoteAddr;
use crate::wr::{Payload, RecvWr, SendOp, SendWr, Sge};

/// Default patience of the blocking helpers.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// A posted doorbell batch whose completions are still being harvested.
///
/// Returned by [`Endpoint::post_many`]; drive it with
/// [`Endpoint::poll_pending`] (non-blocking) and sleep until
/// [`Endpoint::pending_next_wake`] between passes. One `PendingOps` per
/// batch; a single endpoint can only be driven by one thread, but one
/// thread can hold `PendingOps` for *several endpoints* in flight at once
/// — that is the whole point of the completion-driven issue engine.
#[derive(Debug)]
pub struct PendingOps {
    base: u64,
    out: Vec<Option<Result<Wc, RdmaError>>>,
    pending: usize,
    deadline: Instant,
}

impl PendingOps {
    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Returns `true` once every operation has a result.
    pub fn is_done(&self) -> bool {
        self.pending == 0
    }

    /// Consumes the batch and returns one result per operation, in
    /// posting order. Call only after [`PendingOps::is_done`]; operations
    /// still outstanding are reported as [`RdmaError::Timeout`].
    pub fn into_results(self) -> Vec<Result<Wc, RdmaError>> {
        self.out
            .into_iter()
            .map(|s| s.unwrap_or(Err(RdmaError::Timeout)))
            .collect()
    }
}

/// One end of an RC connection, with synchronous one-operation-at-a-time
/// helpers.
///
/// An `Endpoint` owns its queue pair and both completion queues. The
/// blocking helpers (`read`, `write`, `send`, ...) post one work request
/// and wait for its completion; they are designed for one thread driving
/// one endpoint, which is how Gengar clients use their connections.
#[derive(Debug)]
pub struct Endpoint {
    node: Arc<RdmaNode>,
    qp: Arc<QueuePair>,
    next_wr: AtomicU64,
    op_timeout: Duration,
}

impl Endpoint {
    /// Creates a connected pair of endpoints between `a` and `b`.
    ///
    /// Each endpoint's QP lives in the supplied protection domain, so MRs
    /// registered through those PDs are usable with the returned endpoints.
    ///
    /// # Errors
    ///
    /// Propagates queue-pair connection errors (never, in practice, for
    /// freshly created QPs).
    pub fn pair(
        a: (&Arc<RdmaNode>, &ProtectionDomain),
        b: (&Arc<RdmaNode>, &ProtectionDomain),
        opts: QpOptions,
    ) -> Result<(Endpoint, Endpoint), RdmaError> {
        let (a_node, a_pd) = a;
        let (b_node, b_pd) = b;
        let qa = a_node.create_qp(
            a_pd,
            a_node.create_cq(4096),
            a_node.create_cq(4096),
            opts.clone(),
        );
        let qb = b_node.create_qp(b_pd, b_node.create_cq(4096), b_node.create_cq(4096), opts);
        qa.connect(b_node.id(), qb.qpn())?;
        qb.connect(a_node.id(), qa.qpn())?;
        Ok((
            Endpoint::from_qp(Arc::clone(a_node), qa),
            Endpoint::from_qp(Arc::clone(b_node), qb),
        ))
    }

    /// Wraps an already-connected queue pair.
    pub fn from_qp(node: Arc<RdmaNode>, qp: Arc<QueuePair>) -> Endpoint {
        Endpoint {
            node,
            qp,
            next_wr: AtomicU64::new(1),
            op_timeout: DEFAULT_OP_TIMEOUT,
        }
    }

    /// The owning node.
    pub fn node(&self) -> &Arc<RdmaNode> {
        &self.node
    }

    /// The underlying queue pair.
    pub fn qp(&self) -> &Arc<QueuePair> {
        &self.qp
    }

    /// Changes the patience of the blocking helpers.
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    /// The patience of the blocking helpers.
    pub fn op_timeout(&self) -> Duration {
        self.op_timeout
    }

    fn next_wr_id(&self) -> u64 {
        self.next_wr.fetch_add(1, Ordering::Relaxed)
    }

    /// Posts `op` and waits for its completion.
    ///
    /// # Errors
    ///
    /// Programming errors surface immediately; transport/remote failures
    /// surface as [`RdmaError::CompletionError`]; patience exhaustion as
    /// [`RdmaError::Timeout`] while the QP is healthy, or
    /// [`RdmaError::QpError`] if the QP died while waiting (e.g. a
    /// different operation's error completion flushed this one).
    pub fn execute(&self, op: SendOp) -> Result<Wc, RdmaError> {
        let mut results = self.execute_many(vec![op])?;
        results.pop().expect("one result for one op")
    }

    /// Posts `ops` as one doorbell batch without waiting for completions.
    ///
    /// The returned [`PendingOps`] tracks the batch; harvest it with
    /// [`Endpoint::poll_pending`]. Post batches on *several* endpoints
    /// first, then poll them all: that is how one thread keeps every
    /// server busy simultaneously.
    ///
    /// # Errors
    ///
    /// Only programming errors that fail the post itself (nothing
    /// executed). Per-operation failures surface through the results.
    pub fn post_many(&self, ops: Vec<SendOp>) -> Result<PendingOps, RdmaError> {
        let n = ops.len();
        let deadline = Instant::now() + self.op_timeout;
        if n > 0 {
            let base = self.next_wr.fetch_add(n as u64, Ordering::Relaxed);
            let wrs: Vec<SendWr> = ops
                .into_iter()
                .enumerate()
                .map(|(i, op)| SendWr::new(base + i as u64, op))
                .collect();
            self.qp.post_send_list(wrs)?;
            Ok(PendingOps {
                base,
                out: vec![None; n],
                pending: n,
                deadline,
            })
        } else {
            Ok(PendingOps {
                base: 0,
                out: Vec::new(),
                pending: 0,
                deadline,
            })
        }
    }

    /// One non-blocking harvest pass over a posted batch. Returns `true`
    /// once every operation has a result (then [`PendingOps::into_results`]
    /// yields them).
    ///
    /// Failure handling mirrors the blocking path: error completions land
    /// in their slot as [`RdmaError::CompletionError`]; when nothing at
    /// all is left in flight on the send CQ the remaining slots fill with
    /// [`RdmaError::QpError`] (connection death) or [`RdmaError::Timeout`]
    /// (operations dropped on the wire — their completions are never
    /// coming, so there is no point waiting out the full patience); the
    /// batch deadline backstops everything else.
    pub fn poll_pending(&self, p: &mut PendingOps) -> bool {
        if p.pending == 0 {
            return true;
        }
        let n = p.out.len();
        loop {
            let drained = self.qp.send_cq().poll(64);
            if drained.is_empty() {
                break;
            }
            for wc in drained {
                // Stale completions from earlier unmatched waits fall
                // outside [base, base + n) and are dropped.
                let slot = match wc.wr_id.checked_sub(p.base) {
                    Some(slot) if (slot as usize) < n => slot as usize,
                    _ => continue,
                };
                if p.out[slot].is_some() {
                    continue;
                }
                p.out[slot] = Some(if wc.status.is_ok() {
                    Ok(wc)
                } else {
                    Err(RdmaError::CompletionError(wc.status))
                });
                p.pending -= 1;
            }
            if p.pending == 0 {
                return true;
            }
        }
        // The fabric queues every completion (even deferred ones) at post
        // time, so an empty send CQ with operations still pending means
        // those completions will never arrive: the op was dropped on the
        // wire, or was never matched before the QP died.
        let timed_out = Instant::now() >= p.deadline;
        if self.qp.send_cq().is_empty() || timed_out {
            let err = if self.qp.state() == crate::qp::QpState::Error {
                RdmaError::QpError(self.qp.error_status().unwrap_or(WcStatus::WrFlushed))
            } else {
                RdmaError::Timeout
            };
            for slot in p.out.iter_mut().filter(|s| s.is_none()) {
                *slot = Some(Err(err.clone()));
            }
            p.pending = 0;
            return true;
        }
        false
    }

    /// When to next poll a still-pending batch: the earlier of the send
    /// CQ's next ready instant and the batch deadline. `None` once the
    /// batch is done.
    pub fn pending_next_wake(&self, p: &PendingOps) -> Option<Instant> {
        if p.pending == 0 {
            return None;
        }
        Some(
            self.qp
                .send_cq()
                .next_ready_at()
                .map_or(p.deadline, |at| at.min(p.deadline)),
        )
    }

    /// When a still-pending batch is expected to be *fully* harvestable:
    /// the later of the send CQ's entries, capped by the batch deadline.
    /// A waiter that cannot act on partial completions (the batch settles
    /// as a unit) sleeps until this — one long, sleepable wait instead of
    /// a sub-sleep-threshold busy-spin per staggered completion, which
    /// matters when the host has fewer cores than the simulated cluster
    /// has channels. Completions that will never arrive (dropped on the
    /// wire) are covered by the fail-fast in [`Endpoint::poll_pending`]
    /// once the CQ drains. `None` once the batch is done.
    pub fn pending_done_wake(&self, p: &PendingOps) -> Option<Instant> {
        if p.pending == 0 {
            return None;
        }
        Some(
            self.qp
                .send_cq()
                .last_ready_at()
                .map_or(p.deadline, |at| at.min(p.deadline)),
        )
    }

    /// Posts `ops` as one doorbell batch and waits for every completion.
    ///
    /// Returns one `Result` per operation, in posting order. Completions
    /// may drain out of order from the CQ; they are matched back to their
    /// slot by wr_id. A batch of one is exactly [`Endpoint::execute`].
    /// The wait sleeps until the CQ's next ready instant rather than
    /// spinning, so heavily time-scaled runs do not burn cores.
    ///
    /// # Errors
    ///
    /// The outer `Err` is reserved for programming errors that fail the
    /// post itself (nothing executed). Per-operation transport failures
    /// land in the inner results: [`RdmaError::CompletionError`] for an
    /// error completion, [`RdmaError::QpError`] for operations flushed by
    /// a connection death, [`RdmaError::Timeout`] for operations whose
    /// completion never arrived (e.g. dropped on the wire).
    pub fn execute_many(&self, ops: Vec<SendOp>) -> Result<Vec<Result<Wc, RdmaError>>, RdmaError> {
        let mut pending = self.post_many(ops)?;
        while !self.poll_pending(&mut pending) {
            if let Some(wake) = self.pending_done_wake(&pending) {
                spin_until(wake);
            }
        }
        Ok(pending.into_results())
    }

    /// One-sided READ of `local.len` bytes from `remote` into `local`.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn read(&self, local: Sge, remote: RemoteAddr) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Read { local, remote })
    }

    /// One-sided WRITE of `payload` to `remote`.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn write(&self, payload: Payload, remote: RemoteAddr) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Write {
            payload,
            remote,
            imm: None,
        })
    }

    /// One-sided WRITE_WITH_IMM: places `payload` at `remote` and consumes
    /// a receive at the peer, delivering `imm`.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn write_with_imm(
        &self,
        payload: Payload,
        remote: RemoteAddr,
        imm: u32,
    ) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Write {
            payload,
            remote,
            imm: Some(imm),
        })
    }

    /// Two-sided SEND.
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn send(&self, payload: Payload, imm: Option<u32>) -> Result<Wc, RdmaError> {
        self.execute(SendOp::Send { payload, imm })
    }

    /// Remote compare-and-swap; the prior value lands in `local` (8 bytes).
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn compare_swap(
        &self,
        local: Sge,
        remote: RemoteAddr,
        expected: u64,
        swap: u64,
    ) -> Result<Wc, RdmaError> {
        self.execute(SendOp::CompareSwap {
            local,
            remote,
            expected,
            swap,
        })
    }

    /// Remote fetch-and-add; the prior value lands in `local` (8 bytes).
    ///
    /// # Errors
    ///
    /// See [`Endpoint::execute`].
    pub fn fetch_add(&self, local: Sge, remote: RemoteAddr, add: u64) -> Result<Wc, RdmaError> {
        self.execute(SendOp::FetchAdd { local, remote, add })
    }

    /// Posts a receive buffer.
    ///
    /// # Errors
    ///
    /// See [`QueuePair::post_recv`].
    pub fn post_recv(&self, sge: Sge) -> Result<u64, RdmaError> {
        let wr_id = self.next_wr_id();
        self.qp.post_recv(RecvWr::new(wr_id, sge))?;
        Ok(wr_id)
    }

    /// Waits for one receive completion.
    ///
    /// # Errors
    ///
    /// [`RdmaError::Timeout`] if nothing arrives in `timeout` and the QP is
    /// healthy; [`RdmaError::QpError`] if the QP is dead (nothing will ever
    /// arrive); [`RdmaError::CompletionError`] if the receive completed
    /// with error.
    pub fn recv(&self, timeout: Duration) -> Result<Wc, RdmaError> {
        let got = self.qp.recv_cq().wait(1, timeout);
        match got.first() {
            Some(wc) if wc.status == WcStatus::Success => Ok(*wc),
            Some(wc) => Err(RdmaError::CompletionError(wc.status)),
            None if self.qp.state() == crate::qp::QpState::Error => Err(RdmaError::QpError(
                self.qp.error_status().unwrap_or(WcStatus::WrFlushed),
            )),
            None => Err(RdmaError::Timeout),
        }
    }
}
