//! Identifier newtypes and access flags for the verbs layer.

use std::fmt;
use std::ops::BitOr;

/// Identifier of a node (one simulated machine / NIC) on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Queue-pair number, unique within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Qpn(pub u32);

impl fmt::Display for Qpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Local key authorising local access to a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LKey(pub u32);

/// Remote key authorising remote (one-sided) access to a memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RKey(pub u32);

impl fmt::Display for RKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey{:#x}", self.0)
    }
}

/// Caller-chosen work-request identifier, echoed in the completion.
pub type WrId = u64;

/// Memory-region access permissions (a subset of `ibv_access_flags`).
///
/// ```
/// use gengar_rdma::Access;
///
/// let flags = Access::REMOTE_READ | Access::REMOTE_WRITE;
/// assert!(flags.contains(Access::REMOTE_READ));
/// assert!(!flags.contains(Access::REMOTE_ATOMIC));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Access(u32);

impl Access {
    /// No remote permissions; the owning node may read/write locally.
    pub const LOCAL: Access = Access(0);
    /// Permit local writes through the MR (always implied in this model).
    pub const LOCAL_WRITE: Access = Access(1);
    /// Permit remote one-sided READ.
    pub const REMOTE_READ: Access = Access(2);
    /// Permit remote one-sided WRITE.
    pub const REMOTE_WRITE: Access = Access(4);
    /// Permit remote CAS / fetch-and-add.
    pub const REMOTE_ATOMIC: Access = Access(8);

    /// All permissions.
    pub fn all() -> Access {
        Access::LOCAL_WRITE | Access::REMOTE_READ | Access::REMOTE_WRITE | Access::REMOTE_ATOMIC
    }

    /// Returns whether every flag in `other` is present in `self`.
    pub fn contains(self, other: Access) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw bit representation.
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl BitOr for Access {
    type Output = Access;

    fn bitor(self, rhs: Access) -> Access {
        Access(self.0 | rhs.0)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.contains(Access::LOCAL_WRITE) {
            names.push("LOCAL_WRITE");
        }
        if self.contains(Access::REMOTE_READ) {
            names.push("REMOTE_READ");
        }
        if self.contains(Access::REMOTE_WRITE) {
            names.push("REMOTE_WRITE");
        }
        if self.contains(Access::REMOTE_ATOMIC) {
            names.push("REMOTE_ATOMIC");
        }
        if names.is_empty() {
            write!(f, "LOCAL")
        } else {
            write!(f, "{}", names.join("|"))
        }
    }
}

/// Address of remote memory targeted by a one-sided verb: an offset within
/// the memory region named by `rkey` on the connected peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteAddr {
    /// Remote key of the target memory region.
    pub rkey: RKey,
    /// Byte offset within that region.
    pub offset: u64,
}

impl RemoteAddr {
    /// Creates a remote address.
    pub fn new(rkey: RKey, offset: u64) -> Self {
        RemoteAddr { rkey, offset }
    }

    /// Returns this address advanced by `delta` bytes.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: u64) -> Self {
        RemoteAddr {
            rkey: self.rkey,
            offset: self.offset + delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flag_algebra() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.contains(Access::REMOTE_READ));
        assert!(rw.contains(Access::REMOTE_WRITE));
        assert!(!rw.contains(Access::REMOTE_ATOMIC));
        assert!(Access::all().contains(rw));
        assert!(Access::LOCAL.contains(Access::LOCAL));
        assert!(!Access::LOCAL.contains(Access::REMOTE_READ));
    }

    #[test]
    fn access_display() {
        assert_eq!(Access::LOCAL.to_string(), "LOCAL");
        assert_eq!(
            (Access::REMOTE_READ | Access::REMOTE_ATOMIC).to_string(),
            "REMOTE_READ|REMOTE_ATOMIC"
        );
    }

    #[test]
    fn remote_addr_add() {
        let a = RemoteAddr::new(RKey(7), 100);
        let b = a.add(28);
        assert_eq!(b.rkey, RKey(7));
        assert_eq!(b.offset, 128);
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(Qpn(9).to_string(), "qp9");
        assert_eq!(RKey(255).to_string(), "rkey0xff");
    }
}
