//! Telemetry handles for the verbs layer.
//!
//! All metrics live under the `rdma` component (see DESIGN.md §
//! Observability): per-verb op/byte counters and completion-latency
//! histograms, CQ completion/overflow counters and receive-queue counters.
//! The handles are resolved once when the [`crate::Fabric`] is created and
//! shared by every node, QP and CQ on it, so the hot path never touches the
//! registry.

use gengar_telemetry::{CounterHandle, HistogramHandle, TelemetryConfig};

use crate::cq::WcOpcode;

/// Per-verb op count, byte count and completion latency.
#[derive(Debug, Clone, Default)]
pub(crate) struct VerbMetrics {
    pub ops: CounterHandle,
    pub bytes: CounterHandle,
    pub lat_ns: HistogramHandle,
}

/// All metric handles of the verbs layer, resolved once per fabric.
#[derive(Debug, Clone, Default)]
pub(crate) struct FabricMetrics {
    pub send: VerbMetrics,
    pub write: VerbMetrics,
    pub read: VerbMetrics,
    pub cas: VerbMetrics,
    pub faa: VerbMetrics,
    /// Completions with a non-success status.
    pub error_completions: CounterHandle,
    /// Work completions pushed onto any CQ.
    pub cq_completions: CounterHandle,
    /// Completions dropped because a CQ was full.
    pub cq_overflows: CounterHandle,
    /// Receive work requests posted.
    pub recv_posted: CounterHandle,
    /// RNR waits that expired without a receive being posted.
    pub rnr_timeouts: CounterHandle,
    /// Doorbells rung: one per posted WR list, batched or not.
    pub doorbells: CounterHandle,
    /// Send-side work requests posted across all doorbells.
    pub batched_ops: CounterHandle,
    /// Doorbells avoided by batching (list length minus one, summed).
    pub doorbells_saved: CounterHandle,
    /// Distribution of posted-list lengths (sample value = WRs per doorbell).
    pub batch_size: HistogramHandle,
    /// WRs dropped by the QoS admission backstop (over-burst tenants).
    pub qos_dropped: CounterHandle,
}

impl FabricMetrics {
    /// Resolves every handle against `config`'s registry (all no-ops when
    /// telemetry is disabled).
    pub fn new(config: TelemetryConfig) -> Self {
        let tel = config.handle();
        let verb = |name: &str| VerbMetrics {
            ops: tel.counter("rdma", &format!("{name}_ops")),
            bytes: tel.counter("rdma", &format!("{name}_bytes")),
            lat_ns: tel.histogram("rdma", &format!("{name}_ns")),
        };
        FabricMetrics {
            send: verb("send"),
            write: verb("write"),
            read: verb("read"),
            cas: verb("cas"),
            faa: verb("faa"),
            error_completions: tel.counter("rdma", "error_completions"),
            cq_completions: tel.counter("rdma", "cq_completions"),
            cq_overflows: tel.counter("rdma", "cq_overflows"),
            recv_posted: tel.counter("rdma", "recv_posted"),
            rnr_timeouts: tel.counter("rdma", "rnr_timeouts"),
            doorbells: tel.counter("rdma", "doorbells"),
            batched_ops: tel.counter("rdma", "batched_ops"),
            doorbells_saved: tel.counter("rdma", "doorbells_saved"),
            batch_size: tel.histogram("rdma", "batch_size"),
            qos_dropped: tel.counter("rdma", "qos_dropped"),
        }
    }

    /// The verb bundle for a sender-side opcode.
    pub fn verb(&self, opcode: WcOpcode) -> &VerbMetrics {
        match opcode {
            WcOpcode::Send => &self.send,
            WcOpcode::RdmaWrite => &self.write,
            WcOpcode::RdmaRead => &self.read,
            WcOpcode::CompSwap => &self.cas,
            WcOpcode::FetchAdd => &self.faa,
            // Receive-side opcodes never originate a send-side WR; count
            // them against the send bundle rather than panicking.
            WcOpcode::Recv | WcOpcode::RecvRdmaWithImm => &self.send,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_are_inert() {
        let m = FabricMetrics::new(TelemetryConfig::disabled());
        m.verb(WcOpcode::RdmaRead).ops.inc();
        m.error_completions.inc();
        assert_eq!(m.read.ops.get(), 0);
    }

    #[test]
    fn verb_mapping_covers_sender_opcodes() {
        let m = FabricMetrics::new(TelemetryConfig::disabled());
        // Each sender opcode maps to a distinct bundle; receive opcodes
        // fall back to `send` without panicking.
        for op in [
            WcOpcode::Send,
            WcOpcode::RdmaWrite,
            WcOpcode::RdmaRead,
            WcOpcode::CompSwap,
            WcOpcode::FetchAdd,
            WcOpcode::Recv,
            WcOpcode::RecvRdmaWithImm,
        ] {
            m.verb(op).ops.inc();
        }
    }
}
