//! Protection domains and memory regions.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};

use gengar_hybridmem::MemRegion;

use crate::error::RdmaError;
use crate::node::RdmaNode;
use crate::types::{Access, LKey, NodeId, RKey};

/// A registered memory region.
///
/// Registration pins a [`MemRegion`] (a window of a simulated device) and
/// assigns it a key pair. In this model the lkey and rkey share one value;
/// what matters is that every remote access is validated against the
/// region's bounds, its [`Access`] flags and its protection domain, exactly
/// like a real HCA validates rkeys.
#[derive(Debug)]
pub struct MemoryRegion {
    node: NodeId,
    pd_id: u32,
    key: u32,
    access: Access,
    region: MemRegion,
}

impl MemoryRegion {
    pub(crate) fn new(
        node: NodeId,
        pd_id: u32,
        key: u32,
        access: Access,
        region: MemRegion,
    ) -> Self {
        MemoryRegion {
            node,
            pd_id,
            key,
            access,
            region,
        }
    }

    /// The node the region is registered on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Protection-domain id.
    pub fn pd_id(&self) -> u32 {
        self.pd_id
    }

    /// Local key.
    pub fn lkey(&self) -> LKey {
        LKey(self.key)
    }

    /// Remote key.
    pub fn rkey(&self) -> RKey {
        RKey(self.key)
    }

    /// Granted access flags.
    pub fn access(&self) -> Access {
        self.access
    }

    /// Length of the registered window in bytes.
    pub fn len(&self) -> u64 {
        self.region.len()
    }

    /// Returns `true` if the window is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// The underlying memory window. Local users (the owning node's CPU)
    /// access their own registered memory directly through this.
    pub fn region(&self) -> &MemRegion {
        &self.region
    }
}

/// A protection domain: MRs and QPs in the same PD may be used together.
#[derive(Debug, Clone)]
pub struct ProtectionDomain {
    node: Weak<RdmaNode>,
    id: u32,
    next_key: Arc<AtomicU32>,
}

impl ProtectionDomain {
    pub(crate) fn new(node: Weak<RdmaNode>, id: u32, next_key: Arc<AtomicU32>) -> Self {
        ProtectionDomain { node, id, next_key }
    }

    /// Protection-domain id (unique within the node).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Registers `region` with the given access flags, returning the MR.
    ///
    /// # Errors
    ///
    /// Returns [`RdmaError::ConnectionRefused`] if the owning node has been
    /// dropped.
    pub fn reg_mr(
        &self,
        region: MemRegion,
        access: Access,
    ) -> Result<Arc<MemoryRegion>, RdmaError> {
        let node = self
            .node
            .upgrade()
            .ok_or(RdmaError::ConnectionRefused("node dropped"))?;
        let key = self.next_key.fetch_add(1, Ordering::Relaxed) + 1; // keys start at 1
        let mr = Arc::new(MemoryRegion::new(node.id(), self.id, key, access, region));
        node.insert_mr(Arc::clone(&mr));
        Ok(mr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};
    use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind};

    fn region() -> MemRegion {
        let dev = Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), 4096).unwrap());
        MemRegion::whole(dev)
    }

    #[test]
    fn keys_are_unique_and_nonzero() {
        let fabric = Fabric::new(FabricConfig::instant());
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        let a = pd.reg_mr(region(), Access::all()).unwrap();
        let b = pd.reg_mr(region(), Access::REMOTE_READ).unwrap();
        assert_ne!(a.lkey().0, 0);
        assert_ne!(a.lkey().0, b.lkey().0);
        assert_eq!(a.lkey().0, a.rkey().0);
    }

    #[test]
    fn mr_reflects_registration() {
        let fabric = Fabric::new(FabricConfig::instant());
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        let mr = pd.reg_mr(region(), Access::REMOTE_READ).unwrap();
        assert_eq!(mr.node(), node.id());
        assert_eq!(mr.pd_id(), pd.id());
        assert_eq!(mr.len(), 4096);
        assert!(!mr.is_empty());
        assert!(mr.access().contains(Access::REMOTE_READ));
        assert!(!mr.access().contains(Access::REMOTE_WRITE));
    }

    #[test]
    fn node_lookup_finds_registered_mr() {
        let fabric = Fabric::new(FabricConfig::instant());
        let node = fabric.add_node();
        let pd = node.alloc_pd();
        let mr = pd.reg_mr(region(), Access::all()).unwrap();
        let found = node.mr_by_key(mr.lkey().0).unwrap();
        assert_eq!(found.lkey(), mr.lkey());
        assert!(node.mr_by_key(9999).is_none());
    }
}
