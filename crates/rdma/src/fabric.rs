//! The fabric: node registry, link model and verb execution engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gengar_hybridmem::latency::scaled_duration;
use gengar_hybridmem::BandwidthLimiter;
use gengar_telemetry::{TelemetryConfig, Tracer};
use parking_lot::RwLock;

use crate::cq::{CompletionQueue, Wc, WcOpcode, WcStatus};
use crate::error::RdmaError;
use crate::fault::{FaultDecision, FaultPlane};
use crate::metrics::FabricMetrics;
use crate::mr::MemoryRegion;
use crate::node::RdmaNode;
use crate::qp::QueuePair;
use crate::types::{Access, NodeId, RemoteAddr};
use crate::wr::{Payload, SendOp, SendWr, Sge};

/// Occupies both NIC ports for one transfer's bytes starting no earlier
/// than `start` and returns the transfer's completion instant. The same
/// bytes flow through both ports concurrently (cut-through forwarding),
/// so the transfer's latency is the slower channel, not the sum — while
/// each port still stays busy for the full transfer time, so saturation
/// effects are preserved per node.
fn occupy_ports_at(
    a: &BandwidthLimiter,
    b: &BandwidthLimiter,
    bytes: u64,
    start: Instant,
) -> Instant {
    let da = a.reserve_at(bytes, start);
    let db = b.reserve_at(bytes, start);
    da.max(db).unwrap_or(start)
}

/// Admission verdict from a [`QosPolicy`] for one work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosVerdict {
    /// Let the WR execute.
    Admit,
    /// Lost on the wire: no transfer, no completion. The initiator's
    /// blocking helper times out and its retry machinery re-posts — the
    /// same observable behaviour as [`FaultDecision::Drop`], so a tenant
    /// that blasts past its burst budget slows itself down without
    /// occupying the shared NIC channels.
    Drop,
}

/// Per-source admission control consulted by the fabric for every WR that
/// survives fault injection. Implementations key on the posting node
/// (`src`): one client is exactly one fabric node, so a tenant registry
/// can map node ids to token buckets without the fabric knowing about
/// tenants. Nodes the policy does not know (servers, unregistered
/// clients) must be admitted.
///
/// This is the *backstop* enforcement point: shaping by delaying WRs here
/// would push the shared FIFO port cursors into the future and tax every
/// bystander, so a well-behaved limiter paces at the issue path and only
/// grossly over-burst traffic ever reaches a `Drop` verdict.
pub trait QosPolicy: Send + Sync + std::fmt::Debug {
    /// Decides whether a `bytes`-long WR posted by `src` may enter the
    /// wire now.
    fn admit(&self, src: NodeId, bytes: u64) -> QosVerdict;
}

/// Timing parameters of the simulated network.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// One-way propagation + switching delay in nanoseconds.
    pub one_way_ns: u64,
    /// Initiator-side NIC processing per operation.
    pub nic_tx_ns: u64,
    /// Responder-side NIC processing per operation.
    pub nic_rx_ns: u64,
    /// NIC port bandwidth per node, bytes per second.
    pub nic_bw_bytes_per_sec: u64,
    /// Extra cost of remote atomics (PCIe round trip on the responder).
    pub atomic_extra_ns: u64,
    /// Whether the verbs layer records telemetry (per-verb counters,
    /// completion latency histograms) into the global registry.
    pub telemetry: TelemetryConfig,
    /// Optional fault-injection plane consulted for every posted verb.
    /// `None` (the default) costs a single branch on the hot path.
    pub faults: Option<Arc<FaultPlane>>,
    /// Optional per-source admission policy (multi-tenant QoS backstop)
    /// consulted for every WR that survives fault injection. `None` (the
    /// default) costs a single branch on the hot path.
    pub qos: Option<Arc<dyn QosPolicy>>,
}

// Manual impl because two configs sharing a plane means sharing the *same*
// plane instance (seeded RNG state and all), not an equal-looking one.
impl PartialEq for FabricConfig {
    fn eq(&self, other: &Self) -> bool {
        self.one_way_ns == other.one_way_ns
            && self.nic_tx_ns == other.nic_tx_ns
            && self.nic_rx_ns == other.nic_rx_ns
            && self.nic_bw_bytes_per_sec == other.nic_bw_bytes_per_sec
            && self.atomic_extra_ns == other.atomic_extra_ns
            && self.telemetry == other.telemetry
            && match (&self.faults, &other.faults) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && match (&self.qos, &other.qos) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for FabricConfig {}

impl FabricConfig {
    /// 100 Gb/s InfiniBand-class fabric: small one-sided READ completes in
    /// roughly 2 µs, matching ConnectX-5 era measurements.
    pub fn infiniband_100g() -> Self {
        FabricConfig {
            one_way_ns: 750,
            nic_tx_ns: 150,
            nic_rx_ns: 150,
            nic_bw_bytes_per_sec: 12_500_000_000,
            atomic_extra_ns: 100,
            telemetry: TelemetryConfig::default(),
            faults: None,
            qos: None,
        }
    }

    /// Zero-delay fabric for functional tests.
    pub fn instant() -> Self {
        FabricConfig {
            one_way_ns: 0,
            nic_tx_ns: 0,
            nic_rx_ns: 0,
            nic_bw_bytes_per_sec: u64::MAX,
            atomic_extra_ns: 0,
            telemetry: TelemetryConfig::default(),
            faults: None,
            qos: None,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct LinkFault {
    partitioned: bool,
    extra_delay_ns: u64,
}

/// A resolved send-side payload: inline bytes, or a reference to the local
/// MR that one-sided DMA copies from directly (no staging pass).
enum Gathered {
    Bytes(Vec<u8>),
    Mr(Arc<MemoryRegion>, u64, u64),
}

impl Gathered {
    fn len(&self) -> u64 {
        match self {
            Gathered::Bytes(b) => b.len() as u64,
            Gathered::Mr(_, _, len) => *len,
        }
    }

    /// Places the payload into `dst` at `offset` with one copy pass,
    /// charging the modelled device cost from the virtual-time `start`
    /// cursor and returning the completion instant.
    fn place_into_at(
        &self,
        dst: &gengar_hybridmem::MemRegion,
        offset: u64,
        start: Instant,
    ) -> Result<Instant, RdmaError> {
        Ok(match self {
            Gathered::Bytes(b) => dst.write_at(offset, b, start)?,
            Gathered::Mr(mr, src_off, len) => {
                dst.copy_from_at(offset, mr.region(), *src_off, *len, start)?
            }
        })
    }
}

/// The simulated RDMA network connecting [`RdmaNode`]s.
///
/// One-sided verbs are executed by the *initiating* thread directly against
/// the target node's memory (emulating NIC DMA). Execution is
/// *completion-driven*: posting performs the data movement immediately but
/// does not block — the configured latencies and bandwidth reservations
/// accumulate into a virtual-time cursor per doorbell, and each work
/// completion is queued with the instant it becomes harvestable
/// ([`CompletionQueue::push_at`]). One thread can therefore hold many
/// doorbells in flight across independent targets and genuinely overlap
/// their modelled wire time. Fault injection: links can be partitioned or
/// given extra delay, and the RC state machine reacts as real hardware
/// does (error completions, QP to error state).
pub struct Fabric {
    config: FabricConfig,
    next_node: AtomicU32,
    nodes: RwLock<HashMap<NodeId, Arc<RdmaNode>>>,
    faults: RwLock<HashMap<(NodeId, NodeId), LinkFault>>,
    metrics: FabricMetrics,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("config", &self.config)
            .field("nodes", &self.nodes.read().len())
            .finish()
    }
}

fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new(config: FabricConfig) -> Arc<Self> {
        let metrics = FabricMetrics::new(config.telemetry);
        Arc::new(Fabric {
            config,
            next_node: AtomicU32::new(0),
            nodes: RwLock::new(HashMap::new()),
            faults: RwLock::new(HashMap::new()),
            metrics,
        })
    }

    /// The timing configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Attaches a new node and returns its context.
    pub fn add_node(self: &Arc<Self>) -> Arc<RdmaNode> {
        let id = NodeId(self.next_node.fetch_add(1, Ordering::Relaxed));
        let node = RdmaNode::new(
            id,
            Arc::downgrade(self),
            self.config.nic_bw_bytes_per_sec,
            self.metrics.clone(),
        );
        self.nodes.write().insert(id, Arc::clone(&node));
        node
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<Arc<RdmaNode>> {
        self.nodes.read().get(&id).cloned()
    }

    /// Detaches a node (simulates machine failure). Peers talking to it
    /// observe transport errors.
    pub fn remove_node(&self, id: NodeId) -> Option<Arc<RdmaNode>> {
        self.nodes.write().remove(&id)
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Partitions (or heals) the link between `a` and `b`.
    pub fn partition(&self, a: NodeId, b: NodeId, partitioned: bool) {
        self.faults
            .write()
            .entry(link_key(a, b))
            .or_default()
            .partitioned = partitioned;
    }

    /// Adds fixed extra one-way delay on the link between `a` and `b`.
    pub fn set_extra_delay_ns(&self, a: NodeId, b: NodeId, delay_ns: u64) {
        self.faults
            .write()
            .entry(link_key(a, b))
            .or_default()
            .extra_delay_ns = delay_ns;
    }

    fn fault(&self, a: NodeId, b: NodeId) -> LinkFault {
        self.faults
            .read()
            .get(&link_key(a, b))
            .copied()
            .unwrap_or_default()
    }

    /// Validates a remote access and returns the target MR.
    fn remote_mr(
        dst: &Arc<RdmaNode>,
        dst_pd: u32,
        raddr: RemoteAddr,
        len: u64,
        need: Access,
    ) -> Result<Arc<MemoryRegion>, WcStatus> {
        let mr = match dst.mr_by_key(raddr.rkey.0) {
            Some(mr) => mr,
            None => return Err(WcStatus::RemoteAccessError),
        };
        if mr.pd_id() != dst_pd
            || !mr.access().contains(need)
            || raddr
                .offset
                .checked_add(len)
                .is_none_or(|end| end > mr.len())
        {
            return Err(WcStatus::RemoteAccessError);
        }
        Ok(mr)
    }

    /// Resolves the local side of a payload/sge, failing fast on
    /// programming errors.
    fn local_mr(src: &Arc<RdmaNode>, qp_pd: u32, sge: Sge) -> Result<Arc<MemoryRegion>, RdmaError> {
        let mr = src
            .mr_by_key(sge.lkey.0)
            .ok_or(RdmaError::UnknownLKey(sge.lkey.0))?;
        if mr.pd_id() != qp_pd {
            return Err(RdmaError::UnknownLKey(sge.lkey.0));
        }
        if sge
            .offset
            .checked_add(sge.len)
            .is_none_or(|end| end > mr.len())
        {
            return Err(RdmaError::LocalAccessOutOfBounds {
                offset: sge.offset,
                len: sge.len,
                mr_len: mr.len(),
            });
        }
        Ok(mr)
    }

    fn gather_payload(
        src: &Arc<RdmaNode>,
        qp: &QueuePair,
        payload: &Payload,
    ) -> Result<Gathered, RdmaError> {
        match payload {
            Payload::Inline(bytes) => {
                let max = qp.options().max_inline;
                if bytes.len() > max {
                    return Err(RdmaError::InlineTooLarge {
                        len: bytes.len(),
                        max,
                    });
                }
                Ok(Gathered::Bytes(bytes.clone()))
            }
            Payload::Sge(sge) => {
                let mr = Self::local_mr(src, qp.pd_id(), *sge)?;
                Ok(Gathered::Mr(mr, sge.offset, sge.len))
            }
        }
    }

    /// Pushes a work completion onto `cq`, harvestable at `ready`,
    /// counting it (or the overflow) in the fabric metrics. Every CQ push
    /// goes through here, so CQs the application constructed directly are
    /// covered too.
    fn push_wc_at(&self, cq: &CompletionQueue, wc: Wc, ready: Instant) {
        if cq.push_at(wc, ready) {
            self.metrics.cq_completions.inc();
        } else {
            self.metrics.cq_overflows.inc();
        }
    }

    /// Queues the sender-side completion for `wr`, harvestable at `ready`.
    /// The QP error transition (for failures) happens immediately at post
    /// time — matching how the initiator NIC sequences later WRs — while
    /// the error *completion* still surfaces at its modelled instant.
    fn complete_at(
        &self,
        qp: &Arc<QueuePair>,
        wr: &SendWr,
        status: WcStatus,
        opcode: WcOpcode,
        byte_len: u64,
        ready: Instant,
    ) {
        if status == WcStatus::Success {
            self.metrics.verb(opcode).bytes.add(byte_len);
        } else {
            self.metrics.error_completions.inc();
        }
        if wr.signaled || status != WcStatus::Success {
            Tracer::global().fine_event("rdma.cq_completion", wr.wr_id);
            self.push_wc_at(
                qp.send_cq(),
                Wc {
                    wr_id: wr.wr_id,
                    status,
                    opcode,
                    byte_len,
                    imm: None,
                    qpn: qp.qpn(),
                },
                ready,
            );
        }
        if status != WcStatus::Success {
            qp.fail(status);
        }
    }

    /// Posts a send-side work request. Called from
    /// [`QueuePair::post_send`]. A single post is a one-element doorbell
    /// batch, so serial and batched paths share one execution engine (and
    /// identical timing for a batch of one).
    pub(crate) fn execute(
        &self,
        src: &Arc<RdmaNode>,
        qp: &Arc<QueuePair>,
        wr: SendWr,
    ) -> Result<(), RdmaError> {
        self.execute_batch(src, qp, vec![wr])
    }

    /// Posts a list of send-side work requests as one doorbell batch.
    /// Called from [`QueuePair::post_send_list`]. Returns without
    /// blocking: completions are queued with their modelled ready
    /// instants and harvested from the CQ as simulated time passes.
    ///
    /// The whole list is validated before anything executes: an `Err`
    /// means no WR touched the wire (the post is atomic). Timing follows
    /// a per-doorbell virtual-time model — the request wave pays
    /// `nic_tx_ns` per WR but propagation and responder processing
    /// (`one_way_ns + nic_rx_ns`) only once per doorbell. Each WR then
    /// runs its own occupancy chain *from the arrival instant*: the NIC
    /// ports and devices it crosses are FIFO token buckets, so WRs
    /// sharing a channel queue behind each other there while different
    /// stages overlap — WR `i+1`'s wire transfer proceeds while WR `i`
    /// is in the device, exactly the pipelining a deep doorbell buys on
    /// real hardware. Bandwidth saturation is still modelled per
    /// operation (every byte is charged to every port it crosses), and
    /// completions that involve the responder pay one more `one_way_ns`
    /// back. Failures follow RC ordering: the failing WR gets an error
    /// completion (moving the QP to the error state) and every later WR
    /// in the list is flushed with `WrFlushed`.
    ///
    /// Data movement (and ADR durability) happens at post time, slightly
    /// *before* the modelled completion instant — never after — so no
    /// caller can harvest a completion whose bytes have not landed.
    pub(crate) fn execute_batch(
        &self,
        src: &Arc<RdmaNode>,
        qp: &Arc<QueuePair>,
        wrs: Vec<SendWr>,
    ) -> Result<(), RdmaError> {
        if wrs.is_empty() {
            return Ok(());
        }
        // One-sided verbs run on the initiating thread, so the client's
        // trace context is visible right here: the whole post→doorbell→
        // completion chain nests under the caller's op span without any
        // WR struct changes.
        let tracer = Tracer::global();
        let mut post_span = tracer.span("rdma.post");
        post_span.set_detail(wrs.len() as u64);
        let (dst_id, dst_qpn) = qp.remote().ok_or(RdmaError::NotConnected)?;

        // Programming errors on the local side fail the whole post before
        // anything is on the wire.
        let mut prepared: Vec<(SendWr, WcOpcode, Option<Gathered>)> = Vec::with_capacity(wrs.len());
        for wr in wrs {
            let sender_opcode = match &wr.op {
                SendOp::Send { .. } => WcOpcode::Send,
                SendOp::Write { .. } => WcOpcode::RdmaWrite,
                SendOp::Read { .. } => WcOpcode::RdmaRead,
                SendOp::CompareSwap { .. } => WcOpcode::CompSwap,
                SendOp::FetchAdd { .. } => WcOpcode::FetchAdd,
            };
            let payload: Option<Gathered> = match &wr.op {
                SendOp::Send { payload, .. } | SendOp::Write { payload, .. } => {
                    Some(Self::gather_payload(src, qp, payload)?)
                }
                SendOp::Read { local, .. }
                | SendOp::CompareSwap { local, .. }
                | SendOp::FetchAdd { local, .. } => {
                    // Validate the local destination now; data lands later.
                    Self::local_mr(src, qp.pd_id(), *local)?;
                    None
                }
            };
            prepared.push((wr, sender_opcode, payload));
        }

        // One doorbell for the whole list.
        let n = prepared.len() as u64;
        self.metrics.doorbells.inc();
        self.metrics.batched_ops.add(n);
        self.metrics.doorbells_saved.add(n - 1);
        self.metrics.batch_size.record_ns(n);
        let mut doorbell_span = tracer.span("rdma.doorbell");
        doorbell_span.set_detail(n);

        let cfg = &self.config;
        let fault = self.fault(src.id(), dst_id);
        let target = match self.node(dst_id) {
            Some(d) if !fault.partitioned => d.qp(dst_qpn).map(|q| (d, q)),
            _ => None,
        };

        // The arrival cursor: when this doorbell's request wave reaches
        // the responder. Every WQE pays initiator NIC processing; the
        // wire and responder costs are amortised over the doorbell. Each
        // WR's occupancy chain starts here (fault delays push it back),
        // so WRs pipeline through the shared channels instead of
        // serialising end-to-end.
        let posted = Instant::now();
        let mut cursor = posted;
        if target.is_some() {
            cursor += scaled_duration(
                cfg.nic_tx_ns * n + cfg.one_way_ns + fault.extra_delay_ns + cfg.nic_rx_ns,
            );
        }
        // Outcomes the initiator learns from the responder surface one
        // response hop later than the op finishes there.
        let resp_delay = scaled_duration(cfg.one_way_ns + fault.extra_delay_ns);

        for (wr, sender_opcode, payload) in prepared {
            let mut wr_span = tracer.fine_span("rdma.wr");
            wr_span.set_detail(wr.wr_id);
            // Past the programming-error checks the verb is on the wire:
            // count it and time it to completion (errors included).
            let verb = self.metrics.verb(sender_opcode);
            verb.ops.inc();
            // A WR behind a failed one never executes: flush it.
            if qp.state() == crate::qp::QpState::Error {
                tracer.event("fault.flushed", wr.wr_id);
                self.complete_at(qp, &wr, WcStatus::WrFlushed, sender_opcode, 0, cursor);
                verb.lat_ns.record_ns((cursor - posted).as_nanos() as u64);
                continue;
            }
            // Fault decisions are drawn per WR in submission order, so a
            // seeded chaos schedule consumes the same RNG stream whether
            // the ops were posted one at a time or as a batch.
            if let Some(plane) = cfg.faults.as_ref() {
                let with_imm = matches!(&wr.op, SendOp::Write { imm: Some(_), .. });
                match plane.decide(src.id(), dst_id, sender_opcode, with_imm) {
                    FaultDecision::Proceed => {}
                    FaultDecision::Delay(ns) => {
                        tracer.event("fault.delay", ns);
                        cursor += scaled_duration(ns);
                    }
                    FaultDecision::Error(status) => {
                        tracer.event("fault.err", wr.wr_id);
                        self.complete_at(qp, &wr, status, sender_opcode, 0, cursor);
                        verb.lat_ns.record_ns((cursor - posted).as_nanos() as u64);
                        continue;
                    }
                    // Operation lost on the wire: no transfer, no
                    // completion. The initiator's blocking helper times
                    // out; the QP stays usable so a retry on the same
                    // connection can succeed.
                    FaultDecision::Drop => {
                        tracer.event("fault.drop", wr.wr_id);
                        verb.lat_ns.record_ns((cursor - posted).as_nanos() as u64);
                        continue;
                    }
                }
            }
            // QoS admission runs *after* the fault draw so the seeded
            // fault RNG stream stays identical whether or not a tenant
            // policy is installed (token-bucket state is wall-clock
            // dependent and would otherwise perturb chaos schedules).
            if let Some(qos) = cfg.qos.as_ref() {
                let bytes = match (&wr.op, &payload) {
                    (SendOp::Read { local, .. }, _) => local.len,
                    (_, Some(p)) => p.len(),
                    _ => 8, // atomics move one word
                };
                if qos.admit(src.id(), bytes) == QosVerdict::Drop {
                    tracer.event("qos.drop", wr.wr_id);
                    self.metrics.qos_dropped.inc();
                    verb.lat_ns.record_ns((cursor - posted).as_nanos() as u64);
                    continue;
                }
            }
            let pair = match &target {
                Some(pair) => pair,
                None => {
                    // Transport retry exceeded: error completion, QP to
                    // error (the rest of the list flushes above).
                    self.complete_at(qp, &wr, WcStatus::TransportError, sender_opcode, 0, cursor);
                    verb.lat_ns.record_ns((cursor - posted).as_nanos() as u64);
                    continue;
                }
            };
            let end = self.execute_one_at(
                src,
                qp,
                &wr,
                sender_opcode,
                payload,
                pair,
                cursor,
                resp_delay,
            )?;
            verb.lat_ns
                .record_ns((end + resp_delay - posted).as_nanos() as u64);
        }
        Ok(())
    }

    /// The per-verb body of one WR within a doorbell batch: bandwidth
    /// occupancy, the data movement itself, receive-side delivery and the
    /// sender completion. Request propagation is paid by the caller once
    /// per batch; outcomes the responder decides (success and
    /// responder-side errors) ready one `resp_delay` after the op's
    /// chain end. The chain starts at `start` (the doorbell's arrival
    /// instant) — shared-channel serialisation comes from the FIFO
    /// token buckets, not from chaining WRs end-to-end, so a doorbell's
    /// WRs pipeline. Returns the instant this WR's occupancy ends.
    #[allow(clippy::too_many_arguments)]
    fn execute_one_at(
        &self,
        src: &Arc<RdmaNode>,
        qp: &Arc<QueuePair>,
        wr: &SendWr,
        sender_opcode: WcOpcode,
        payload: Option<Gathered>,
        target: &(Arc<RdmaNode>, Arc<QueuePair>),
        start: Instant,
        resp_delay: std::time::Duration,
    ) -> Result<Instant, RdmaError> {
        let mut cursor = start;
        let cursor = &mut cursor;
        let (dst, dst_qp) = target;
        let cfg = &self.config;
        match &wr.op {
            SendOp::Write { remote, imm, .. } => {
                let (remote, imm) = (*remote, *imm);
                let data = payload.expect("write has payload");
                let len = data.len();
                *cursor = occupy_ports_at(src.nic_bw(), dst.nic_bw(), len, *cursor);
                let mr =
                    match Self::remote_mr(dst, dst_qp.pd_id(), remote, len, Access::REMOTE_WRITE) {
                        Ok(mr) => mr,
                        Err(status) => {
                            self.complete_at(
                                qp,
                                wr,
                                status,
                                sender_opcode,
                                0,
                                *cursor + resp_delay,
                            );
                            return Ok(*cursor);
                        }
                    };
                *cursor = data.place_into_at(mr.region(), remote.offset, *cursor)?;
                if let Some(imm) = imm {
                    // WRITE_WITH_IMM consumes a receive at the target.
                    match dst_qp.take_recv() {
                        Some(recv) => {
                            self.push_wc_at(
                                dst_qp.recv_cq(),
                                Wc {
                                    wr_id: recv.wr_id,
                                    status: WcStatus::Success,
                                    opcode: WcOpcode::RecvRdmaWithImm,
                                    byte_len: len,
                                    imm: Some(imm),
                                    qpn: dst_qp.qpn(),
                                },
                                *cursor,
                            );
                        }
                        None => {
                            self.complete_at(
                                qp,
                                wr,
                                WcStatus::RnrRetryExceeded,
                                sender_opcode,
                                0,
                                *cursor + resp_delay,
                            );
                            return Ok(*cursor);
                        }
                    }
                }
                self.complete_at(
                    qp,
                    wr,
                    WcStatus::Success,
                    sender_opcode,
                    len,
                    *cursor + resp_delay,
                );
                Ok(*cursor)
            }
            SendOp::Read { local, remote } => {
                let (local, remote) = (*local, *remote);
                let len = local.len;
                let mr =
                    match Self::remote_mr(dst, dst_qp.pd_id(), remote, len, Access::REMOTE_READ) {
                        Ok(mr) => mr,
                        Err(status) => {
                            self.complete_at(
                                qp,
                                wr,
                                status,
                                sender_opcode,
                                0,
                                *cursor + resp_delay,
                            );
                            return Ok(*cursor);
                        }
                    };
                *cursor = occupy_ports_at(dst.nic_bw(), src.nic_bw(), len, *cursor);
                let local_mr = Self::local_mr(src, qp.pd_id(), local)?;
                // Response data DMAs straight into the local MR.
                *cursor = local_mr.region().copy_from_at(
                    local.offset,
                    mr.region(),
                    remote.offset,
                    len,
                    *cursor,
                )?;
                self.complete_at(
                    qp,
                    wr,
                    WcStatus::Success,
                    sender_opcode,
                    len,
                    *cursor + resp_delay,
                );
                Ok(*cursor)
            }
            SendOp::Send { imm, .. } => {
                let imm = *imm;
                let data = payload.expect("send has payload");
                let len = data.len();
                *cursor = occupy_ports_at(src.nic_bw(), dst.nic_bw(), len, *cursor);
                let recv = match dst_qp.take_recv() {
                    Some(r) => r,
                    None => {
                        self.complete_at(
                            qp,
                            wr,
                            WcStatus::RnrRetryExceeded,
                            sender_opcode,
                            0,
                            *cursor + resp_delay,
                        );
                        return Ok(*cursor);
                    }
                };
                // Scatter into the posted receive buffer on the target node.
                let scatter = dst.mr_by_key(recv.sge.lkey.0).filter(|mr| {
                    mr.pd_id() == dst_qp.pd_id()
                        && recv
                            .sge
                            .offset
                            .checked_add(len)
                            .is_some_and(|end| end <= mr.len())
                        && len <= recv.sge.len
                });
                let scatter = match scatter {
                    Some(mr) => mr,
                    None => {
                        // Receiver-side length/key error: both sides learn.
                        self.push_wc_at(
                            dst_qp.recv_cq(),
                            Wc {
                                wr_id: recv.wr_id,
                                status: WcStatus::RemoteAccessError,
                                opcode: WcOpcode::Recv,
                                byte_len: 0,
                                imm: None,
                                qpn: dst_qp.qpn(),
                            },
                            *cursor,
                        );
                        dst_qp.fail(WcStatus::RemoteAccessError);
                        self.complete_at(
                            qp,
                            wr,
                            WcStatus::RemoteAccessError,
                            sender_opcode,
                            0,
                            *cursor + resp_delay,
                        );
                        return Ok(*cursor);
                    }
                };
                *cursor = data.place_into_at(scatter.region(), recv.sge.offset, *cursor)?;
                self.push_wc_at(
                    dst_qp.recv_cq(),
                    Wc {
                        wr_id: recv.wr_id,
                        status: WcStatus::Success,
                        opcode: WcOpcode::Recv,
                        byte_len: len,
                        imm,
                        qpn: dst_qp.qpn(),
                    },
                    *cursor,
                );
                self.complete_at(
                    qp,
                    wr,
                    WcStatus::Success,
                    sender_opcode,
                    len,
                    *cursor + resp_delay,
                );
                Ok(*cursor)
            }
            SendOp::CompareSwap {
                local,
                remote,
                expected,
                swap,
            } => {
                let (local, remote, expected, swap) = (*local, *remote, *expected, *swap);
                *cursor += scaled_duration(cfg.atomic_extra_ns);
                let mr =
                    match Self::remote_mr(dst, dst_qp.pd_id(), remote, 8, Access::REMOTE_ATOMIC) {
                        Ok(mr) => mr,
                        Err(status) => {
                            self.complete_at(
                                qp,
                                wr,
                                status,
                                sender_opcode,
                                0,
                                *cursor + resp_delay,
                            );
                            return Ok(*cursor);
                        }
                    };
                let prev = match mr
                    .region()
                    .cas_u64_at(remote.offset, expected, swap, *cursor)
                {
                    Ok((prev, end)) => {
                        *cursor = end;
                        prev
                    }
                    Err(_) => {
                        self.complete_at(
                            qp,
                            wr,
                            WcStatus::RemoteAccessError,
                            sender_opcode,
                            0,
                            *cursor + resp_delay,
                        );
                        return Ok(*cursor);
                    }
                };
                let local_mr = Self::local_mr(src, qp.pd_id(), local)?;
                *cursor = local_mr
                    .region()
                    .write_at(local.offset, &prev.to_le_bytes(), *cursor)?;
                self.complete_at(
                    qp,
                    wr,
                    WcStatus::Success,
                    sender_opcode,
                    8,
                    *cursor + resp_delay,
                );
                Ok(*cursor)
            }
            SendOp::FetchAdd { local, remote, add } => {
                let (local, remote, add) = (*local, *remote, *add);
                *cursor += scaled_duration(cfg.atomic_extra_ns);
                let mr =
                    match Self::remote_mr(dst, dst_qp.pd_id(), remote, 8, Access::REMOTE_ATOMIC) {
                        Ok(mr) => mr,
                        Err(status) => {
                            self.complete_at(
                                qp,
                                wr,
                                status,
                                sender_opcode,
                                0,
                                *cursor + resp_delay,
                            );
                            return Ok(*cursor);
                        }
                    };
                let prev = match mr.region().faa_u64_at(remote.offset, add, *cursor) {
                    Ok((prev, end)) => {
                        *cursor = end;
                        prev
                    }
                    Err(_) => {
                        self.complete_at(
                            qp,
                            wr,
                            WcStatus::RemoteAccessError,
                            sender_opcode,
                            0,
                            *cursor + resp_delay,
                        );
                        return Ok(*cursor);
                    }
                };
                let local_mr = Self::local_mr(src, qp.pd_id(), local)?;
                *cursor = local_mr
                    .region()
                    .write_at(local.offset, &prev.to_le_bytes(), *cursor)?;
                self.complete_at(
                    qp,
                    wr,
                    WcStatus::Success,
                    sender_opcode,
                    8,
                    *cursor + resp_delay,
                );
                Ok(*cursor)
            }
        }
    }
}
