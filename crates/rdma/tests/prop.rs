//! Property-based tests of the verbs substrate.

use std::sync::Arc;

use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind, MemRegion};
use gengar_rdma::{Access, Endpoint, Fabric, FabricConfig, Payload, QpOptions, RemoteAddr, Sge};
use proptest::prelude::*;

const CAP: u64 = 1 << 16;

struct Bed {
    ep: Endpoint,
    local: Arc<gengar_rdma::MemoryRegion>,
    remote: Arc<gengar_rdma::MemoryRegion>,
    _fabric: Arc<Fabric>,
    _peer: Endpoint,
}

fn bed() -> Bed {
    let fabric = Fabric::new(FabricConfig::instant());
    let a = fabric.add_node();
    let b = fabric.add_node();
    let a_pd = a.alloc_pd();
    let b_pd = b.alloc_pd();
    let a_dev = Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Dram), CAP).unwrap());
    let b_dev = Arc::new(MemDevice::new(1, DeviceProfile::instant(MemKind::Nvm), CAP).unwrap());
    let local = a_pd.reg_mr(MemRegion::whole(a_dev), Access::all()).unwrap();
    let remote = b_pd.reg_mr(MemRegion::whole(b_dev), Access::all()).unwrap();
    let (ep, peer) = Endpoint::pair((&a, &a_pd), (&b, &b_pd), QpOptions::default()).unwrap();
    Bed {
        ep,
        local,
        remote,
        _fabric: fabric,
        _peer: peer,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WRITE then READ of arbitrary in-bounds ranges returns the data.
    #[test]
    fn remote_write_read_roundtrips(
        offset in 0u64..CAP,
        data in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let bed = bed();
        let len = data.len() as u64;
        prop_assume!(offset + len <= CAP);
        bed.ep
            .write(Payload::Inline(data.clone()).into_sized(&bed, &data),
                   RemoteAddr::new(bed.remote.rkey(), offset))
            .unwrap();
        bed.ep
            .read(Sge::new(bed.local.lkey(), 0, len), RemoteAddr::new(bed.remote.rkey(), offset))
            .unwrap();
        let mut out = vec![0u8; data.len()];
        bed.local.region().read(0, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Out-of-bounds remote accesses always fail and never corrupt memory.
    #[test]
    fn out_of_bounds_always_rejected(offset in CAP - 64..CAP + 4096, len in 65u64..8192) {
        let bed = bed();
        prop_assume!(offset + len > CAP);
        let result = bed.ep.read(
            Sge::new(bed.local.lkey(), 0, len.min(CAP)),
            RemoteAddr::new(bed.remote.rkey(), offset),
        );
        prop_assert!(result.is_err());
    }

    /// A random sequence of remote CAS/FAA matches a local u64 model.
    #[test]
    fn atomics_match_model(ops in proptest::collection::vec((0u8..2, any::<u64>()), 1..40)) {
        let bed = bed();
        let mut model = 0u64;
        for (op, v) in ops {
            let sge = Sge::new(bed.local.lkey(), 0, 8);
            let target = RemoteAddr::new(bed.remote.rkey(), 256);
            match op {
                0 => {
                    bed.ep.fetch_add(sge, target, v).unwrap();
                    let mut prev = [0u8; 8];
                    bed.local.region().read(0, &mut prev).unwrap();
                    prop_assert_eq!(u64::from_le_bytes(prev), model);
                    model = model.wrapping_add(v);
                }
                _ => {
                    bed.ep.compare_swap(sge, target, model, v).unwrap();
                    let mut prev = [0u8; 8];
                    bed.local.region().read(0, &mut prev).unwrap();
                    prop_assert_eq!(u64::from_le_bytes(prev), model);
                    model = v;
                }
            }
        }
        prop_assert_eq!(bed.remote.region().load_u64(256).unwrap(), model);
    }

    /// SEND delivers payloads to posted receives in FIFO order.
    #[test]
    fn sends_preserve_order(msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..128), 1..16)) {
        let bed = bed();
        for (i, _) in msgs.iter().enumerate() {
            bed._peer
                .post_recv(Sge::new(bed.remote.lkey(), (i as u64) * 256, 256))
                .unwrap();
        }
        for msg in &msgs {
            bed.ep.send(Payload::Inline(msg.clone()), None).unwrap();
        }
        for (i, msg) in msgs.iter().enumerate() {
            let wc = bed._peer.recv(std::time::Duration::from_secs(2)).unwrap();
            prop_assert_eq!(wc.byte_len as usize, msg.len());
            let mut got = vec![0u8; msg.len()];
            bed.remote.region().read((i as u64) * 256, &mut got).unwrap();
            prop_assert_eq!(&got, msg);
        }
    }
}

/// Helper so inline payloads larger than `max_inline` fall back to an SGE.
trait IntoSized {
    fn into_sized(self, bed: &Bed, data: &[u8]) -> Payload;
}

impl IntoSized for Payload {
    fn into_sized(self, bed: &Bed, data: &[u8]) -> Payload {
        match self {
            Payload::Inline(bytes) if bytes.len() > 220 => {
                bed.local.region().write(8192, data).unwrap();
                Payload::Sge(Sge::new(bed.local.lkey(), 8192, data.len() as u64))
            }
            other => other,
        }
    }
}
