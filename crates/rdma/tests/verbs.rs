//! End-to-end tests of the verbs substrate: two (or more) nodes on an
//! instant fabric exercising every opcode and every failure path.

use std::sync::Arc;
use std::time::Duration;

use gengar_hybridmem::{DeviceProfile, MemDevice, MemKind, MemRegion};
use gengar_rdma::{
    Access, Endpoint, Fabric, FabricConfig, Payload, ProtectionDomain, QpOptions, QpState,
    RdmaError, RdmaNode, RemoteAddr, Sge, WcOpcode, WcStatus,
};

struct TestNode {
    node: Arc<RdmaNode>,
    pd: ProtectionDomain,
    mr: Arc<gengar_rdma::MemoryRegion>,
}

fn make_node(fabric: &Arc<Fabric>, kind: MemKind, capacity: u64, access: Access) -> TestNode {
    let node = fabric.add_node();
    let pd = node.alloc_pd();
    let dev = Arc::new(MemDevice::new(0, DeviceProfile::instant(kind), capacity).unwrap());
    let mr = pd.reg_mr(MemRegion::whole(dev), access).unwrap();
    TestNode { node, pd, mr }
}

fn pair(fabric: &Arc<Fabric>) -> (TestNode, TestNode, Endpoint, Endpoint) {
    let a = make_node(fabric, MemKind::Dram, 1 << 16, Access::all());
    let b = make_node(fabric, MemKind::Nvm, 1 << 16, Access::all());
    let (ea, eb) =
        Endpoint::pair((&a.node, &a.pd), (&b.node, &b.pd), QpOptions::default()).unwrap();
    (a, b, ea, eb)
}

#[test]
fn write_then_read_roundtrip() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    ea.write(
        Payload::Inline(b"hello nvm".to_vec()),
        RemoteAddr::new(b.mr.rkey(), 128),
    )
    .unwrap();
    let wc = ea
        .read(
            Sge::new(a.mr.lkey(), 0, 9),
            RemoteAddr::new(b.mr.rkey(), 128),
        )
        .unwrap();
    assert_eq!(wc.opcode, WcOpcode::RdmaRead);
    assert_eq!(wc.byte_len, 9);
    let mut buf = [0u8; 9];
    a.mr.region().read(0, &mut buf).unwrap();
    assert_eq!(&buf, b"hello nvm");
}

#[test]
fn write_from_registered_buffer() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    a.mr.region().write(256, b"from-sge").unwrap();
    ea.write(
        Payload::Sge(Sge::new(a.mr.lkey(), 256, 8)),
        RemoteAddr::new(b.mr.rkey(), 0),
    )
    .unwrap();
    let mut buf = [0u8; 8];
    b.mr.region().read(0, &mut buf).unwrap();
    assert_eq!(&buf, b"from-sge");
}

#[test]
fn send_recv_delivers_payload_and_imm() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (_a, b, ea, eb) = pair(&fabric);
    eb.post_recv(Sge::new(b.mr.lkey(), 512, 64)).unwrap();
    ea.send(Payload::Inline(b"ping".to_vec()), Some(0xBEEF))
        .unwrap();
    let wc = eb.recv(Duration::from_secs(1)).unwrap();
    assert_eq!(wc.opcode, WcOpcode::Recv);
    assert_eq!(wc.byte_len, 4);
    assert_eq!(wc.imm, Some(0xBEEF));
    let mut buf = [0u8; 4];
    b.mr.region().read(512, &mut buf).unwrap();
    assert_eq!(&buf, b"ping");
}

#[test]
fn send_without_posted_recv_hits_rnr() {
    let fabric = Fabric::new(FabricConfig::instant());
    let a = make_node(&fabric, MemKind::Dram, 4096, Access::all());
    let b = make_node(&fabric, MemKind::Dram, 4096, Access::all());
    let opts = QpOptions {
        rnr_timeout: Duration::from_millis(10),
        ..Default::default()
    };
    let (ea, _eb) = Endpoint::pair((&a.node, &a.pd), (&b.node, &b.pd), opts).unwrap();
    let err = ea.send(Payload::Inline(vec![1]), None).unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::RnrRetryExceeded));
    assert_eq!(ea.qp().state(), QpState::Error);
}

#[test]
fn write_with_imm_consumes_recv() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (_a, b, ea, eb) = pair(&fabric);
    eb.post_recv(Sge::new(b.mr.lkey(), 0, 0)).unwrap();
    ea.write_with_imm(
        Payload::Inline(b"doorbell".to_vec()),
        RemoteAddr::new(b.mr.rkey(), 1024),
        42,
    )
    .unwrap();
    let wc = eb.recv(Duration::from_secs(1)).unwrap();
    assert_eq!(wc.opcode, WcOpcode::RecvRdmaWithImm);
    assert_eq!(wc.imm, Some(42));
    assert_eq!(wc.byte_len, 8);
    // Data is placed at the remote address, not the recv buffer.
    let mut buf = [0u8; 8];
    b.mr.region().read(1024, &mut buf).unwrap();
    assert_eq!(&buf, b"doorbell");
}

#[test]
fn cas_and_faa_operate_remotely() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    b.mr.region().store_u64(64, 100).unwrap();

    let wc = ea
        .fetch_add(
            Sge::new(a.mr.lkey(), 0, 8),
            RemoteAddr::new(b.mr.rkey(), 64),
            5,
        )
        .unwrap();
    assert_eq!(wc.opcode, WcOpcode::FetchAdd);
    let mut prev = [0u8; 8];
    a.mr.region().read(0, &mut prev).unwrap();
    assert_eq!(u64::from_le_bytes(prev), 100);
    assert_eq!(b.mr.region().load_u64(64).unwrap(), 105);

    // Successful CAS.
    ea.compare_swap(
        Sge::new(a.mr.lkey(), 8, 8),
        RemoteAddr::new(b.mr.rkey(), 64),
        105,
        7,
    )
    .unwrap();
    assert_eq!(b.mr.region().load_u64(64).unwrap(), 7);

    // Failed CAS leaves memory untouched and returns the observed value.
    ea.compare_swap(
        Sge::new(a.mr.lkey(), 16, 8),
        RemoteAddr::new(b.mr.rkey(), 64),
        999,
        13,
    )
    .unwrap();
    let mut observed = [0u8; 8];
    a.mr.region().read(16, &mut observed).unwrap();
    assert_eq!(u64::from_le_bytes(observed), 7);
    assert_eq!(b.mr.region().load_u64(64).unwrap(), 7);
}

#[test]
fn remote_access_checks_rkey_bounds_and_permissions() {
    let fabric = Fabric::new(FabricConfig::instant());
    let a = make_node(&fabric, MemKind::Dram, 4096, Access::all());
    // Server MR allows only REMOTE_READ.
    let b = make_node(&fabric, MemKind::Nvm, 4096, Access::REMOTE_READ);
    let (ea, _eb) =
        Endpoint::pair((&a.node, &a.pd), (&b.node, &b.pd), QpOptions::default()).unwrap();

    // Read is fine.
    ea.read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap();

    // Write is denied: error completion + QP errored.
    let err = ea
        .write(Payload::Inline(vec![1]), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::RemoteAccessError));
    assert_eq!(ea.qp().state(), QpState::Error);

    // Posting on the errored QP is a programming error now.
    let again = ea.read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0));
    assert!(matches!(again, Err(RdmaError::InvalidQpState { .. })));
}

#[test]
fn out_of_bounds_remote_read_fails() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    let err = ea
        .read(
            Sge::new(a.mr.lkey(), 0, 128),
            RemoteAddr::new(b.mr.rkey(), (1 << 16) - 64),
        )
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::RemoteAccessError));
}

#[test]
fn bogus_rkey_fails() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, _b, ea, _eb) = pair(&fabric);
    let err = ea
        .read(
            Sge::new(a.mr.lkey(), 0, 8),
            RemoteAddr::new(gengar_rdma::RKey(0xDEAD), 0),
        )
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::RemoteAccessError));
}

#[test]
fn unknown_lkey_fails_fast() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (_a, b, ea, _eb) = pair(&fabric);
    let err = ea
        .read(
            Sge::new(gengar_rdma::LKey(0xAAAA), 0, 8),
            RemoteAddr::new(b.mr.rkey(), 0),
        )
        .unwrap_err();
    assert_eq!(err, RdmaError::UnknownLKey(0xAAAA));
    // Programming errors do not kill the QP.
    assert_eq!(ea.qp().state(), QpState::ReadyToSend);
}

#[test]
fn inline_limit_enforced() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (_a, b, ea, _eb) = pair(&fabric);
    let max = ea.qp().options().max_inline;
    let err = ea
        .write(
            Payload::Inline(vec![0u8; max + 1]),
            RemoteAddr::new(b.mr.rkey(), 0),
        )
        .unwrap_err();
    assert!(matches!(err, RdmaError::InlineTooLarge { .. }));
}

#[test]
fn partition_causes_transport_error() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    fabric.partition(a.node.id(), b.node.id(), true);
    let err = ea
        .read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::TransportError));
    assert_eq!(ea.qp().state(), QpState::Error);

    // Healing the link and resetting the QP restores service.
    fabric.partition(a.node.id(), b.node.id(), false);
    let remote = ea.qp().remote();
    assert!(remote.is_none() || remote.is_some()); // remote recorded pre-error
    ea.qp().reset();
    ea.qp().connect(b.node.id(), gengar_rdma::Qpn(1)).unwrap();
}

#[test]
fn removed_node_causes_transport_error() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    fabric.remove_node(b.node.id());
    let err = ea
        .read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::TransportError));
}

#[test]
fn pd_mismatch_is_rejected_remotely() {
    let fabric = Fabric::new(FabricConfig::instant());
    let a = make_node(&fabric, MemKind::Dram, 4096, Access::all());
    // Register the server MR in a *different* PD than the server QP uses.
    let b_node = fabric.add_node();
    let qp_pd = b_node.alloc_pd();
    let other_pd = b_node.alloc_pd();
    let dev = Arc::new(MemDevice::new(0, DeviceProfile::instant(MemKind::Nvm), 4096).unwrap());
    let foreign_mr = other_pd
        .reg_mr(MemRegion::whole(dev), Access::all())
        .unwrap();
    let (ea, _eb) =
        Endpoint::pair((&a.node, &a.pd), (&b_node, &qp_pd), QpOptions::default()).unwrap();
    let err = ea
        .read(
            Sge::new(a.mr.lkey(), 0, 8),
            RemoteAddr::new(foreign_mr.rkey(), 0),
        )
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::RemoteAccessError));
}

#[test]
fn concurrent_remote_faa_is_linearizable() {
    let fabric = Fabric::new(FabricConfig::instant());
    let server = make_node(&fabric, MemKind::Nvm, 4096, Access::all());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let client = make_node(&fabric, MemKind::Dram, 4096, Access::all());
        let (ec, _es) = Endpoint::pair(
            (&client.node, &client.pd),
            (&server.node, &server.pd),
            QpOptions::default(),
        )
        .unwrap();
        let rkey = server.mr.rkey();
        let lkey = client.mr.lkey();
        handles.push(std::thread::spawn(move || {
            for _ in 0..500 {
                ec.fetch_add(Sge::new(lkey, 0, 8), RemoteAddr::new(rkey, 0), 1)
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.mr.region().load_u64(0).unwrap(), 2000);
}

#[test]
fn unsignaled_writes_produce_no_completion() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (_a, b, ea, _eb) = pair(&fabric);
    use gengar_rdma::{SendOp, SendWr};
    ea.qp()
        .post_send(SendWr::unsignaled(
            77,
            SendOp::Write {
                payload: Payload::Inline(vec![9]),
                remote: RemoteAddr::new(b.mr.rkey(), 0),
                imm: None,
            },
        ))
        .unwrap();
    assert!(ea.qp().send_cq().is_empty());
    let mut buf = [0u8; 1];
    b.mr.region().read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 9);
}

#[test]
fn extra_link_delay_slows_ops() {
    gengar_hybridmem::set_time_scale(1.0);
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    fabric.set_extra_delay_ns(a.node.id(), b.node.id(), 2_000_000); // 2 ms each way
    let t0 = std::time::Instant::now();
    ea.read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(4));
}

#[test]
fn telemetry_counts_verbs_on_global_registry() {
    use gengar_telemetry::Registry;

    // Other tests in this binary share the global registry, so assert on
    // deltas of monotone counters rather than absolute values.
    let reg = Registry::global();
    let read_ops = reg.counter("rdma", "read_ops");
    let write_bytes = reg.counter("rdma", "write_bytes");
    let read_lat = reg.histogram("rdma", "read_ns");
    let (ops0, bytes0, lat0) = (read_ops.get(), write_bytes.get(), read_lat.snapshot().count);

    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    ea.write(
        Payload::Inline(vec![7u8; 100]),
        RemoteAddr::new(b.mr.rkey(), 0),
    )
    .unwrap();
    for _ in 0..3 {
        ea.read(
            Sge::new(a.mr.lkey(), 0, 100),
            RemoteAddr::new(b.mr.rkey(), 0),
        )
        .unwrap();
    }

    assert!(read_ops.get() >= ops0 + 3);
    assert!(write_bytes.get() >= bytes0 + 100);
    assert!(read_lat.snapshot().count >= lat0 + 3);
}

#[test]
fn disabled_telemetry_fabric_still_works() {
    let mut config = FabricConfig::instant();
    config.telemetry = gengar_rdma::TelemetryConfig::disabled();
    let fabric = Fabric::new(config);
    let (a, b, ea, _eb) = pair(&fabric);
    ea.write(
        Payload::Inline(vec![1u8; 32]),
        RemoteAddr::new(b.mr.rkey(), 0),
    )
    .unwrap();
    let wc = ea
        .read(
            Sge::new(a.mr.lkey(), 0, 32),
            RemoteAddr::new(b.mr.rkey(), 0),
        )
        .unwrap();
    assert!(wc.status.is_ok());
}

#[test]
fn fault_plane_drop_times_out_and_qp_survives() {
    let plane = Arc::new(gengar_rdma::FaultPlane::new(1));
    plane.add_rule(gengar_rdma::FaultRule::drop_op().at_ops(vec![1]));
    let mut config = FabricConfig::instant();
    config.faults = Some(Arc::clone(&plane));
    let fabric = Fabric::new(config);
    let (a, b, mut ea, _eb) = pair(&fabric);
    ea.set_op_timeout(Duration::from_millis(20));
    // First write is dropped on the wire: no completion, QP stays healthy.
    let err = ea
        .write(
            Payload::Inline(b"lost".to_vec()),
            RemoteAddr::new(b.mr.rkey(), 0),
        )
        .unwrap_err();
    assert_eq!(err, RdmaError::Timeout);
    assert!(err.is_retryable());
    assert_eq!(ea.qp().state(), QpState::ReadyToSend);
    // Retrying on the same connection succeeds.
    ea.write(
        Payload::Inline(b"kept".to_vec()),
        RemoteAddr::new(b.mr.rkey(), 0),
    )
    .unwrap();
    ea.read(Sge::new(a.mr.lkey(), 0, 4), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap();
    let mut buf = [0u8; 4];
    a.mr.region().read(0, &mut buf).unwrap();
    assert_eq!(&buf, b"kept");
}

#[test]
fn fault_plane_error_kills_qp_with_cause() {
    let plane = Arc::new(gengar_rdma::FaultPlane::new(1));
    plane.add_rule(gengar_rdma::FaultRule::error(WcStatus::TransportError).at_ops(vec![1]));
    let mut config = FabricConfig::instant();
    config.faults = Some(plane);
    let fabric = Fabric::new(config);
    let (a, b, ea, _eb) = pair(&fabric);
    let err = ea
        .read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap_err();
    assert_eq!(err, RdmaError::CompletionError(WcStatus::TransportError));
    assert!(!err.is_retryable());
    assert_eq!(ea.qp().state(), QpState::Error);
    assert_eq!(ea.qp().error_status(), Some(WcStatus::TransportError));
}

#[test]
fn fault_plane_disarm_restores_clean_fabric() {
    let plane = Arc::new(
        gengar_rdma::FaultPlane::from_spec("drop:p=1", 3, gengar_rdma::TelemetryConfig::disabled())
            .unwrap(),
    );
    let mut config = FabricConfig::instant();
    config.faults = Some(Arc::clone(&plane));
    let fabric = Fabric::new(config);
    let (a, b, mut ea, _eb) = pair(&fabric);
    ea.set_op_timeout(Duration::from_millis(10));
    assert!(ea
        .read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .is_err());
    plane.disarm();
    ea.read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap();
}

#[test]
fn batched_reads_complete_per_op() {
    use gengar_rdma::SendOp;
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    for i in 0..8u8 {
        b.mr.region().write(i as u64 * 64, &[i + 1; 16]).unwrap();
    }
    let ops: Vec<SendOp> = (0..8u64)
        .map(|i| SendOp::Read {
            local: Sge::new(a.mr.lkey(), i * 16, 16),
            remote: RemoteAddr::new(b.mr.rkey(), i * 64),
        })
        .collect();
    let results = ea.execute_many(ops).unwrap();
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        let wc = r.as_ref().unwrap();
        assert_eq!(wc.opcode, WcOpcode::RdmaRead);
        assert_eq!(wc.byte_len, 16);
        let mut buf = [0u8; 16];
        a.mr.region().read(i as u64 * 16, &mut buf).unwrap();
        assert_eq!(buf, [i as u8 + 1; 16]);
    }
    // All eight completions drained: nothing stale left on the CQ.
    assert!(ea.qp().send_cq().is_empty());
}

#[test]
fn batch_posts_one_doorbell() {
    use gengar_rdma::SendOp;
    use gengar_telemetry::Registry;
    let reg = Registry::global();
    let doorbells = reg.counter("rdma", "doorbells");
    let saved = reg.counter("rdma", "doorbells_saved");
    let (db0, saved0) = (doorbells.get(), saved.get());

    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    let ops: Vec<SendOp> = (0..5u64)
        .map(|i| SendOp::Read {
            local: Sge::new(a.mr.lkey(), i * 8, 8),
            remote: RemoteAddr::new(b.mr.rkey(), i * 8),
        })
        .collect();
    for r in ea.execute_many(ops).unwrap() {
        r.unwrap();
    }
    // One list of five WRs: one doorbell, four rings saved vs serial.
    assert_eq!(doorbells.get(), db0 + 1);
    assert_eq!(saved.get(), saved0 + 4);

    // A scalar op is a batch of one: a doorbell, nothing saved.
    ea.read(Sge::new(a.mr.lkey(), 0, 8), RemoteAddr::new(b.mr.rkey(), 0))
        .unwrap();
    assert_eq!(doorbells.get(), db0 + 2);
    assert_eq!(saved.get(), saved0 + 4);
}

#[test]
fn batch_failure_flushes_later_wrs_in_order() {
    use gengar_rdma::SendOp;
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    b.mr.region().write(0, &[0xAB; 8]).unwrap();
    let good = |off: u64| SendOp::Read {
        local: Sge::new(a.mr.lkey(), off, 8),
        remote: RemoteAddr::new(b.mr.rkey(), 0),
    };
    let bad = SendOp::Read {
        local: Sge::new(a.mr.lkey(), 8, 8),
        remote: RemoteAddr::new(gengar_rdma::RKey(0xDEAD), 0),
    };
    let results = ea.execute_many(vec![good(0), bad, good(16)]).unwrap();
    // RC ordering: op 0 lands, op 1 errors, op 2 is flushed unexecuted.
    assert!(results[0].is_ok());
    assert_eq!(
        results[1],
        Err(RdmaError::CompletionError(WcStatus::RemoteAccessError))
    );
    assert_eq!(
        results[2],
        Err(RdmaError::CompletionError(WcStatus::WrFlushed))
    );
    assert_eq!(ea.qp().state(), QpState::Error);
    let mut buf = [0u8; 8];
    a.mr.region().read(16, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 8], "flushed read must not move data");
}

#[test]
fn batch_with_invalid_wr_executes_nothing() {
    use gengar_rdma::SendOp;
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, ea, _eb) = pair(&fabric);
    let good = SendOp::Write {
        payload: Payload::Inline(b"never".to_vec()),
        remote: RemoteAddr::new(b.mr.rkey(), 0),
        imm: None,
    };
    let bad = SendOp::Read {
        local: Sge::new(gengar_rdma::LKey(0xAAAA), 0, 8),
        remote: RemoteAddr::new(b.mr.rkey(), 0),
    };
    // The whole post is validated up front: a programming error anywhere
    // in the list means nothing hit the wire.
    let err = ea.execute_many(vec![good, bad]).unwrap_err();
    assert_eq!(err, RdmaError::UnknownLKey(0xAAAA));
    assert_eq!(ea.qp().state(), QpState::ReadyToSend);
    let mut buf = [0u8; 5];
    b.mr.region().read(0, &mut buf).unwrap();
    assert_eq!(&buf, &[0u8; 5]);
    let _ = a;
}

#[test]
fn batch_drop_times_out_only_that_slot() {
    use gengar_rdma::SendOp;
    let plane = Arc::new(gengar_rdma::FaultPlane::new(1));
    // Drop the second WR of the batch on the wire.
    plane.add_rule(gengar_rdma::FaultRule::drop_op().at_ops(vec![2]));
    let mut config = FabricConfig::instant();
    config.faults = Some(plane);
    let fabric = Fabric::new(config);
    let (a, b, mut ea, _eb) = pair(&fabric);
    ea.set_op_timeout(Duration::from_millis(20));
    b.mr.region().write(0, &[7; 8]).unwrap();
    let read = |off: u64| SendOp::Read {
        local: Sge::new(a.mr.lkey(), off, 8),
        remote: RemoteAddr::new(b.mr.rkey(), 0),
    };
    let results = ea.execute_many(vec![read(0), read(8), read(16)]).unwrap();
    assert!(results[0].is_ok());
    assert_eq!(results[1], Err(RdmaError::Timeout));
    assert!(results[2].is_ok(), "a dropped WR does not kill the rest");
    // The QP survives, so the lost slot can be retried in place.
    assert_eq!(ea.qp().state(), QpState::ReadyToSend);
    let wc = ea.execute(read(8));
    assert!(wc.is_ok());
}

#[test]
fn empty_batch_is_a_no_op() {
    let fabric = Fabric::new(FabricConfig::instant());
    let (_a, _b, ea, _eb) = pair(&fabric);
    assert!(ea.execute_many(Vec::new()).unwrap().is_empty());
    assert!(ea.qp().send_cq().is_empty());
}

#[test]
fn qp_error_reported_for_flushed_waiters() {
    // An op whose completion never arrives on a dead QP must surface
    // QpError (reconnect required), not Timeout (retryable).
    let fabric = Fabric::new(FabricConfig::instant());
    let (a, b, mut ea, _eb) = pair(&fabric);
    ea.set_op_timeout(Duration::from_millis(50));
    ea.qp().fail(WcStatus::RnrRetryExceeded);
    // recv: nothing will ever arrive on a dead QP.
    let err = ea.recv(Duration::from_millis(10)).unwrap_err();
    assert_eq!(err, RdmaError::QpError(WcStatus::RnrRetryExceeded));
    let _ = (a, b);
}
